// Fault profiles: which named injection sites misbehave, how often, and how
// hard.
//
// A FaultPlan is the declarative half of the fault-injection subsystem: a
// list of per-site specs (probability, burst length, magnitude) that a
// seeded FaultInjector executes deterministically.  Plans are parsed from a
// small line-based profile format so chaos runs can be driven from files:
//
//   # gppm fault profile
//   meter.drop        p=0.02 burst=2
//   meter.spike       p=0.02 mag=3.0
//   meter.disconnect  p=0.03
//   nvml.query        p=0.05 burst=3
//   dvfs.set_pair     p=0.08
//
// One site per line: the site name, then key=value fields in any order
// (`p` = per-check fire probability, `burst` = consecutive fires per
// trigger, `mag` = kind-specific magnitude, e.g. the spike factor).
// `#` starts a comment; blank lines are ignored.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace gppm::fault {

/// The well-known injection sites wired into the instrument wrappers.
/// Injectors accept arbitrary site names; these are the ones the faulty
/// meter / NVML / DVFS paths consult.
inline constexpr std::string_view kSiteMeterDrop = "meter.drop";
inline constexpr std::string_view kSiteMeterSpike = "meter.spike";
inline constexpr std::string_view kSiteMeterDisconnect = "meter.disconnect";
inline constexpr std::string_view kSiteNvmlQuery = "nvml.query";
inline constexpr std::string_view kSiteDvfsSetPair = "dvfs.set_pair";

/// The `net` site family consulted by fault::FaultySocket (src/net):
///   * net.connect    — a connect() attempt is refused;
///   * net.short_read — a read delivers only one byte (stream reassembly
///                      must cope with arbitrary chunking);
///   * net.reset      — the connection dies mid-frame (partial write or
///                      failed read followed by a reset).
inline constexpr std::string_view kSiteNetConnect = "net.connect";
inline constexpr std::string_view kSiteNetShortRead = "net.short_read";
inline constexpr std::string_view kSiteNetReset = "net.reset";

/// The `cluster` site family consulted by the reconfiguration machinery:
///   * supervisor.probe   — a health probe is lost (the supervisor sees a
///                          healthy node as unresponsive);
///   * cluster.drain.slow — a drain stalls for `mag` milliseconds before
///                          the in-flight poll starts (slow handoff).
inline constexpr std::string_view kSiteSupervisorProbe = "supervisor.probe";
inline constexpr std::string_view kSiteClusterDrainSlow = "cluster.drain.slow";

/// Fault behaviour of one named site.
struct SiteSpec {
  std::string site;
  /// Per-check probability that a (burst of) fault(s) starts.
  double probability = 0.0;
  /// Consecutive checks that fire once triggered (>= 1).
  int burst = 1;
  /// Kind-specific magnitude; the spike site multiplies the corrupted
  /// sample's reading by this factor.
  double magnitude = 3.0;
};

/// A parsed fault profile.
struct FaultPlan {
  std::vector<SiteSpec> sites;

  /// Spec for a site, or nullptr if the plan leaves it healthy.
  const SiteSpec* find(std::string_view site) const;

  /// Parse the profile format above.  Throws gppm::Error on malformed
  /// lines, duplicate sites, probabilities outside [0, 1] or burst < 1.
  static FaultPlan parse(std::istream& in);
  static FaultPlan parse_string(const std::string& text);

  /// The default chaos profile used by `gppm chaos` and the chaos
  /// integration suite (the values in the header comment).
  static FaultPlan default_profile();

  /// A network-layer chaos profile over the `net` site family: occasional
  /// connect refusals, frequent short reads, rare mid-frame resets.  Used
  /// by the net chaos suite and `gppm-loadgen --chaos`.
  static FaultPlan net_profile();

  /// A cluster reconfiguration chaos profile: lost supervisor probes and
  /// slow drains on top of the net faults.  Used by the drain/supervisor
  /// chaos tests and `gppm-loadgen --cluster --chaos`.
  static FaultPlan cluster_profile();

  /// Render back into the profile format (parse round-trips).
  std::string to_string() const;
};

}  // namespace gppm::fault
