// WT1600 behind an unreliable acquisition channel.
//
// The real meter sits on a serial link polled every 50 ms; real harnesses
// see three failure shapes, all reproduced here under injector control:
//
//   * meter.drop       — a sample never arrives (the reading is lost);
//   * meter.spike      — a sample arrives corrupted (reading multiplied by
//                        the site magnitude, modeling a glitched transfer);
//   * meter.disconnect — the link dies mid-run: the measurement is lost
//                        and the caller sees a TransientError.
//
// The wrapper measures through an inner WT1600 and then corrupts the
// sample stream, so with a null injector (or an all-zero plan) the output
// is bit-identical to the healthy meter's — the property the chaos suite's
// "same best pairs as the fault-free run" assertion builds on.  Summary
// statistics (energy, average power) are recomputed from the surviving
// samples; sample validation downstream decides whether what survived is
// usable.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/injector.hpp"
#include "powermeter/wt1600.hpp"

namespace gppm::fault {

/// A WT1600 whose sample stream passes through an injected-fault channel.
class FaultyMeter {
 public:
  /// `injector` may be nullptr: the meter is then exactly a WT1600.
  FaultyMeter(meter::MeterConfig config, std::uint64_t seed,
              FaultInjector* injector);

  /// Measure a timeline.  Throws gppm::TransientError if the meter
  /// disconnects mid-run; otherwise returns the (possibly thinned and
  /// corrupted) measurement with summaries recomputed from the surviving
  /// samples.
  meter::Measurement measure(const std::vector<meter::TimelineSegment>& timeline);

  /// Samples the inner meter would deliver for this run if every fault
  /// site stayed quiet (the expected count for validation).
  static std::size_t expected_sample_count(
      const meter::MeterConfig& config,
      const std::vector<meter::TimelineSegment>& timeline);

  const meter::MeterConfig& config() const { return meter_.config(); }

 private:
  meter::WT1600 meter_;
  FaultInjector* injector_;
};

}  // namespace gppm::fault
