// DVFS transitions as an unreliable operation.
//
// The paper's frequency-scaling method reflashes the VBIOS boot P-state and
// reboots the board for every operating-point change — a procedure that in
// practice occasionally fails (the board does not come back at the
// requested clocks and the harness must re-issue the transition).  This
// wrapper reproduces that failure mode over dvfs::Controller: when the
// `dvfs.set_pair` site fires, set_pair throws TransientError *before*
// touching the controller, so the previous operating point, the VBIOS
// image and the reboot count all stay exactly as they were — the
// transactional behaviour the controller's own tests pin down.
#pragma once

#include "common/error.hpp"
#include "dvfs/controller.hpp"
#include "fault/injector.hpp"

namespace gppm::fault {

/// A dvfs::Controller whose transitions can transiently fail.
class FaultyController {
 public:
  /// `injector` may be nullptr: transitions then always succeed.
  FaultyController(dvfs::Controller& inner, FaultInjector* injector)
      : inner_(inner), injector_(injector) {}

  /// Apply an operating point.  Throws TransientError when the injected
  /// transition fails (state untouched); propagates the controller's own
  /// gppm::Error for illegal pairs.
  void set_pair(sim::FrequencyPair pair) {
    if (injector_ != nullptr && injector_->should_fire(kSiteDvfsSetPair)) {
      throw TransientError("P-state transition to " + sim::to_string(pair) +
                           " failed; board still at " +
                           sim::to_string(inner_.current_pair()));
    }
    inner_.set_pair(pair);
  }

  sim::FrequencyPair current_pair() const { return inner_.current_pair(); }
  std::vector<sim::FrequencyPair> available_pairs() const {
    return inner_.available_pairs();
  }
  int reboot_count() const { return inner_.reboot_count(); }
  dvfs::Controller& controller() { return inner_; }

 private:
  dvfs::Controller& inner_;
  FaultInjector* injector_;
};

}  // namespace gppm::fault
