#include "fault/faulty_nvml.hpp"

namespace gppm::fault {

std::string to_string(NvmlStatus status) {
  switch (status) {
    case NvmlStatus::Success: return "NVML_SUCCESS";
    case NvmlStatus::ErrorTimeout: return "NVML_ERROR_TIMEOUT";
    case NvmlStatus::ErrorUnknown: return "NVML_ERROR_UNKNOWN";
    case NvmlStatus::ErrorGpuIsLost: return "NVML_ERROR_GPU_IS_LOST";
  }
  return "NVML_ERROR_?";
}

bool is_transient(NvmlStatus status) {
  return status == NvmlStatus::ErrorTimeout ||
         status == NvmlStatus::ErrorUnknown;
}

FaultyNvmlSession::FaultyNvmlSession(nvml::Session& session,
                                     FaultInjector* injector)
    : session_(session), injector_(injector) {}

NvmlStatus FaultyNvmlSession::query_status() {
  if (injector_ == nullptr || !injector_->should_fire(kSiteNvmlQuery)) {
    return NvmlStatus::Success;
  }
  // Failed queries split deterministically: mostly timeouts, sometimes an
  // unknown driver error, rarely a lost device.
  const double u = injector_->uniform(kSiteNvmlQuery);
  if (u < 0.60) return NvmlStatus::ErrorTimeout;
  if (u < 0.95) return NvmlStatus::ErrorUnknown;
  return NvmlStatus::ErrorGpuIsLost;
}

NvmlResult<unsigned> FaultyNvmlSession::power_usage_mw(
    nvml::DeviceHandle handle, Duration at) {
  NvmlResult<unsigned> r;
  r.status = query_status();
  if (r.ok()) r.value = session_.power_usage_mw(handle, at);
  return r;
}

NvmlResult<nvml::UtilizationRates> FaultyNvmlSession::utilization(
    nvml::DeviceHandle handle, Duration at) {
  NvmlResult<nvml::UtilizationRates> r;
  r.status = query_status();
  if (r.ok()) r.value = session_.utilization(handle, at);
  return r;
}

NvmlResult<std::uint64_t> FaultyNvmlSession::total_energy_mj(
    nvml::DeviceHandle handle, Duration until) {
  NvmlResult<std::uint64_t> r;
  r.status = query_status();
  if (r.ok()) r.value = session_.total_energy_mj(handle, until);
  return r;
}

std::vector<nvml::PowerSample> FaultyNvmlSession::sample_power(
    nvml::DeviceHandle handle, Duration duration, Duration period,
    const RetryPolicy& policy, RetryStats* stats) {
  GPPM_CHECK(period > Duration::seconds(0.0), "sampling period must be positive");
  GPPM_CHECK(duration >= period, "duration shorter than one period");
  std::vector<nvml::PowerSample> samples;
  RetryStats local;
  RetryStats& acc = stats != nullptr ? *stats : local;
  Rng jitter_rng = Rng(injector_ != nullptr ? injector_->seed() : 0)
                       .fork(fnv1a("nvml.sample_power"));
  for (Duration t = Duration::seconds(0.0); t < duration; t += period) {
    const unsigned mw = retry_call(policy, jitter_rng, acc, [&] {
      const NvmlResult<unsigned> r = power_usage_mw(handle, t);
      if (r.status == NvmlStatus::ErrorGpuIsLost) {
        throw PermanentError("nvml query failed: " + to_string(r.status));
      }
      if (!r.ok()) {
        throw TransientError("nvml query failed: " + to_string(r.status));
      }
      return r.value;
    });
    samples.push_back({t, Power::watts(mw / 1000.0)});
  }
  return samples;
}

}  // namespace gppm::fault
