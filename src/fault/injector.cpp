#include "fault/injector.hpp"

#include <mutex>

namespace gppm::fault {

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t seed)
    : plan_(std::move(plan)) {
  reset(seed);
}

void FaultInjector::reset(std::uint64_t seed) {
  std::lock_guard<std::mutex> lock(mutex_);
  seed_ = seed;
  states_.clear();
  stats_.clear();
  for (const SiteSpec& spec : plan_.sites) stats_[spec.site];  // pre-list
}

FaultInjector::SiteState& FaultInjector::state(std::string_view site) {
  auto it = states_.find(site);
  if (it == states_.end()) {
    SiteState s;
    s.spec = plan_.find(site);
    s.rng = Rng(seed_).fork(fnv1a(site));
    it = states_.emplace(std::string(site), std::move(s)).first;
  }
  return it->second;
}

bool FaultInjector::should_fire(std::string_view site) {
  std::lock_guard<std::mutex> lock(mutex_);
  SiteState& s = state(site);
  SiteStats& st = stats_[std::string(site)];
  ++st.checks;
  if (s.spec == nullptr || s.spec->probability <= 0.0) return false;

  bool fire = false;
  if (s.burst_remaining > 0) {
    fire = true;
    --s.burst_remaining;
  } else if (s.rng.uniform() < s.spec->probability) {
    fire = true;
    s.burst_remaining = s.spec->burst - 1;
  }
  if (fire) ++st.fires;
  return fire;
}

double FaultInjector::magnitude(std::string_view site) const {
  const SiteSpec* spec = plan_.find(site);
  return spec != nullptr ? spec->magnitude : SiteSpec{}.magnitude;
}

double FaultInjector::uniform(std::string_view site) {
  std::lock_guard<std::mutex> lock(mutex_);
  return state(site).rng.uniform();
}

std::map<std::string, SiteStats, std::less<>> FaultInjector::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::uint64_t FaultInjector::total_fires() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t n = 0;
  for (const auto& [site, st] : stats_) n += st.fires;
  return n;
}

std::uint64_t FaultInjector::total_checks() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t n = 0;
  for (const auto& [site, st] : stats_) n += st.checks;
  return n;
}

}  // namespace gppm::fault
