#include "serve/admission.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "obs/obs.hpp"

namespace gppm::serve {

namespace {

struct AdmissionObs {
  obs::Counter& admitted;
  obs::Counter& shed_limit;
  obs::Counter& shed_deadline;
  obs::Counter& backoffs;
  obs::Gauge& limit;
  obs::Gauge& in_flight;
};

AdmissionObs& admission_obs() {
  obs::Registry& reg = obs::Registry::instance();
  static AdmissionObs instruments{
      reg.counter("serve.admission.admitted"),
      reg.counter("serve.admission.shed_limit"),
      reg.counter("serve.admission.shed_deadline"),
      reg.counter("serve.admission.backoffs"),
      reg.gauge("serve.admission.limit"),
      reg.gauge("serve.admission.in_flight"),
  };
  return instruments;
}

}  // namespace

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(options), limit_(options.initial_limit) {
  // Every comparison below is written so NaN fails it: NaN limits would
  // otherwise slip through std::clamp and pin the AIMD window open (every
  // `in_flight + 1 > limit` check is false against NaN — unbounded
  // admission) or shut.  Typed errors at construction beat either.
  GPPM_CHECK(std::isfinite(options_.min_limit) && options_.min_limit >= 1.0,
             "admission min_limit must be finite and >= 1");
  GPPM_CHECK(std::isfinite(options_.max_limit) &&
                 options_.max_limit >= options_.min_limit,
             "admission max_limit must be finite and >= min_limit");
  GPPM_CHECK(std::isfinite(options_.initial_limit) &&
                 options_.initial_limit >= 1.0,
             "admission initial_limit must be finite and >= 1");
  GPPM_CHECK(options_.decrease > 0.0 && options_.decrease < 1.0,
             "admission decrease factor must be in (0, 1)");
  GPPM_CHECK(options_.ewma_alpha > 0.0 && options_.ewma_alpha <= 1.0,
             "admission ewma_alpha must be in (0, 1]");
  GPPM_CHECK(std::isfinite(options_.deadline_headroom) &&
                 options_.deadline_headroom > 0.0,
             "admission deadline_headroom must be finite and > 0");
  limit_ = std::clamp(limit_, options_.min_limit, options_.max_limit);
}

bool AdmissionController::try_acquire(Duration deadline) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (static_cast<double>(in_flight_) + 1.0 > limit_) {
    ++stats_.shed_limit;
    if (options_.instrument) admission_obs().shed_limit.add();
    return false;
  }
  if (deadline.as_seconds() > 0.0 && ewma_s_ > 0.0) {
    // Estimated completion time for a request entering now: the smoothed
    // service latency inflated by how full the window already is.
    const double estimate =
        ewma_s_ * (1.0 + static_cast<double>(in_flight_) / limit_);
    if (estimate > deadline.as_seconds() * options_.deadline_headroom) {
      ++stats_.shed_deadline;
      if (options_.instrument) admission_obs().shed_deadline.add();
      return false;
    }
  }
  ++in_flight_;
  ++stats_.admitted;
  if (options_.instrument) {
    admission_obs().admitted.add();
    admission_obs().in_flight.add(1);
  }
  return true;
}

void AdmissionController::release_locked() {
  if (in_flight_ > 0) --in_flight_;
  if (options_.instrument) admission_obs().in_flight.add(-1);
}

void AdmissionController::observe_locked(double seconds) {
  if (!(seconds > 0.0)) return;
  ewma_s_ = ewma_s_ == 0.0
                ? seconds
                : (1.0 - options_.ewma_alpha) * ewma_s_ +
                      options_.ewma_alpha * seconds;
}

void AdmissionController::release_success(Duration latency) {
  std::lock_guard<std::mutex> lock(mutex_);
  release_locked();
  observe_locked(latency.as_seconds());
  // Additive increase: +1 per limit-sized window of successes, so the
  // limit climbs one unit per "round trip" like a congestion window.
  limit_ = std::min(options_.max_limit, limit_ + 1.0 / std::max(limit_, 1.0));
  if (options_.instrument) {
    admission_obs().limit.set(static_cast<std::int64_t>(limit_));
  }
}

void AdmissionController::release_congestion(Duration latency) {
  std::lock_guard<std::mutex> lock(mutex_);
  release_locked();
  observe_locked(latency.as_seconds());
  // One decrease per latency window: a burst of simultaneous blowouts is
  // one congestion event, not a collapse to min_limit.
  const auto now = Clock::now();
  const double window_s = std::max(ewma_s_, 0.010);
  if (now - last_decrease_ <
      std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(window_s))) {
    return;
  }
  last_decrease_ = now;
  limit_ = std::max(options_.min_limit, limit_ * options_.decrease);
  ++stats_.backoffs;
  if (options_.instrument) {
    admission_obs().backoffs.add();
    admission_obs().limit.set(static_cast<std::int64_t>(limit_));
  }
}

void AdmissionController::release_error() {
  std::lock_guard<std::mutex> lock(mutex_);
  release_locked();
}

double AdmissionController::limit() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return limit_;
}

std::int64_t AdmissionController::in_flight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return in_flight_;
}

AdmissionStats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  AdmissionStats s = stats_;
  s.limit = limit_;
  s.in_flight = in_flight_;
  s.ewma_latency_s = ewma_s_;
  return s;
}

}  // namespace gppm::serve
