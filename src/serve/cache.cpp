#include "serve/cache.hpp"

#include <cstring>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace gppm::serve {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= kFnvPrime;
  }
}

std::uint64_t double_bits(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

}  // namespace

std::uint64_t counters_fingerprint(const profiler::ProfileResult& counters) {
  std::uint64_t h = kFnvOffset;
  mix(h, counters.counters.size());
  mix(h, double_bits(counters.run_time.as_seconds()));
  for (const profiler::CounterReading& r : counters.counters) {
    // Counter identity matters: two profiles with identical numerics but
    // different names/classes (e.g. different architecture catalogs) must
    // not collide, or the cache returns a wrong prediction.
    mix(h, fnv1a(r.name));
    mix(h, static_cast<std::uint64_t>(r.klass));
    mix(h, double_bits(r.total));
    mix(h, double_bits(r.per_second));
  }
  return h;
}

std::uint64_t PredictionKey::hash() const {
  std::uint64_t h = kFnvOffset;
  mix(h, model_fp);
  mix(h, counters_fp);
  mix(h, family);
  mix(h, static_cast<std::uint64_t>(pair.core) * 4 +
             static_cast<std::uint64_t>(pair.mem));
  return h;
}

PredictionCache::PredictionCache(std::size_t capacity, std::size_t shards)
    : capacity_(capacity) {
  GPPM_CHECK(shards > 0, "cache must have at least one shard");
  if (capacity_ == 0) return;  // disabled: no shards needed
  if (shards > capacity_) shards = capacity_;
  per_shard_capacity_ = (capacity_ + shards - 1) / shards;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

PredictionCache::Shard& PredictionCache::shard_for(const PredictionKey& key) {
  // Re-scramble with splitmix64 so shard choice and bucket choice inside a
  // shard use decorrelated bits of the key hash.
  std::uint64_t h = key.hash();
  return *shards_[splitmix64(h) % shards_.size()];
}

bool PredictionCache::lookup(const PredictionKey& key, double& value) {
  if (!enabled()) return false;
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    return false;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  value = it->second->value;
  return true;
}

void PredictionCache::insert(const PredictionKey& key, double value) {
  if (!enabled()) return;
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->value = value;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.lru.size() >= per_shard_capacity_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    ++shard.evictions;
  }
  shard.lru.push_front(Entry{key, value});
  shard.index.emplace(key, shard.lru.begin());
}

CacheStats PredictionCache::stats() const {
  CacheStats s;
  s.capacity = capacity_;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    s.hits += shard->hits;
    s.misses += shard->misses;
    s.evictions += shard->evictions;
    s.entries += shard->lru.size();
  }
  return s;
}

void PredictionCache::clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->lru.clear();
    shard->index.clear();
    shard->hits = shard->misses = shard->evictions = 0;
  }
}

}  // namespace gppm::serve
