// Synthetic serving traffic over the 37-benchmark suite.
//
// A serving trace needs realistic phases: each request carries the counter
// profile of a real suite workload, collected once per (benchmark, size)
// through the CUDA-profiler model — the same corpus construction the
// paper's models were fitted on.  Request arrival mixes the three
// endpoints and draws phases from a Zipf popularity distribution (serving
// traffic is always skewed); an optional counter-jitter knob perturbs a
// fraction of requests into never-seen-before phases to exercise the
// cache-miss path.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/request.hpp"

namespace gppm::serve {

/// The profiled phases of one board's suite.
struct PhaseCorpus {
  sim::GpuModel gpu = sim::GpuModel::GTX680;
  std::vector<std::string> names;  ///< "benchmark/size"
  std::vector<profiler::ProfileResult> counters;
};

/// Profile every profiler-supported benchmark of the suite on `gpu`.
/// `all_sizes` profiles every input size (the paper's 114-sample corpus
/// shape); otherwise only the largest size of each program (one phase per
/// benchmark, faster to build).
PhaseCorpus build_phase_corpus(sim::GpuModel gpu, bool all_sizes = false,
                               std::uint64_t seed = 42);

struct TraceOptions {
  std::size_t request_count = 10000;
  std::uint64_t seed = 42;
  /// Endpoint mix; the remainder after optimize + govern is predict.
  double optimize_fraction = 0.25;
  double govern_fraction = 0.10;
  /// Zipf popularity exponent over phases (0 = uniform).
  double zipf_exponent = 1.0;
  /// Fraction of requests whose counters are perturbed into a fresh,
  /// never-repeated phase (defeats the prediction cache).
  double counter_jitter = 0.0;
};

/// Generate a deterministic request trace drawing phases from `corpus`.
std::vector<Request> synthetic_trace(const PhaseCorpus& corpus,
                                     const TraceOptions& options = {});

}  // namespace gppm::serve
