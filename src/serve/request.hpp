// Request/response vocabulary of the prediction server.
//
// A client ships a workload phase (its counter profile) plus what it wants
// to know; the server answers from the fitted unified models of the named
// board.  The three kinds mirror the paper's three uses of the models:
// point prediction (TABLES V-VIII), energy-optimal pair selection
// (TABLE IV semantics via core/optimizer) and online governor decisions
// (the "dynamic runtime management" future work via core/governor).
#pragma once

#include <cstdint>
#include <string>

#include "common/units.hpp"
#include "core/governor.hpp"

namespace gppm::serve {

/// What a request asks of the models.
enum class RequestKind : std::uint8_t {
  Predict,   ///< power + time at one explicit frequency pair
  Optimize,  ///< rank all configurable pairs, return the energy-optimal one
  Govern,    ///< stateful governor decision (hysteresis across requests)
};

inline constexpr std::size_t kRequestKindCount = 3;

std::string to_string(RequestKind kind);

/// One serving request.
struct Request {
  RequestKind kind = RequestKind::Predict;
  sim::GpuModel gpu = sim::GpuModel::GTX680;
  profiler::ProfileResult counters;
  /// Predict only: the operating point to evaluate.
  sim::FrequencyPair pair = sim::kDefaultPair;
  /// Govern only: which governor instance decides.
  core::GovernorPolicy policy = core::GovernorPolicy::MinimumEnergy;
};

/// The server's answer.  All predictions are the raw model outputs except
/// for Optimize/Govern, which apply core/optimizer's physical clamps
/// before ranking (power >= 1 W, time >= 1 ms).
struct Response {
  RequestKind kind = RequestKind::Predict;
  /// Predict: the requested pair.  Optimize/Govern: the chosen pair.
  sim::FrequencyPair pair = sim::kDefaultPair;
  double power_watts = 0.0;
  double time_seconds = 0.0;
  double energy_joules = 0.0;
  /// True if every model evaluation behind this response was served from
  /// the prediction cache.
  bool cache_hit = false;
  /// Queue wait + service time, measured by the worker.
  Duration latency;
};

}  // namespace gppm::serve
