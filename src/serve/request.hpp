// Request/response vocabulary of the prediction server.
//
// A client ships a workload phase (its counter profile) plus what it wants
// to know; the server answers from the fitted unified models of the named
// board.  The three kinds mirror the paper's three uses of the models:
// point prediction (TABLES V-VIII), energy-optimal pair selection
// (TABLE IV semantics via core/optimizer) and online governor decisions
// (the "dynamic runtime management" future work via core/governor).
#pragma once

#include <cstdint>
#include <string>

#include "common/units.hpp"
#include "core/governor.hpp"

namespace gppm::serve {

/// What a request asks of the models.
enum class RequestKind : std::uint8_t {
  Predict,   ///< power + time at one explicit frequency pair
  Optimize,  ///< rank all configurable pairs, return the energy-optimal one
  Govern,    ///< stateful governor decision (hysteresis across requests)
};

inline constexpr std::size_t kRequestKindCount = 3;

std::string to_string(RequestKind kind);

/// One serving request.
struct Request {
  RequestKind kind = RequestKind::Predict;
  sim::GpuModel gpu = sim::GpuModel::GTX680;
  /// Which tenant this request belongs to.  Tenant 0 is the shared
  /// default: it is served from the board's default model pair and is
  /// never quota-limited.  Non-zero tenants route to their own model
  /// family when one is registered (falling back to the default pair) and
  /// are subject to any per-tenant admission quota.
  std::uint32_t tenant = 0;
  profiler::ProfileResult counters;
  /// Predict only: the operating point to evaluate.
  sim::FrequencyPair pair = sim::kDefaultPair;
  /// Govern only: which governor instance decides.
  core::GovernorPolicy policy = core::GovernorPolicy::MinimumEnergy;
  /// Service deadline relative to submission; zero (the default) means
  /// none.  A request still queued past its deadline is answered with
  /// ResponseStatus::DeadlineExceeded instead of being evaluated.
  Duration deadline;
};

/// Why a request did not produce a prediction.  Errors are *responses*,
/// not worker-side exceptions: a bad request must never kill a worker
/// thread or turn into a broken future.
enum class ResponseStatus : std::uint8_t {
  Ok,
  NoModels,          ///< no model pair loaded for the requested board
  DeadlineExceeded,  ///< spent longer than request.deadline in the queue
  Overloaded,        ///< load-shed: queue or tenant quota saturated
  InternalError,     ///< the handler threw; details in Response::error
};

std::string to_string(ResponseStatus status);

/// The server's answer.  All predictions are the raw model outputs except
/// for Optimize/Govern, which apply core/optimizer's physical clamps
/// before ranking (power >= 1 W, time >= 1 ms).
struct Response {
  RequestKind kind = RequestKind::Predict;
  /// Ok, or the typed reason there is no prediction in this response.
  ResponseStatus status = ResponseStatus::Ok;
  /// Human-readable detail for non-Ok statuses.
  std::string error;
  /// Predict: the requested pair.  Optimize/Govern: the chosen pair.
  sim::FrequencyPair pair = sim::kDefaultPair;
  double power_watts = 0.0;
  double time_seconds = 0.0;
  double energy_joules = 0.0;
  /// True if every model evaluation behind this response was served from
  /// the prediction cache.
  bool cache_hit = false;
  /// Queue wait + service time, measured by the worker.
  Duration latency;

  bool ok() const { return status == ResponseStatus::Ok; }
};

}  // namespace gppm::serve
