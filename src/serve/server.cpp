#include "serve/server.hpp"

#include <algorithm>
#include <fstream>

#include "common/error.hpp"
#include "common/str.hpp"
#include "dvfs/combos.hpp"
#include "obs/obs.hpp"

namespace gppm::serve {

namespace {

std::size_t gpu_slot(sim::GpuModel gpu) {
  for (std::size_t i = 0; i < sim::kAllGpus.size(); ++i) {
    if (sim::kAllGpus[i] == gpu) return i;
  }
  throw Error("unknown GPU model");
}

std::size_t policy_slot(core::GovernorPolicy policy) {
  return static_cast<std::size_t>(policy);
}

/// Batch-grouping key: jobs with equal keys share a registry entry and an
/// endpoint handler.  The tenant is part of the key — tenants may resolve
/// to different model families, so a group must never span tenants.
std::uint64_t group_key(const Request& r) {
  const std::uint64_t endpoint =
      static_cast<std::uint64_t>(gpu_slot(r.gpu)) * kRequestKindCount +
      static_cast<std::uint64_t>(r.kind);
  return (static_cast<std::uint64_t>(r.tenant) << 8) | endpoint;
}

}  // namespace

PredictionServer::PredictionServer(ServerOptions options)
    : options_(options),
      queue_(options.queue_capacity),
      cache_(options.cache_capacity, options.cache_shards) {
  GPPM_CHECK(options_.worker_threads > 0, "server needs at least one worker");
  if (options_.max_batch == 0) options_.max_batch = 1;
  if (options_.max_batch > kMaxTrackedBatch) {
    options_.max_batch = kMaxTrackedBatch;
  }
  running_.store(true, std::memory_order_release);
  workers_.reserve(options_.worker_threads);
  for (std::size_t i = 0; i < options_.worker_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

PredictionServer::~PredictionServer() { shutdown(); }

sim::GpuModel PredictionServer::load_models(core::UnifiedModel power_model,
                                            core::UnifiedModel perf_model) {
  return load_tenant_models(0, std::move(power_model), std::move(perf_model));
}

sim::GpuModel PredictionServer::load_tenant_models(
    std::uint32_t tenant, core::UnifiedModel power_model,
    core::UnifiedModel perf_model) {
  GPPM_CHECK(power_model.target() == core::TargetKind::Power,
             "first model must target power");
  GPPM_CHECK(perf_model.target() == core::TargetKind::ExecTime,
             "second model must target exectime");
  GPPM_CHECK(power_model.gpu() == perf_model.gpu(),
             "models fitted for different boards");

  auto entry = std::make_shared<ModelEntry>();
  entry->tenant = tenant;
  entry->power_fp = core::model_fingerprint(power_model);
  entry->perf_fp = core::model_fingerprint(perf_model);
  entry->pairs = dvfs::configurable_pairs(power_model.gpu());
  for (core::GovernorPolicy policy :
       {core::GovernorPolicy::MinimumEnergy, core::GovernorPolicy::MinimumEdp,
        core::GovernorPolicy::PowerCap}) {
    core::GovernorOptions gopt = options_.governor;
    gopt.policy = policy;
    entry->governors[policy_slot(policy)] = std::make_unique<GovernorSlot>(
        core::DvfsGovernor(power_model, perf_model, gopt));
  }
  entry->power = std::move(power_model);
  entry->perf = std::move(perf_model);

  const sim::GpuModel gpu = entry->power.gpu();
  const std::size_t slot = gpu_slot(gpu);
  std::unique_lock<std::shared_mutex> lock(registry_mutex_);
  if (tenant == 0) {
    registry_[slot] = std::move(entry);
  } else {
    tenant_registry_[static_cast<std::uint64_t>(tenant) *
                         sim::kAllGpus.size() +
                     slot] = std::move(entry);
  }
  return gpu;
}

bool PredictionServer::has_tenant_models(std::uint32_t tenant,
                                         sim::GpuModel gpu) const {
  if (tenant == 0) return has_models(gpu);
  std::shared_lock<std::shared_mutex> lock(registry_mutex_);
  return tenant_registry_.count(static_cast<std::uint64_t>(tenant) *
                                    sim::kAllGpus.size() +
                                gpu_slot(gpu)) > 0;
}

void PredictionServer::set_tenant_quota(std::uint32_t tenant,
                                        std::size_t quota) {
  GPPM_CHECK(tenant != 0, "tenant 0 (the shared default) cannot be limited");
  std::lock_guard<std::mutex> lock(quota_mutex_);
  if (quota == 0) {
    quotas_.erase(tenant);
    return;
  }
  // A fixed quota, not an adaptive one: pin the AIMD limits together so
  // the controller degenerates to a plain concurrency cap.  Isolation
  // wants a contract ("tenant 7 gets 16 slots"), not a probe.
  AdmissionOptions opt;
  opt.initial_limit = static_cast<double>(quota);
  opt.min_limit = static_cast<double>(quota);
  opt.max_limit = static_cast<double>(quota);
  opt.instrument = false;
  quotas_[tenant] = std::make_shared<AdmissionController>(opt);
}

std::shared_ptr<AdmissionController> PredictionServer::quota_for(
    std::uint32_t tenant) const {
  if (tenant == 0) return nullptr;
  std::lock_guard<std::mutex> lock(quota_mutex_);
  auto it = quotas_.find(tenant);
  return it == quotas_.end() ? nullptr : it->second;
}

sim::GpuModel PredictionServer::load_model_files(const std::string& power_path,
                                                 const std::string& perf_path) {
  std::ifstream power_in(power_path);
  GPPM_CHECK(static_cast<bool>(power_in), "cannot open " + power_path);
  std::ifstream perf_in(perf_path);
  GPPM_CHECK(static_cast<bool>(perf_in), "cannot open " + perf_path);
  return load_models(core::deserialize_model(power_in),
                     core::deserialize_model(perf_in));
}

bool PredictionServer::has_models(sim::GpuModel gpu) const {
  std::shared_lock<std::shared_mutex> lock(registry_mutex_);
  return registry_[gpu_slot(gpu)] != nullptr;
}

std::vector<PredictionServer::LoadedModel> PredictionServer::loaded_models()
    const {
  std::vector<LoadedModel> loaded;
  std::shared_lock<std::shared_mutex> lock(registry_mutex_);
  for (std::size_t i = 0; i < sim::kAllGpus.size(); ++i) {
    if (registry_[i] == nullptr) continue;
    loaded.push_back(
        {sim::kAllGpus[i], registry_[i]->power_fp, registry_[i]->perf_fp});
  }
  return loaded;
}

std::shared_ptr<PredictionServer::ModelEntry> PredictionServer::entry_for(
    std::uint32_t tenant, sim::GpuModel gpu) const {
  const std::size_t slot = gpu_slot(gpu);
  std::shared_lock<std::shared_mutex> lock(registry_mutex_);
  if (tenant != 0) {
    auto it = tenant_registry_.find(
        static_cast<std::uint64_t>(tenant) * sim::kAllGpus.size() + slot);
    if (it != tenant_registry_.end()) return it->second;
  }
  return registry_[slot];
}

bool PredictionServer::acquire_tenant_quota(Job& job) {
  std::shared_ptr<AdmissionController> quota = quota_for(job.request.tenant);
  if (quota == nullptr) return true;
  if (quota->try_acquire(job.request.deadline)) {
    job.quota = std::move(quota);
    return true;
  }
  metrics_.record_shed();
  metrics_.record_tenant_shed(job.request.tenant);
  Response response;
  response.kind = job.request.kind;
  response.status = ResponseStatus::Overloaded;
  response.error = "tenant " + std::to_string(job.request.tenant) +
                   " quota saturated";
  job.promise.set_value(std::move(response));
  return false;
}

std::future<Response> PredictionServer::submit(Request request) {
  Job job;
  job.request = std::move(request);
  job.enqueued = std::chrono::steady_clock::now();
  std::future<Response> future = job.promise.get_future();
  const std::uint32_t tenant = job.request.tenant;
  if (!acquire_tenant_quota(job)) return future;
  if (options_.load_shedding) {
    if (queue_.try_push(std::move(job))) {
      metrics_.record_tenant_accepted(tenant);
      return future;
    }
    // try_push left the job intact; a closed queue is still a hard
    // rejection, a merely full one is answered Overloaded right here.
    if (queue_.closed()) {
      metrics_.record_rejected();
      if (job.quota) job.quota->release_error();
      throw Error("prediction server is shut down");
    }
    metrics_.record_shed();
    Response response;
    response.status = ResponseStatus::Overloaded;
    response.error = "admission queue saturated (" +
                     std::to_string(options_.queue_capacity) + " queued)";
    finish(job, std::move(response));
    return future;
  }
  if (!queue_.push(std::move(job))) {
    metrics_.record_rejected();
    if (job.quota) job.quota->release_error();
    throw Error("prediction server is shut down");
  }
  metrics_.record_tenant_accepted(tenant);
  return future;
}

std::optional<std::future<Response>> PredictionServer::try_submit(
    Request request) {
  Job job;
  job.request = std::move(request);
  job.enqueued = std::chrono::steady_clock::now();
  std::future<Response> future = job.promise.get_future();
  const std::uint32_t tenant = job.request.tenant;
  if (!acquire_tenant_quota(job)) return future;
  if (!queue_.try_push(std::move(job))) {
    metrics_.record_rejected();
    if (job.quota) job.quota->release_error();
    return std::nullopt;
  }
  metrics_.record_tenant_accepted(tenant);
  return future;
}

void PredictionServer::shutdown() {
  // Flag first, close second: a submit racing with shutdown either gets
  // into the queue before close() (and is drained) or fails its push.
  // The joins run under a mutex so concurrent shutdown() calls serialize;
  // every caller returns only once the workers are gone, and repeat calls
  // find nothing joinable.  (The previous std::call_once version made a
  // second caller return while the first was still joining.)
  running_.store(false, std::memory_order_release);
  queue_.close();
  std::lock_guard<std::mutex> lock(shutdown_mutex_);
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

ServerMetrics PredictionServer::metrics() const {
  ServerMetrics m = metrics_.snapshot();
  m.queue_high_water = queue_.high_water_mark();
  m.cache = cache_.stats();
  publish_to_obs(m);
  return m;
}

void PredictionServer::worker_loop() {
  while (true) {
    std::vector<Job> batch = queue_.pop_batch(options_.max_batch);
    if (batch.empty()) break;  // closed and fully drained
    obs::ObsSpan span("serve.batch");
    metrics_.record_batch(batch.size());

    // Micro-batch grouping: bring jobs sharing (gpu, kind) together so the
    // registry lookup and per-board state amortize across the group.
    std::stable_sort(batch.begin(), batch.end(),
                     [](const Job& a, const Job& b) {
                       return group_key(a.request) < group_key(b.request);
                     });
    std::size_t begin = 0;
    while (begin < batch.size()) {
      std::size_t end = begin + 1;
      while (end < batch.size() && group_key(batch[end].request) ==
                                       group_key(batch[begin].request)) {
        ++end;
      }
      const std::shared_ptr<ModelEntry> entry = entry_for(
          batch[begin].request.tenant, batch[begin].request.gpu);
      if (entry == nullptr) {
        for (std::size_t i = begin; i < end; ++i) {
          if (expire_if_past_deadline(batch[i])) continue;
          metrics_.record_error_response();
          Response response;
          response.status = ResponseStatus::NoModels;
          response.error =
              "no models loaded for " + sim::to_string(batch[i].request.gpu);
          finish(batch[i], std::move(response));
        }
      } else {
        process_group(*entry, batch.data() + begin, end - begin);
      }
      begin = end;
    }
  }
}

void PredictionServer::finish(Job& job, Response response) {
  response.kind = job.request.kind;
  const auto now = std::chrono::steady_clock::now();
  response.latency = Duration::seconds(
      std::chrono::duration<double>(now - job.enqueued).count());
  if (job.quota) {
    // Steer the (degenerate, fixed-limit) controller honestly anyway: a
    // congestion answer must not read as success to its EWMA.
    switch (response.status) {
      case ResponseStatus::Ok:
        job.quota->release_success(response.latency);
        break;
      case ResponseStatus::Overloaded:
      case ResponseStatus::DeadlineExceeded:
        job.quota->release_congestion(response.latency);
        break;
      default:
        job.quota->release_error();
        break;
    }
    job.quota.reset();
  }
  job.promise.set_value(std::move(response));
}

bool PredictionServer::expire_if_past_deadline(Job& job) {
  if (!(job.request.deadline > Duration::seconds(0.0))) return false;
  const auto now = std::chrono::steady_clock::now();
  const double waited =
      std::chrono::duration<double>(now - job.enqueued).count();
  if (waited <= job.request.deadline.as_seconds()) return false;
  metrics_.record_deadline_expired();
  Response response;
  response.status = ResponseStatus::DeadlineExceeded;
  response.error = "queued " + format_double(waited * 1e3, 1) +
                   " ms past a " +
                   format_double(job.request.deadline.as_seconds() * 1e3, 1) +
                   " ms deadline";
  finish(job, std::move(response));
  return true;
}

void PredictionServer::process_group(ModelEntry& entry, Job* jobs,
                                     std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    Job& job = jobs[i];
    if (expire_if_past_deadline(job)) continue;
    try {
      bool cache_hit = false;
      Response response = handle(entry, job.request, cache_hit);
      response.cache_hit = cache_hit;
      if (cache_hit) metrics_.record_tenant_cache_hit(job.request.tenant);
      const double latency = std::chrono::duration<double>(
          std::chrono::steady_clock::now() - job.enqueued).count();
      metrics_.record_request(job.request.kind, latency);
      finish(job, std::move(response));
    } catch (const std::exception& e) {
      metrics_.record_error_response();
      Response response;
      response.status = ResponseStatus::InternalError;
      response.error = e.what();
      finish(job, std::move(response));
    }
  }
}

double PredictionServer::cached_predict(
    const core::UnifiedModel& model, std::uint64_t model_fp,
    std::uint64_t counters_fp, std::uint64_t family,
    const profiler::ProfileResult& counters, sim::FrequencyPair pair,
    bool& all_hits) {
  const PredictionKey key{model_fp, counters_fp, family, pair};
  double value = 0.0;
  if (cache_.lookup(key, value)) return value;
  all_hits = false;
  value = model.predict(counters, pair);
  cache_.insert(key, value);
  return value;
}

Response PredictionServer::handle(ModelEntry& entry, const Request& request,
                                  bool& cache_hit) {
  const std::uint64_t cfp = counters_fingerprint(request.counters);
  // Cache entries are stamped with the *serving* family, which is 0 when a
  // tenant falls back to the board default — fallback tenants then share
  // the default family's cache entries instead of duplicating them.
  const std::uint64_t fam = entry.tenant;
  bool all_hits = true;
  Response response;

  switch (request.kind) {
    case RequestKind::Predict: {
      response.pair = request.pair;
      response.power_watts = cached_predict(
          entry.power, entry.power_fp, cfp, fam, request.counters,
          request.pair, all_hits);
      response.time_seconds = cached_predict(
          entry.perf, entry.perf_fp, cfp, fam, request.counters, request.pair,
          all_hits);
      response.energy_joules = response.power_watts * response.time_seconds;
      break;
    }
    case RequestKind::Optimize: {
      // TABLE IV semantics: rank every configurable pair by predicted
      // energy, with core/optimizer's physical clamps so the ranking
      // matches predict_min_energy_pair exactly.
      double best_energy = 0.0;
      bool first = true;
      for (sim::FrequencyPair pair : entry.pairs) {
        const double power = std::max(
            1.0, cached_predict(entry.power, entry.power_fp, cfp, fam,
                                request.counters, pair, all_hits));
        const double time = std::max(
            1e-3, cached_predict(entry.perf, entry.perf_fp, cfp, fam,
                                 request.counters, pair, all_hits));
        const double energy = power * time;
        if (first || energy < best_energy) {
          first = false;
          best_energy = energy;
          response.pair = pair;
          response.power_watts = power;
          response.time_seconds = time;
          response.energy_joules = energy;
        }
      }
      GPPM_CHECK(!first, "no configurable pairs");
      break;
    }
    case RequestKind::Govern: {
      GovernorSlot& slot = *entry.governors[policy_slot(request.policy)];
      sim::FrequencyPair pick;
      {
        std::lock_guard<std::mutex> lock(slot.mutex);
        pick = slot.governor.decide(request.counters);
      }
      response.pair = pick;
      response.power_watts = std::max(
          1.0, cached_predict(entry.power, entry.power_fp, cfp, fam,
                              request.counters, pick, all_hits));
      response.time_seconds = std::max(
          1e-3, cached_predict(entry.perf, entry.perf_fp, cfp, fam,
                               request.counters, pick, all_hits));
      response.energy_joules = response.power_watts * response.time_seconds;
      break;
    }
  }
  cache_hit = all_hits;
  return response;
}

}  // namespace gppm::serve
