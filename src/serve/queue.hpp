// Bounded MPMC queue — the serving engine's admission path and the repo's
// first shared concurrency primitive.
//
// Semantics chosen for a request queue rather than a generic channel:
//   * bounded: producers block (or fail, with try_push) when the queue is
//     full, so a slow worker pool applies back-pressure to clients instead
//     of growing an unbounded backlog;
//   * batch pop: a consumer drains up to `max` queued items in one lock
//     acquisition — the dynamic micro-batcher is built directly on this,
//     and it keeps the per-item lock cost amortized under load;
//   * close-with-drain: close() rejects new pushes immediately but lets
//     consumers pop everything already queued; pop returns empty only when
//     the queue is both closed and empty.  This is exactly the server's
//     graceful-shutdown contract (reject-new, finish-queued).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace gppm::serve {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    GPPM_CHECK(capacity > 0, "queue capacity must be positive");
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Block until there is room (or the queue closes).  Returns false if
  /// the queue was closed before the item could be admitted.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    if (items_.size() > high_water_) high_water_ = items_.size();
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; false if full or closed.  On failure `item` is
  /// left untouched, so the caller can still answer the request it carries
  /// (load shedding needs the promise back).
  bool try_push(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
      if (items_.size() > high_water_) high_water_ = items_.size();
    }
    not_empty_.notify_one();
    return true;
  }

  /// Pop up to `max` items in one lock acquisition, blocking while the
  /// queue is empty and open.  Returns an empty vector only after close()
  /// once every queued item has been consumed.
  std::vector<T> pop_batch(std::size_t max) {
    GPPM_CHECK(max > 0, "batch size must be positive");
    std::vector<T> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
      const std::size_t n = items_.size() < max ? items_.size() : max;
      batch.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        batch.push_back(std::move(items_.front()));
        items_.pop_front();
      }
    }
    if (!batch.empty()) not_full_.notify_all();
    return batch;
  }

  /// Reject new pushes; queued items remain poppable (drain semantics).
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  /// Largest queue depth ever observed — the saturation indicator exported
  /// through ServerMetrics.
  std::size_t high_water_mark() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return high_water_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  std::size_t high_water_ = 0;
  bool closed_ = false;
};

}  // namespace gppm::serve
