#include "serve/metrics.hpp"

#include <cmath>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/str.hpp"
#include "obs/obs.hpp"

namespace gppm::serve {

namespace {

// Shared-registry instruments the recorders below mirror into.  The
// collector's own atomic cells stay authoritative — the obs bridge adds
// one enabled-flag branch per record and nothing else, so the serve table
// and CSV output are byte-identical with obs on or off.
struct ServeInstruments {
  obs::Counter& requests;
  obs::Counter& batches;
  obs::Counter& rejected;
  obs::Counter& shed;
  obs::Counter& deadline_expired;
  obs::Counter& errors;
  obs::Histogram& latency_us;

  static ServeInstruments& instance() {
    static ServeInstruments* in = new ServeInstruments{
        obs::Registry::instance().counter("serve.requests"),
        obs::Registry::instance().counter("serve.batches"),
        obs::Registry::instance().counter("serve.rejected"),
        obs::Registry::instance().counter("serve.shed"),
        obs::Registry::instance().counter("serve.deadline_expired"),
        obs::Registry::instance().counter("serve.errors"),
        obs::Registry::instance().histogram(
            "serve.latency_us", {10.0, 100.0, 1000.0, 10000.0, 100000.0}),
    };
    return *in;
  }
};

}  // namespace

std::string to_string(RequestKind kind) {
  switch (kind) {
    case RequestKind::Predict: return "predict";
    case RequestKind::Optimize: return "optimize";
    case RequestKind::Govern: return "govern";
  }
  throw Error("unknown request kind");
}

std::string to_string(ResponseStatus status) {
  switch (status) {
    case ResponseStatus::Ok: return "ok";
    case ResponseStatus::NoModels: return "no_models";
    case ResponseStatus::DeadlineExceeded: return "deadline_exceeded";
    case ResponseStatus::Overloaded: return "overloaded";
    case ResponseStatus::InternalError: return "internal_error";
  }
  throw Error("unknown response status");
}

std::size_t MetricsCollector::latency_bin(double seconds) {
  if (seconds <= kLatencyMinSeconds) return 0;
  const double decades = std::log10(seconds / kLatencyMinSeconds);
  const auto bin = static_cast<std::size_t>(decades * kBinsPerDecade);
  return bin >= kLatencyBins ? kLatencyBins - 1 : bin;
}

double MetricsCollector::bin_upper_seconds(std::size_t bin) {
  return kLatencyMinSeconds *
         std::pow(10.0, static_cast<double>(bin + 1) / kBinsPerDecade);
}

void MetricsCollector::record_request(RequestKind kind,
                                      double latency_seconds) {
  EndpointCells& cells = endpoints_[static_cast<std::size_t>(kind)];
  cells.requests.fetch_add(1, std::memory_order_relaxed);
  cells.latency_nanos.fetch_add(
      static_cast<std::uint64_t>(latency_seconds * 1e9),
      std::memory_order_relaxed);
  cells.bins[latency_bin(latency_seconds)].fetch_add(
      1, std::memory_order_relaxed);
  ServeInstruments& ins = ServeInstruments::instance();
  ins.requests.add();
  if (obs::enabled()) ins.latency_us.record(latency_seconds * 1e6);
}

void MetricsCollector::record_batch(std::size_t batch_size) {
  if (batch_size == 0) return;
  const std::size_t bin =
      batch_size > kMaxTrackedBatch ? kMaxTrackedBatch - 1 : batch_size - 1;
  batch_bins_[bin].fetch_add(1, std::memory_order_relaxed);
  batches_.fetch_add(1, std::memory_order_relaxed);
  batch_items_.fetch_add(batch_size, std::memory_order_relaxed);
  std::uint64_t seen = max_batch_.load(std::memory_order_relaxed);
  while (batch_size > seen &&
         !max_batch_.compare_exchange_weak(seen, batch_size,
                                           std::memory_order_relaxed)) {
  }
  ServeInstruments::instance().batches.add();
}

void MetricsCollector::record_rejected() {
  rejected_.fetch_add(1, std::memory_order_relaxed);
  ServeInstruments::instance().rejected.add();
}

void MetricsCollector::record_shed() {
  shed_.fetch_add(1, std::memory_order_relaxed);
  ServeInstruments::instance().shed.add();
}

void MetricsCollector::record_deadline_expired() {
  deadline_expired_.fetch_add(1, std::memory_order_relaxed);
  ServeInstruments::instance().deadline_expired.add();
}

void MetricsCollector::record_error_response() {
  error_responses_.fetch_add(1, std::memory_order_relaxed);
  ServeInstruments::instance().errors.add();
}

void MetricsCollector::record_tenant_accepted(std::uint32_t tenant) {
  if (tenant == 0) return;
  {
    std::lock_guard<std::mutex> lock(tenant_mutex_);
    ++tenants_[tenant].accepted;
  }
  if (obs::enabled()) {
    obs::Registry::instance()
        .counter("serve.tenant." + std::to_string(tenant) + ".accepted")
        .add();
  }
}

void MetricsCollector::record_tenant_shed(std::uint32_t tenant) {
  if (tenant == 0) return;
  {
    std::lock_guard<std::mutex> lock(tenant_mutex_);
    ++tenants_[tenant].shed;
  }
  if (obs::enabled()) {
    obs::Registry::instance()
        .counter("serve.tenant." + std::to_string(tenant) + ".shed")
        .add();
  }
}

void MetricsCollector::record_tenant_cache_hit(std::uint32_t tenant) {
  if (tenant == 0) return;
  {
    std::lock_guard<std::mutex> lock(tenant_mutex_);
    ++tenants_[tenant].cache_hits;
  }
  if (obs::enabled()) {
    obs::Registry::instance()
        .counter("serve.tenant." + std::to_string(tenant) + ".cache_hit")
        .add();
  }
}

namespace {

double histogram_quantile(
    const std::array<std::uint64_t, kLatencyBins>& bins, std::uint64_t total,
    double q) {
  if (total == 0) return 0.0;
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kLatencyBins; ++i) {
    seen += bins[i];
    if (seen >= rank) return MetricsCollector::bin_upper_seconds(i);
  }
  return MetricsCollector::bin_upper_seconds(kLatencyBins - 1);
}

}  // namespace

ServerMetrics MetricsCollector::snapshot() const {
  ServerMetrics m;
  for (std::size_t e = 0; e < kRequestKindCount; ++e) {
    const EndpointCells& cells = endpoints_[e];
    EndpointStats& out = m.endpoints[e];
    std::array<std::uint64_t, kLatencyBins> bins;
    out.requests = cells.requests.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < kLatencyBins; ++i) {
      bins[i] = cells.bins[i].load(std::memory_order_relaxed);
    }
    if (out.requests > 0) {
      out.mean_latency_seconds =
          static_cast<double>(
              cells.latency_nanos.load(std::memory_order_relaxed)) /
          1e9 / static_cast<double>(out.requests);
      out.p50_seconds = histogram_quantile(bins, out.requests, 0.50);
      out.p95_seconds = histogram_quantile(bins, out.requests, 0.95);
      out.p99_seconds = histogram_quantile(bins, out.requests, 0.99);
    }
    m.total_requests += out.requests;
  }
  for (std::size_t i = 0; i < kMaxTrackedBatch; ++i) {
    m.batch_size_counts[i] = batch_bins_[i].load(std::memory_order_relaxed);
  }
  m.batches = batches_.load(std::memory_order_relaxed);
  if (m.batches > 0) {
    m.mean_batch_size =
        static_cast<double>(batch_items_.load(std::memory_order_relaxed)) /
        static_cast<double>(m.batches);
  }
  m.max_batch_size =
      static_cast<std::size_t>(max_batch_.load(std::memory_order_relaxed));
  m.rejected_requests = rejected_.load(std::memory_order_relaxed);
  m.shed_requests = shed_.load(std::memory_order_relaxed);
  m.deadline_expired = deadline_expired_.load(std::memory_order_relaxed);
  m.error_responses = error_responses_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(tenant_mutex_);
    m.tenants.reserve(tenants_.size());
    for (const auto& [tenant, cells] : tenants_) {
      m.tenants.push_back(
          {tenant, cells.accepted, cells.shed, cells.cache_hits});
    }
  }
  return m;
}

AsciiTable ServerMetrics::to_table() const {
  AsciiTable table(
      {"endpoint", "requests", "mean us", "p50 us", "p95 us", "p99 us"});
  table.set_title("serve metrics");
  for (std::size_t e = 0; e < kRequestKindCount; ++e) {
    const EndpointStats& s = endpoints[e];
    table.add_row({to_string(static_cast<RequestKind>(e)),
                   std::to_string(s.requests),
                   format_double(s.mean_latency_seconds * 1e6, 2),
                   format_double(s.p50_seconds * 1e6, 2),
                   format_double(s.p95_seconds * 1e6, 2),
                   format_double(s.p99_seconds * 1e6, 2)});
  }
  return table;
}

void ServerMetrics::print(std::ostream& out) const {
  to_table().print(out);
  out << "total " << total_requests << " requests ("
      << rejected_requests << " rejected, " << shed_requests << " shed, "
      << deadline_expired << " past deadline, " << error_responses
      << " errors), " << batches
      << " batches, mean batch " << format_double(mean_batch_size, 2)
      << ", max batch " << max_batch_size << ", queue high-water "
      << queue_high_water << "\n";
  out << "cache: " << cache.entries << "/" << cache.capacity << " entries, "
      << cache.hits << " hits / " << cache.misses << " misses (hit rate "
      << format_double(cache.hit_rate() * 100.0, 1) << "%), "
      << cache.evictions << " evictions\n";
  if (!tenants.empty()) {
    AsciiTable table({"tenant", "accepted", "shed", "cache hits"});
    table.set_title("per-tenant");
    for (const TenantStats& t : tenants) {
      table.add_row({std::to_string(t.tenant), std::to_string(t.accepted),
                     std::to_string(t.shed), std::to_string(t.cache_hits)});
    }
    table.print(out);
  }
}

void ServerMetrics::write_csv(std::ostream& out) const {
  CsvWriter csv(out);
  csv.row({"record", "key", "value"});
  for (std::size_t e = 0; e < kRequestKindCount; ++e) {
    const EndpointStats& s = endpoints[e];
    const std::string name = to_string(static_cast<RequestKind>(e));
    csv.row({"requests", name, std::to_string(s.requests)});
    csv.row({"mean_us", name, format_double(s.mean_latency_seconds * 1e6, 3)});
    csv.row({"p50_us", name, format_double(s.p50_seconds * 1e6, 3)});
    csv.row({"p95_us", name, format_double(s.p95_seconds * 1e6, 3)});
    csv.row({"p99_us", name, format_double(s.p99_seconds * 1e6, 3)});
  }
  csv.row({"summary", "total_requests", std::to_string(total_requests)});
  csv.row({"summary", "rejected_requests", std::to_string(rejected_requests)});
  csv.row({"summary", "shed_requests", std::to_string(shed_requests)});
  csv.row({"summary", "deadline_expired", std::to_string(deadline_expired)});
  csv.row({"summary", "error_responses", std::to_string(error_responses)});
  csv.row({"summary", "batches", std::to_string(batches)});
  csv.row({"summary", "mean_batch", format_double(mean_batch_size, 3)});
  csv.row({"summary", "max_batch", std::to_string(max_batch_size)});
  csv.row({"summary", "queue_high_water", std::to_string(queue_high_water)});
  csv.row({"summary", "cache_hits", std::to_string(cache.hits)});
  csv.row({"summary", "cache_misses", std::to_string(cache.misses)});
  csv.row({"summary", "cache_hit_rate", format_double(cache.hit_rate(), 4)});
  csv.row({"summary", "cache_evictions", std::to_string(cache.evictions)});
  for (std::size_t i = 0; i < kMaxTrackedBatch; ++i) {
    if (batch_size_counts[i] == 0) continue;
    csv.row({"batch_size", std::to_string(i + 1),
             std::to_string(batch_size_counts[i])});
  }
  for (const TenantStats& t : tenants) {
    const std::string id = std::to_string(t.tenant);
    csv.row({"tenant_accepted", id, std::to_string(t.accepted)});
    csv.row({"tenant_shed", id, std::to_string(t.shed)});
    csv.row({"tenant_cache_hits", id, std::to_string(t.cache_hits)});
  }
}

void publish_to_obs(const ServerMetrics& metrics) {
  if (!obs::enabled()) return;
  obs::Registry& reg = obs::Registry::instance();
  const auto as_i64 = [](std::uint64_t v) {
    return static_cast<std::int64_t>(v);
  };
  reg.gauge("serve.queue_high_water")
      .set(as_i64(metrics.queue_high_water));
  reg.gauge("serve.max_batch").set(as_i64(metrics.max_batch_size));
  reg.gauge("serve.cache_entries").set(as_i64(metrics.cache.entries));
  reg.gauge("serve.cache_hits").set(as_i64(metrics.cache.hits));
  reg.gauge("serve.cache_misses").set(as_i64(metrics.cache.misses));
  reg.gauge("serve.cache_evictions").set(as_i64(metrics.cache.evictions));
  for (const TenantStats& t : metrics.tenants) {
    const std::string prefix = "serve.tenant." + std::to_string(t.tenant);
    reg.gauge(prefix + ".accepted").set(as_i64(t.accepted));
    reg.gauge(prefix + ".shed").set(as_i64(t.shed));
    reg.gauge(prefix + ".cache_hit").set(as_i64(t.cache_hits));
  }
}

}  // namespace gppm::serve
