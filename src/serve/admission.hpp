// serve::AdmissionController — adaptive overload control for a serving
// front-end (the cluster Router, or any caller that can answer a typed
// Overloaded response instead of queueing).
//
// Why not a fixed concurrency cap: serving capacity is a moving target —
// under DVFS the same node's throughput shifts with the operating point
// (the paper's TABLE IV spread is 13–75 % energy between pairs, and Mei et
// al.'s survey shows comparable performance swings), and in a fleet the
// capacity behind one router changes with every membership event.  A static
// limit is therefore either wasteful or unsafe.  This controller *probes*
// for the current capacity the same way TCP does:
//
//   * AIMD concurrency limit — every successful request within its deadline
//     raises the limit additively (+1/limit, so one unit per limit-sized
//     window); every congestion signal (a downstream Overloaded or
//     DeadlineExceeded answer, or an accepted request that blew past its
//     own deadline) cuts it multiplicatively (x `decrease`).  Decreases are
//     rate-limited to one per observed-latency window so a burst of
//     simultaneous failures counts as one signal, not a collapse to
//     min_limit.
//   * deadline-aware admission — the controller keeps an EWMA of observed
//     service latency; a request whose deadline is shorter than the
//     *estimated* completion time (EWMA scaled by the current queue-ish
//     factor 1 + in_flight/limit) is shed immediately.  Shedding at the
//     door costs microseconds; queueing it toward certain deadline blowout
//     costs a worker slot and still answers late.
//
// The caller contract: try_acquire() before launching; exactly one
// release_*() per acquired ticket.  A false try_acquire() means "answer
// ResponseStatus::Overloaded now" — the degradation ladder's last rung
// before a typed error (docs/ROBUSTNESS.md).
//
// Thread-safe (one internal mutex; calls are a few arithmetic ops).
// Instrumented under serve.admission.* when constructed with obs=true.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>

#include "common/units.hpp"

namespace gppm::serve {

/// Validated at AdmissionController construction: limits must be finite
/// with 1 <= min_limit <= max_limit and initial_limit >= 1 (clamped into
/// [min, max]), decrease in (0, 1), ewma_alpha in (0, 1], deadline_headroom
/// finite and > 0.  Violations (including NaN, which would pin the AIMD
/// clamp open or shut) throw gppm::Error instead of misbehaving silently.
struct AdmissionOptions {
  /// Starting concurrency limit (the slow-start ceiling is probed from
  /// here).
  double initial_limit = 32.0;
  double min_limit = 2.0;
  double max_limit = 4096.0;
  /// Multiplicative decrease factor applied per congestion signal.
  double decrease = 0.7;
  /// EWMA smoothing for the observed-latency estimate.
  double ewma_alpha = 0.1;
  /// Shed when estimated completion time exceeds deadline * headroom
  /// (headroom < 1 sheds earlier, > 1 is more permissive).
  double deadline_headroom = 1.0;
  /// Export serve.admission.* metrics.
  bool instrument = true;
};

struct AdmissionStats {
  std::uint64_t admitted = 0;
  std::uint64_t shed_limit = 0;     ///< refused: concurrency limit reached
  std::uint64_t shed_deadline = 0;  ///< refused: cannot finish in time
  std::uint64_t backoffs = 0;       ///< multiplicative decreases applied
  double limit = 0.0;               ///< current AIMD limit
  std::int64_t in_flight = 0;
  double ewma_latency_s = 0.0;
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options = {});

  /// Admit one request, or shed it.  `deadline` is the request's relative
  /// service deadline (zero = none; then only the concurrency limit
  /// applies).  True = launched; the caller owes exactly one release.
  bool try_acquire(Duration deadline);

  /// The request finished within contract: release the slot, feed the
  /// latency into the EWMA, raise the limit additively.
  void release_success(Duration latency);
  /// The request surfaced congestion (downstream shed/deadline blowout, or
  /// an accepted answer later than its own deadline): release the slot and
  /// apply one (rate-limited) multiplicative decrease.  Pass the observed
  /// latency when there is one (it still improves the estimate).
  void release_congestion(Duration latency = Duration::seconds(0.0));
  /// The request failed for non-capacity reasons (dead backend): release
  /// the slot without steering the limit either way.
  void release_error();

  double limit() const;
  std::int64_t in_flight() const;
  AdmissionStats stats() const;

 private:
  using Clock = std::chrono::steady_clock;

  void release_locked();
  void observe_locked(double seconds);

  AdmissionOptions options_;
  mutable std::mutex mutex_;
  double limit_;
  std::int64_t in_flight_ = 0;
  double ewma_s_ = 0.0;
  Clock::time_point last_decrease_{};
  AdmissionStats stats_;
};

}  // namespace gppm::serve
