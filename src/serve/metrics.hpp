// Serving observability: request counts, latency distributions, batch
// shapes, queue saturation, cache effectiveness.
//
// Workers record into lock-free atomic histograms (fixed log-spaced
// latency bins, exact batch-size bins); snapshot() materializes a plain
// ServerMetrics value that renders as the standard ASCII table and as CSV,
// the same two formats every reproduction bench emits.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "serve/cache.hpp"
#include "serve/request.hpp"

namespace gppm::serve {

/// Latency histogram geometry: log10-spaced bins, 10 per decade, covering
/// 100 ns .. 1000 s.  Resolution is one bin = factor 10^0.1 (~26% wide),
/// plenty for p50/p95/p99 reporting.
inline constexpr std::size_t kLatencyBins = 100;
inline constexpr double kLatencyMinSeconds = 1e-7;
inline constexpr std::size_t kBinsPerDecade = 10;

/// Batch sizes are tracked exactly up to this value; larger batches clamp
/// into the last bin.
inline constexpr std::size_t kMaxTrackedBatch = 64;

/// Per-endpoint snapshot statistics.
struct EndpointStats {
  std::uint64_t requests = 0;
  double mean_latency_seconds = 0.0;
  double p50_seconds = 0.0;
  double p95_seconds = 0.0;
  double p99_seconds = 0.0;
};

/// Per-tenant serving counters.  Only non-zero tenants are tracked — the
/// shared tenant-0 traffic stays entirely on the lock-free path and is
/// covered by the aggregate counters.
struct TenantStats {
  std::uint32_t tenant = 0;
  std::uint64_t accepted = 0;    ///< admitted past the tenant quota
  std::uint64_t shed = 0;        ///< answered Overloaded by the quota
  std::uint64_t cache_hits = 0;  ///< answered entirely from the cache
};

/// A point-in-time view of the server's counters, safe to copy around.
struct ServerMetrics {
  std::array<EndpointStats, kRequestKindCount> endpoints;
  std::uint64_t total_requests = 0;
  std::uint64_t rejected_requests = 0;  ///< submissions after shutdown/full
  std::uint64_t shed_requests = 0;      ///< answered Overloaded at admission
  std::uint64_t deadline_expired = 0;   ///< answered DeadlineExceeded
  std::uint64_t error_responses = 0;    ///< NoModels / InternalError answers
  std::uint64_t batches = 0;
  double mean_batch_size = 0.0;
  std::size_t max_batch_size = 0;
  std::array<std::uint64_t, kMaxTrackedBatch> batch_size_counts{};
  std::size_t queue_high_water = 0;
  CacheStats cache;
  /// Per-tenant counters, sorted by tenant id (non-zero tenants only).
  std::vector<TenantStats> tenants;

  /// Human-readable rendering (per-endpoint table + summary lines).
  AsciiTable to_table() const;
  void print(std::ostream& out) const;
  /// Machine-readable rendering: one CSV row per endpoint plus summary
  /// key/value rows, via common/csv.
  void write_csv(std::ostream& out) const;
};

/// Bridge a snapshot onto the shared gppm::obs registry (serve.* gauges:
/// queue high-water, batches, cache hits/misses/evictions, shed/rejected
/// totals).  No-op while obs is disabled; the snapshot itself and its
/// table/CSV renderings are untouched either way.
void publish_to_obs(const ServerMetrics& metrics);

/// Thread-safe recorder the worker pool writes into.
class MetricsCollector {
 public:
  void record_request(RequestKind kind, double latency_seconds);
  void record_batch(std::size_t batch_size);
  void record_rejected();
  void record_shed();
  void record_deadline_expired();
  void record_error_response();
  /// Per-tenant accounting (no-ops for tenant 0; see TenantStats).
  void record_tenant_accepted(std::uint32_t tenant);
  void record_tenant_shed(std::uint32_t tenant);
  void record_tenant_cache_hit(std::uint32_t tenant);

  /// Materialize a snapshot.  Bins are read without a global lock; counts
  /// recorded concurrently with the snapshot may land in either view.
  ServerMetrics snapshot() const;

  /// Latency bin index for a duration (exposed for tests).
  static std::size_t latency_bin(double seconds);
  /// Upper edge of a latency bin in seconds (exposed for tests).
  static double bin_upper_seconds(std::size_t bin);

 private:
  struct EndpointCells {
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> latency_nanos{0};
    std::array<std::atomic<std::uint64_t>, kLatencyBins> bins{};
  };
  std::array<EndpointCells, kRequestKindCount> endpoints_;
  std::array<std::atomic<std::uint64_t>, kMaxTrackedBatch> batch_bins_{};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> batch_items_{0};
  std::atomic<std::uint64_t> max_batch_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> deadline_expired_{0};
  std::atomic<std::uint64_t> error_responses_{0};

  /// Tenant cells live under a mutex: the tenant population is small and
  /// unknown up front, and tenant-0 traffic (the common case) never takes
  /// this lock.
  struct TenantCells {
    std::uint64_t accepted = 0;
    std::uint64_t shed = 0;
    std::uint64_t cache_hits = 0;
  };
  mutable std::mutex tenant_mutex_;
  std::map<std::uint32_t, TenantCells> tenants_;
};

}  // namespace gppm::serve
