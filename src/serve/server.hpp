// The concurrent model-serving engine.
//
// "Fit once offline, predict at runtime" at traffic scale: the server
// holds the fitted (power, exectime) UnifiedModel pair per board and
// answers Predict / Optimize / Govern requests (see request.hpp) from a
// pool of worker threads.
//
// Internals, front to back:
//   * a BoundedQueue<Job> admission queue — full queue = back-pressure on
//     producers, closed queue = shutdown in progress (reject-new);
//   * a dynamic micro-batcher: each worker drains up to `max_batch` queued
//     jobs in one lock acquisition and groups them by (gpu, kind), so the
//     registry lookup, the configurable-pair list and (for Govern) the
//     governor lock amortize over the group — batch size adapts to load
//     by construction, there is no artificial batching delay;
//   * a sharded LRU PredictionCache keyed on (model fingerprint, counter
//     fingerprint, family, pair) — fitted models are pure functions, so
//     repeated phases are answered without touching the model at all;
//   * multi-tenant routing: a request's tenant id selects a per-tenant
//     model family when one is registered (load_tenant_models), falling
//     back to the board default otherwise, and nonzero tenants can carry a
//     fixed admission quota (set_tenant_quota) that sheds excess load as
//     typed Overloaded answers before it reaches the queue;
//   * a MetricsCollector every worker records into (per-endpoint latency
//     histograms, batch shapes, rejections) plus queue high-water and
//     cache hit/miss accounting, exported as table and CSV.
//
// Robustness contract: a request that cannot be served is *answered*, not
// abandoned — workers never die and futures never carry exceptions.
// Missing models, expired deadlines, shed load and handler failures all
// come back as typed non-Ok ResponseStatus values (see request.hpp).
//
// Shutdown drains: shutdown() closes the queue, every already-admitted
// job is still answered, then the workers join.  Submissions after (or
// racing with) shutdown fail with gppm::Error and count as rejected —
// shutdown is the one condition that still throws, because there is no
// worker left to promise an answer.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/serialization.hpp"
#include "serve/admission.hpp"
#include "serve/cache.hpp"
#include "serve/metrics.hpp"
#include "serve/queue.hpp"
#include "serve/request.hpp"

namespace gppm::serve {

struct ServerOptions {
  /// Worker pool size.  One thread already saturates a core on the pure
  /// hit path; scale this with the machine.
  std::size_t worker_threads = 4;
  std::size_t queue_capacity = 4096;
  /// Upper bound of the dynamic micro-batch (clamped to kMaxTrackedBatch).
  std::size_t max_batch = 32;
  /// Total prediction-cache entries; 0 disables caching.
  std::size_t cache_capacity = 1 << 16;
  std::size_t cache_shards = 16;
  /// Governor configuration for the Govern endpoint (policy is taken from
  /// the request; threshold and cap from here).
  core::GovernorOptions governor;
  /// Shed instead of blocking: when true, submit() on a saturated queue
  /// resolves immediately to ResponseStatus::Overloaded rather than
  /// applying back-pressure.  Off by default (closed-loop clients want the
  /// back-pressure).
  bool load_shedding = false;
};

/// Concurrent prediction server over fitted unified models.
class PredictionServer {
 public:
  /// Starts the worker pool immediately.
  explicit PredictionServer(ServerOptions options = {});
  /// Drains and joins (equivalent to shutdown()).
  ~PredictionServer();

  PredictionServer(const PredictionServer&) = delete;
  PredictionServer& operator=(const PredictionServer&) = delete;

  /// Register (or hot-swap) the model pair for a board.  Validates the
  /// pairing the same way core::DvfsGovernor does.  Returns the board the
  /// pair was registered under (the models' own board).
  sim::GpuModel load_models(core::UnifiedModel power_model,
                            core::UnifiedModel perf_model);
  /// Load a serialized power/exectime model pair from disk.  Returns the
  /// board the files target.
  sim::GpuModel load_model_files(const std::string& power_path,
                                 const std::string& perf_path);
  bool has_models(sim::GpuModel gpu) const;

  /// Register (or hot-swap) a per-tenant model family for the models'
  /// board.  Tenant 0 is the shared default family — the call is then
  /// identical to load_models().  Requests carrying this tenant id are
  /// answered from this pair; tenants without a registered family for the
  /// requested board fall back to the board default.
  sim::GpuModel load_tenant_models(std::uint32_t tenant,
                                   core::UnifiedModel power_model,
                                   core::UnifiedModel perf_model);
  /// True when `tenant` has its own family registered for `gpu` (does not
  /// consider the tenant-0 fallback).
  bool has_tenant_models(std::uint32_t tenant, sim::GpuModel gpu) const;

  /// Install (quota > 0) or remove (quota == 0) a fixed concurrency quota
  /// for a nonzero tenant.  An over-quota submission is answered with a
  /// typed ResponseStatus::Overloaded immediately — it never occupies a
  /// queue slot, so one tenant's burst cannot starve the others.  Tenant 0
  /// (the shared default) cannot be limited.
  void set_tenant_quota(std::uint32_t tenant, std::size_t quota);

  /// One loaded board as announced to clients (net::Server's InfoResponse).
  struct LoadedModel {
    sim::GpuModel gpu = sim::GpuModel::GTX680;
    std::uint64_t power_fingerprint = 0;
    std::uint64_t perf_fingerprint = 0;
  };
  /// Every board with a registered model pair, with the serialization
  /// fingerprints of both models.
  std::vector<LoadedModel> loaded_models() const;

  /// Enqueue a request.  Blocks while the queue is full (back-pressure)
  /// unless load shedding is on, in which case a saturated queue answers
  /// ResponseStatus::Overloaded immediately.  Throws gppm::Error once the
  /// server is shut down.  The future always resolves to a Response; check
  /// Response::status — serving failures (no models for the board, expired
  /// deadline, handler error) are typed statuses, never exceptions.
  std::future<Response> submit(Request request);

  /// Non-blocking variant for open-loop producers: returns std::nullopt
  /// (and counts a rejection) when the queue is full or closed.
  std::optional<std::future<Response>> try_submit(Request request);

  /// Drain and stop: reject new submissions, answer everything already
  /// queued, join the workers.  Idempotent, and safe to call from any
  /// number of threads concurrently — including while other threads are
  /// still submitting (their submits fail with gppm::Error).
  void shutdown();
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Requests currently waiting in the admission queue — cheap enough for
  /// a health probe to call on every poll (one mutex acquisition).
  std::size_t queue_depth() const { return queue_.size(); }

  /// Point-in-time metrics (endpoint latencies, batches, queue, cache).
  ServerMetrics metrics() const;

  const ServerOptions& options() const { return options_; }

 private:
  struct Job {
    Request request;
    std::promise<Response> promise;
    std::chrono::steady_clock::time_point enqueued;
    /// Quota ticket held while a quota-limited tenant's request is in
    /// flight; finish() releases it according to the response status.
    std::shared_ptr<AdmissionController> quota;
  };
  /// One governor instance per policy; decide() mutates hysteresis state,
  /// so each slot carries its own lock.
  struct GovernorSlot {
    std::mutex mutex;
    core::DvfsGovernor governor;
    explicit GovernorSlot(core::DvfsGovernor g) : governor(std::move(g)) {}
  };
  /// Everything the workers need for one board, resolved once per group.
  struct ModelEntry {
    /// Owning model family (0 = the shared default).  Used as the cache
    /// key's family so tenant families never alias the default entries.
    std::uint32_t tenant = 0;
    core::UnifiedModel power;
    core::UnifiedModel perf;
    std::uint64_t power_fp = 0;
    std::uint64_t perf_fp = 0;
    std::vector<sim::FrequencyPair> pairs;
    std::array<std::unique_ptr<GovernorSlot>, 3> governors;
  };

  void worker_loop();
  void process_group(ModelEntry& entry, Job* jobs, std::size_t count);
  /// Stamp kind + latency, release any tenant quota ticket (success /
  /// congestion / error according to the status) and resolve the promise.
  void finish(Job& job, Response response);
  /// Answer DeadlineExceeded if the job out-waited its deadline (and
  /// record it); returns true when the job was answered.
  bool expire_if_past_deadline(Job& job);
  /// Acquire the tenant's quota ticket into `job.quota`.  Returns false —
  /// after answering the promise with a typed Overloaded — when the quota
  /// sheds the request.
  bool acquire_tenant_quota(Job& job);
  Response handle(ModelEntry& entry, const Request& request, bool& cache_hit);
  double cached_predict(const core::UnifiedModel& model,
                        std::uint64_t model_fp, std::uint64_t counters_fp,
                        std::uint64_t family,
                        const profiler::ProfileResult& counters,
                        sim::FrequencyPair pair, bool& all_hits);
  /// Resolve the model entry for (tenant, board): the tenant's own family
  /// when registered, else the board default, else nullptr.
  std::shared_ptr<ModelEntry> entry_for(std::uint32_t tenant,
                                        sim::GpuModel gpu) const;
  std::shared_ptr<AdmissionController> quota_for(std::uint32_t tenant) const;

  ServerOptions options_;
  BoundedQueue<Job> queue_;
  PredictionCache cache_;
  MetricsCollector metrics_;
  mutable std::shared_mutex registry_mutex_;
  std::array<std::shared_ptr<ModelEntry>, sim::kAllGpus.size()> registry_;
  /// Per-tenant families, keyed tenant * board-count + board-slot.
  std::map<std::uint64_t, std::shared_ptr<ModelEntry>> tenant_registry_;
  mutable std::mutex quota_mutex_;
  std::map<std::uint32_t, std::shared_ptr<AdmissionController>> quotas_;
  std::vector<std::thread> workers_;
  std::atomic<bool> running_{false};
  std::mutex shutdown_mutex_;
};

}  // namespace gppm::serve
