#include "serve/trace.hpp"

#include <array>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/runner.hpp"
#include "dvfs/combos.hpp"
#include "profiler/cuda_profiler.hpp"
#include "workload/suite.hpp"

namespace gppm::serve {

PhaseCorpus build_phase_corpus(sim::GpuModel gpu, bool all_sizes,
                               std::uint64_t seed) {
  PhaseCorpus corpus;
  corpus.gpu = gpu;
  core::RunnerOptions ropt;
  ropt.seed = seed;
  core::MeasurementRunner runner(gpu, ropt);
  profiler::CudaProfiler prof(seed);
  runner.gpu().set_frequency_pair(sim::kDefaultPair);
  for (const workload::BenchmarkDef& bench : workload::benchmark_suite()) {
    if (!profiler::CudaProfiler::supports(bench.name)) continue;
    const std::size_t first = all_sizes ? 0 : bench.size_count - 1;
    for (std::size_t size = first; size < bench.size_count; ++size) {
      corpus.names.push_back(bench.name + "/" + std::to_string(size));
      corpus.counters.push_back(
          prof.collect(runner.gpu(), runner.prepared_profile(bench, size)));
    }
  }
  GPPM_CHECK(!corpus.counters.empty(), "empty phase corpus");
  return corpus;
}

std::vector<Request> synthetic_trace(const PhaseCorpus& corpus,
                                     const TraceOptions& options) {
  GPPM_CHECK(options.optimize_fraction >= 0 && options.govern_fraction >= 0 &&
                 options.optimize_fraction + options.govern_fraction <= 1.0,
             "endpoint fractions must be non-negative and sum to <= 1");
  GPPM_CHECK(options.counter_jitter >= 0 && options.counter_jitter <= 1,
             "counter_jitter must be in [0, 1]");

  // Zipf popularity: phase i (suite order) gets weight 1/(i+1)^s.
  std::vector<double> cumulative(corpus.counters.size());
  double total = 0.0;
  for (std::size_t i = 0; i < corpus.counters.size(); ++i) {
    total += std::pow(static_cast<double>(i + 1), -options.zipf_exponent);
    cumulative[i] = total;
  }

  const std::vector<sim::FrequencyPair> pairs =
      dvfs::configurable_pairs(corpus.gpu);
  const std::array<core::GovernorPolicy, 3> policies = {
      core::GovernorPolicy::MinimumEnergy, core::GovernorPolicy::MinimumEdp,
      core::GovernorPolicy::PowerCap};

  Rng rng(options.seed);
  std::vector<Request> trace;
  trace.reserve(options.request_count);
  for (std::size_t i = 0; i < options.request_count; ++i) {
    // Phase pick: binary search the cumulative Zipf weights.
    const double u = rng.uniform(0.0, total);
    std::size_t lo = 0, hi = cumulative.size() - 1;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (cumulative[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }

    Request req;
    req.gpu = corpus.gpu;
    req.counters = corpus.counters[lo];
    const double kind = rng.uniform();
    if (kind < options.optimize_fraction) {
      req.kind = RequestKind::Optimize;
    } else if (kind < options.optimize_fraction + options.govern_fraction) {
      req.kind = RequestKind::Govern;
      req.policy = policies[rng.uniform_index(policies.size())];
    } else {
      req.kind = RequestKind::Predict;
      req.pair = pairs[rng.uniform_index(pairs.size())];
    }
    if (options.counter_jitter > 0 && rng.uniform() < options.counter_jitter) {
      // Perturb every reading by a tiny unique factor: a fresh phase the
      // cache has never seen, while staying in the model's input range.
      const double factor = 1.0 + 1e-9 * static_cast<double>(i + 1);
      for (profiler::CounterReading& r : req.counters.counters) {
        r.total *= factor;
        r.per_second *= factor;
      }
    }
    trace.push_back(std::move(req));
  }
  return trace;
}

}  // namespace gppm::serve
