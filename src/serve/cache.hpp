// Sharded LRU cache for model predictions.
//
// DVFS phases repeat: a server replaying real traffic sees the same
// (workload phase, operating point) queries over and over, and a fitted
// linear model is a pure function of its inputs — so predictions are
// perfectly cacheable.  Entries are keyed on
//
//   (model fingerprint, counter-vector fingerprint, frequency pair)
//
// where the model fingerprint is core::model_fingerprint (stable across
// serialization round-trips) and the counter fingerprint hashes every
// reading's bit pattern.  The cache is sharded by key hash with one mutex
// and one LRU list per shard, so concurrent workers rarely contend on the
// same lock; hit/miss/eviction counts aggregate across shards for the
// metrics report.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "gpusim/arch.hpp"
#include "profiler/cuda_profiler.hpp"

namespace gppm::serve {

/// Fingerprint of a counter vector: FNV-1a over every reading's identity
/// (name and event class) and bit patterns (totals and rates) plus the run
/// time.  Identity is part of the key: profiles from different architecture
/// catalogs can carry identical numerics under different counter names, and
/// excluding the names made such profiles collide onto one cache entry.
std::uint64_t counters_fingerprint(const profiler::ProfileResult& counters);

/// Cache key for one prediction.  `family` is the model-family id the
/// prediction was served under (the tenant id in the multi-tenant server;
/// 0 for the shared default family).  Model fingerprints usually separate
/// families already, but the id is part of the key so two families that
/// happen to carry bit-identical models — e.g. a tenant bootstrapped from
/// a copy of the default pair and refit later — can never alias each
/// other's entries across the swap.
struct PredictionKey {
  std::uint64_t model_fp = 0;
  std::uint64_t counters_fp = 0;
  std::uint64_t family = 0;
  sim::FrequencyPair pair;

  bool operator==(const PredictionKey&) const = default;
  std::uint64_t hash() const;
};

/// Aggregate cache statistics (summed over shards).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
  std::size_t capacity = 0;

  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// Thread-safe sharded LRU mapping PredictionKey -> predicted value.
class PredictionCache {
 public:
  /// `capacity` is the total entry budget, split evenly across shards.
  /// A capacity of zero disables the cache (every lookup misses, inserts
  /// are dropped) — the serve bench uses this to measure the uncached path.
  explicit PredictionCache(std::size_t capacity, std::size_t shards = 16);

  /// Look up a prediction; true (and fills `value`) on hit.  A hit
  /// refreshes the entry's LRU position.
  bool lookup(const PredictionKey& key, double& value);

  /// Insert or refresh an entry, evicting the shard's least recently used
  /// entry when that shard is at capacity.
  void insert(const PredictionKey& key, double value);

  CacheStats stats() const;
  void clear();

  std::size_t capacity() const { return capacity_; }
  bool enabled() const { return capacity_ > 0; }

 private:
  struct Entry {
    PredictionKey key;
    double value = 0.0;
  };
  struct KeyHash {
    std::uint64_t operator()(const PredictionKey& k) const { return k.hash(); }
  };
  struct Shard {
    std::mutex mutex;
    std::list<Entry> lru;  ///< front = most recently used
    std::unordered_map<PredictionKey, std::list<Entry>::iterator, KeyHash>
        index;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  Shard& shard_for(const PredictionKey& key);

  std::size_t capacity_ = 0;
  std::size_t per_shard_capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace gppm::serve
