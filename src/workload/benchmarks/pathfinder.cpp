// Rodinia `pathfinder`: dynamic-programming grid traversal (one row per
// step, ghost-zone blocking in shared memory).  Light arithmetic with good
// row reuse; launch count scales with the grid height.  One of the four
// programs the paper's CUDA profiler could not analyze.
#include "workload/benchmarks/all.hpp"
#include "workload/kernels.hpp"

namespace gppm::workload::benchmarks {

BenchmarkDef make_pathfinder() {
  BenchmarkDef def;
  def.name = "pathfinder";
  def.suite = Suite::Rodinia;
  def.size_count = 3;
  def.build = [](double scale) {
    sim::RunProfile run;
    run.host_time = Duration::milliseconds(220.0 * (0.5 + 0.5 * scale));

    sim::KernelProfile k;
    k.name = "dynproc_kernel";
    k.blocks = 1024;
    k.threads_per_block = 256;
    k.flops_sp_per_thread = 18.0;
    k.int_ops_per_thread = 24.0;
    k.shared_ops_per_thread = 12.0;
    k.global_load_bytes_per_thread = 10.0;
    k.global_store_bytes_per_thread = 3.0;
    k.coalescing = 0.90;
    k.locality = 0.70;
    k.divergence = 1.15;
    k.occupancy = 0.80;
    run.kernels.push_back(balance_launches(scale_grid(k, scale), 0.4 * scale));
    return run;
  };
  return def;
}

}  // namespace gppm::workload::benchmarks
