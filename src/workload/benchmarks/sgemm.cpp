// Parboil `sgemm`: single-precision dense matrix multiply with
// shared-memory tiling and register blocking.  Per loaded byte each thread
// performs dozens of FMAs thanks to tile reuse: compute-bound on every
// architecture, with shared-memory traffic as the secondary pressure.
#include "workload/benchmarks/all.hpp"
#include "workload/kernels.hpp"

namespace gppm::workload::benchmarks {

BenchmarkDef make_sgemm() {
  BenchmarkDef def;
  def.name = "sgemm";
  def.suite = Suite::Parboil;
  def.size_count = 4;
  def.build = [](double scale) {
    sim::RunProfile run;
    run.host_time = Duration::milliseconds(280.0 * (0.5 + 0.5 * scale));

    sim::KernelProfile k;
    k.name = "mysgemmNT";
    k.blocks = 1024;
    k.threads_per_block = 128;
    k.flops_sp_per_thread = 1024.0;  // 2 x tile-K FMAs per output element
    k.int_ops_per_thread = 120.0;
    k.shared_ops_per_thread = 128.0;
    k.bank_conflict = 1.1;
    k.global_load_bytes_per_thread = 24.0;
    k.global_store_bytes_per_thread = 4.0;
    k.coalescing = 0.95;
    k.locality = 0.75;
    k.occupancy = 0.80;
    k.overlap = 0.90;
    run.kernels.push_back(balance_launches(scale_grid(k, scale), 1.0 * scale));
    return run;
  };
  return def;
}

}  // namespace gppm::workload::benchmarks
