// Parboil `histo`: large saturating histogram.  Input-dependent scatter
// into bins: shared-memory sub-histograms with heavy bank conflicts,
// divergent saturation checks, poorly coalesced global merges.
#include "workload/benchmarks/all.hpp"
#include "workload/kernels.hpp"

namespace gppm::workload::benchmarks {

BenchmarkDef make_histo() {
  BenchmarkDef def;
  def.name = "histo";
  def.suite = Suite::Parboil;
  def.size_count = 3;
  def.build = [](double scale) {
    sim::RunProfile run;
    run.host_time = Duration::milliseconds(360.0 * (0.5 + 0.5 * scale));

    sim::KernelProfile k;
    k.name = "histo_main_kernel";
    k.blocks = 2048;
    k.threads_per_block = 256;
    k.flops_sp_per_thread = 8.0;
    k.int_ops_per_thread = 46.0;
    k.shared_ops_per_thread = 40.0;
    k.bank_conflict = 1.8;
    k.global_load_bytes_per_thread = 12.0;
    k.global_store_bytes_per_thread = 6.0;
    k.coalescing = 0.50;
    k.locality = 0.45;
    k.divergence = 1.6;
    k.occupancy = 0.70;
    run.kernels.push_back(balance_launches(scale_grid(k, scale), 0.5 * scale));

    // histo_final: merge per-block sub-histograms with saturation.
    sim::KernelProfile merge;
    merge.name = "histo_final_kernel";
    merge.blocks = 512;
    merge.threads_per_block = 256;
    merge.flops_sp_per_thread = 2.0;
    merge.int_ops_per_thread = 30.0;
    merge.global_load_bytes_per_thread = 24.0;
    merge.global_store_bytes_per_thread = 8.0;
    merge.coalescing = 0.90;
    merge.locality = 0.30;
    merge.divergence = 1.2;
    merge.occupancy = 0.80;
    run.kernels.push_back(balance_launches(scale_grid(merge, scale), 0.1 * scale));
    return run;
  };
  return def;
}

}  // namespace gppm::workload::benchmarks
