// Rodinia `hotspot`: 2D thermal simulation, iterative 5-point stencil with
// shared-memory tiling (pyramidal blocking).  Raw arithmetic intensity is
// low but the tile reuse makes it cache/shared friendly: compute-leaning on
// the cached architectures, memory-leaning on Tesla.
#include "workload/benchmarks/all.hpp"
#include "workload/kernels.hpp"

namespace gppm::workload::benchmarks {

BenchmarkDef make_hotspot() {
  BenchmarkDef def;
  def.name = "hotspot";
  def.suite = Suite::Rodinia;
  def.size_count = 4;
  def.build = [](double scale) {
    sim::RunProfile run;
    run.host_time = Duration::milliseconds(280.0 * (0.5 + 0.5 * scale));

    sim::KernelProfile k;
    k.name = "calculate_temp";
    k.blocks = 2048;
    k.threads_per_block = 256;
    k.flops_sp_per_thread = 42.0;   // 5-point update + power term, per cell
    k.int_ops_per_thread = 20.0;
    k.shared_ops_per_thread = 14.0; // tile loads/stores
    k.global_load_bytes_per_thread = 16.0;
    k.global_store_bytes_per_thread = 4.0;
    k.coalescing = 0.92;
    k.locality = 0.72;
    k.divergence = 1.1;  // halo threads
    k.occupancy = 0.85;
    run.kernels.push_back(balance_launches(scale_grid(k, scale), 0.6 * scale));
    return run;
  };
  return def;
}

}  // namespace gppm::workload::benchmarks
