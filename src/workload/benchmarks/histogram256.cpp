// CUDA SDK `histogram256`: 256-bin histogram with per-warp shared-memory
// sub-histograms.  More bins than histogram64 means worse bank behaviour
// and heavier merge traffic.
#include "workload/benchmarks/all.hpp"
#include "workload/kernels.hpp"

namespace gppm::workload::benchmarks {

BenchmarkDef make_histogram256() {
  BenchmarkDef def;
  def.name = "histogram256";
  def.suite = Suite::CudaSdk;
  def.size_count = 4;
  def.build = [](double scale) {
    sim::RunProfile run;
    run.host_time = Duration::milliseconds(200.0 * (0.5 + 0.5 * scale));

    sim::KernelProfile k;
    k.name = "histogram256Kernel";
    k.blocks = 2048;
    k.threads_per_block = 256;
    k.flops_sp_per_thread = 6.0;
    k.int_ops_per_thread = 44.0;
    k.shared_ops_per_thread = 30.0;
    k.bank_conflict = 2.0;
    k.global_load_bytes_per_thread = 16.0;
    k.global_store_bytes_per_thread = 3.0;
    k.coalescing = 0.80;
    k.locality = 0.50;
    k.occupancy = 0.85;
    run.kernels.push_back(balance_launches(scale_grid(k, scale), 0.55 * scale));
    return run;
  };
  return def;
}

}  // namespace gppm::workload::benchmarks
