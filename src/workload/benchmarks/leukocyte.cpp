// Rodinia `leukocyte`: white-blood-cell tracking in video microscopy.
// Gradient-inverse-coefficient-of-variation stencils plus iterative active
// contours: high FLOP density with SFU usage and moderate divergence at
// cell boundaries.
#include "workload/benchmarks/all.hpp"
#include "workload/kernels.hpp"

namespace gppm::workload::benchmarks {

BenchmarkDef make_leukocyte() {
  BenchmarkDef def;
  def.name = "leukocyte";
  def.suite = Suite::Rodinia;
  def.size_count = 3;
  def.build = [](double scale) {
    sim::RunProfile run;
    run.host_time = Duration::milliseconds(450.0 * (0.5 + 0.5 * scale));

    sim::KernelProfile k;
    k.name = "IMGVF_kernel";
    k.blocks = 1200;
    k.threads_per_block = 256;
    k.flops_sp_per_thread = 380.0;
    k.int_ops_per_thread = 90.0;
    k.special_ops_per_thread = 30.0;
    k.global_load_bytes_per_thread = 12.0;
    k.global_store_bytes_per_thread = 3.0;
    k.coalescing = 0.80;
    k.locality = 0.60;
    k.divergence = 1.3;
    k.occupancy = 0.65;
    run.kernels.push_back(balance_launches(scale_grid(k, scale), 0.9 * scale));
    return run;
  };
  return def;
}

}  // namespace gppm::workload::benchmarks
