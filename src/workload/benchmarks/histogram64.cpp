// CUDA SDK `histogram64`: 64-bin histogram with per-thread sub-histograms
// in shared memory.  Integer-dominated binning with moderate bank
// conflicts; the byte stream is read once.
#include "workload/benchmarks/all.hpp"
#include "workload/kernels.hpp"

namespace gppm::workload::benchmarks {

BenchmarkDef make_histogram64() {
  BenchmarkDef def;
  def.name = "histogram64";
  def.suite = Suite::CudaSdk;
  def.size_count = 3;
  def.build = [](double scale) {
    sim::RunProfile run;
    run.host_time = Duration::milliseconds(200.0 * (0.5 + 0.5 * scale));

    sim::KernelProfile k;
    k.name = "histogram64Kernel";
    k.blocks = 2048;
    k.threads_per_block = 256;
    k.flops_sp_per_thread = 6.0;
    k.int_ops_per_thread = 40.0;
    k.shared_ops_per_thread = 26.0;
    k.bank_conflict = 1.5;
    k.global_load_bytes_per_thread = 16.0;
    k.global_store_bytes_per_thread = 2.0;
    k.coalescing = 0.80;
    k.locality = 0.50;
    k.occupancy = 0.85;
    run.kernels.push_back(balance_launches(scale_grid(k, scale), 0.5 * scale));
    return run;
  };
  return def;
}

}  // namespace gppm::workload::benchmarks
