// Matrix `MTranspose`: out-of-place matrix transpose through shared-memory
// tiles.  Zero FLOPs: pure data movement whose write side is only partially
// coalesced — entirely at the mercy of the memory clock.
#include "workload/benchmarks/all.hpp"
#include "workload/kernels.hpp"

namespace gppm::workload::benchmarks {

BenchmarkDef make_mtranspose() {
  BenchmarkDef def;
  def.name = "MTranspose";
  def.suite = Suite::Matrix;
  def.size_count = 3;
  def.build = [](double scale) {
    sim::RunProfile run;
    run.host_time = Duration::milliseconds(180.0 * (0.5 + 0.5 * scale));

    sim::KernelProfile k;
    k.name = "transpose_kernel";
    k.blocks = 4096;
    k.threads_per_block = 256;
    k.flops_sp_per_thread = 0.0;
    k.int_ops_per_thread = 14.0;
    k.shared_ops_per_thread = 8.0;
    k.bank_conflict = 1.1;
    k.global_load_bytes_per_thread = 8.0;
    k.global_store_bytes_per_thread = 8.0;
    k.coalescing = 0.85;
    k.locality = 0.30;
    k.occupancy = 0.95;
    k.overlap = 0.80;
    run.kernels.push_back(balance_launches(scale_grid(k, scale), 0.45 * scale));
    return run;
  };
  return def;
}

}  // namespace gppm::workload::benchmarks
