// Rodinia `streamcluster`: online clustering.  The pgain kernel streams the
// full point set against candidate centers every call: long-stride reads
// with almost no reuse and little arithmetic per byte — the paper's
// most memory-intensive workload (Fig. 2).
#include "workload/benchmarks/all.hpp"
#include "workload/kernels.hpp"

namespace gppm::workload::benchmarks {

BenchmarkDef make_streamcluster() {
  BenchmarkDef def;
  def.name = "streamcluster";
  def.suite = Suite::Rodinia;
  def.size_count = 4;
  def.build = [](double scale) {
    sim::RunProfile run;
    run.host_time = Duration::milliseconds(420.0 * (0.5 + 0.5 * scale));

    sim::KernelProfile k;
    k.name = "pgain_kernel";
    k.blocks = 3072;
    k.threads_per_block = 256;
    k.flops_sp_per_thread = 36.0;
    k.int_ops_per_thread = 20.0;
    k.global_load_bytes_per_thread = 40.0;  // point coordinates, streamed
    k.global_store_bytes_per_thread = 3.0;
    k.coalescing = 0.90;
    k.locality = 0.15;
    k.divergence = 1.1;
    k.occupancy = 0.85;
    k.overlap = 0.75;
    run.kernels.push_back(balance_launches(scale_grid(k, scale), 1.4 * scale));
    return run;
  };
  return def;
}

}  // namespace gppm::workload::benchmarks
