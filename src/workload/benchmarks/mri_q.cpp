// Parboil `mri-q`: MRI reconstruction Q-matrix.  Each thread accumulates
// cos/sin phase terms over thousands of sample points kept in constant
// memory: enormous FLOP count with SFU trigonometry and almost no DRAM
// traffic — the most compute-bound Parboil program.
#include "workload/benchmarks/all.hpp"
#include "workload/kernels.hpp"

namespace gppm::workload::benchmarks {

BenchmarkDef make_mri_q() {
  BenchmarkDef def;
  def.name = "mri-q";
  def.suite = Suite::Parboil;
  def.size_count = 4;
  def.build = [](double scale) {
    sim::RunProfile run;
    run.host_time = Duration::milliseconds(240.0 * (0.5 + 0.5 * scale));

    sim::KernelProfile k;
    k.name = "ComputeQ_GPU";
    k.blocks = 2048;
    k.threads_per_block = 256;
    k.flops_sp_per_thread = 760.0;
    k.int_ops_per_thread = 90.0;
    k.special_ops_per_thread = 90.0;  // sincos per sample point
    k.global_load_bytes_per_thread = 6.0;
    k.global_store_bytes_per_thread = 3.0;
    k.coalescing = 1.0;
    k.locality = 0.50;
    k.occupancy = 0.85;
    k.overlap = 0.90;
    run.kernels.push_back(balance_launches(scale_grid(k, scale), 0.9 * scale));
    return run;
  };
  return def;
}

}  // namespace gppm::workload::benchmarks
