// Matrix `MMul`: tiled dense matrix multiply (the canonical shared-memory
// CUDA example).  Tile reuse turns it compute-bound everywhere.
#include "workload/benchmarks/all.hpp"
#include "workload/kernels.hpp"

namespace gppm::workload::benchmarks {

BenchmarkDef make_mmul() {
  BenchmarkDef def;
  def.name = "MMul";
  def.suite = Suite::Matrix;
  def.size_count = 4;
  def.build = [](double scale) {
    sim::RunProfile run;
    run.host_time = Duration::milliseconds(220.0 * (0.5 + 0.5 * scale));

    sim::KernelProfile k;
    k.name = "mmul_kernel";
    k.blocks = 2048;
    k.threads_per_block = 256;
    k.flops_sp_per_thread = 512.0;
    k.int_ops_per_thread = 60.0;
    k.shared_ops_per_thread = 64.0;
    k.bank_conflict = 1.1;
    k.global_load_bytes_per_thread = 16.0;
    k.global_store_bytes_per_thread = 2.0;
    k.coalescing = 0.95;
    k.locality = 0.75;
    k.occupancy = 0.85;
    k.overlap = 0.90;
    run.kernels.push_back(balance_launches(scale_grid(k, scale), 0.9 * scale));
    return run;
  };
  return def;
}

}  // namespace gppm::workload::benchmarks
