// Matrix `MAdd`: elementwise matrix addition C = A + B.  One FLOP per
// twelve bytes of perfectly coalesced traffic: the purest bandwidth-bound
// workload in the suite.
#include "workload/benchmarks/all.hpp"
#include "workload/kernels.hpp"

namespace gppm::workload::benchmarks {

BenchmarkDef make_madd() {
  BenchmarkDef def;
  def.name = "MAdd";
  def.suite = Suite::Matrix;
  def.size_count = 3;
  def.build = [](double scale) {
    sim::RunProfile run;
    run.host_time = Duration::milliseconds(180.0 * (0.5 + 0.5 * scale));

    sim::KernelProfile k;
    k.name = "madd_kernel";
    k.blocks = 4096;
    k.threads_per_block = 256;
    k.flops_sp_per_thread = 2.0;
    k.int_ops_per_thread = 12.0;
    k.global_load_bytes_per_thread = 8.0;
    k.global_store_bytes_per_thread = 4.0;
    k.coalescing = 1.0;
    k.locality = 0.05;
    k.occupancy = 1.0;
    k.overlap = 0.80;
    run.kernels.push_back(balance_launches(scale_grid(k, scale), 0.5 * scale));
    return run;
  };
  return def;
}

}  // namespace gppm::workload::benchmarks
