// Rodinia `lavaMD`: molecular dynamics inside neighbour boxes.  Pairwise
// particle interactions with exponentials (SFU work) over shared-memory
// particle tiles: one of the most compute-dense Rodinia programs, with
// register pressure capping occupancy.
#include "workload/benchmarks/all.hpp"
#include "workload/kernels.hpp"

namespace gppm::workload::benchmarks {

BenchmarkDef make_lavamd() {
  BenchmarkDef def;
  def.name = "lavaMD";
  def.suite = Suite::Rodinia;
  def.size_count = 3;
  def.build = [](double scale) {
    sim::RunProfile run;
    run.host_time = Duration::milliseconds(300.0 * (0.5 + 0.5 * scale));

    sim::KernelProfile k;
    k.name = "kernel_gpu_cuda";
    k.blocks = 1000;  // one block per box
    k.threads_per_block = 128;
    k.flops_sp_per_thread = 520.0;
    k.flops_dp_per_thread = 40.0;   // accumulation in double
    k.int_ops_per_thread = 110.0;
    k.special_ops_per_thread = 26.0;  // exp() per interaction
    k.shared_ops_per_thread = 40.0;
    k.global_load_bytes_per_thread = 14.0;
    k.global_store_bytes_per_thread = 4.0;
    k.coalescing = 0.80;
    k.locality = 0.60;
    k.divergence = 1.2;
    k.occupancy = 0.60;  // register-limited
    k.overlap = 0.90;
    run.kernels.push_back(balance_launches(scale_grid(k, scale), 1.1 * scale));
    return run;
  };
  return def;
}

}  // namespace gppm::workload::benchmarks
