// Factory declarations for the 37 benchmark models (paper TABLE II).
// Each factory lives in its own translation unit under
// src/workload/benchmarks/ and documents how the profile was derived from
// the real program's algorithm.
#pragma once

#include "workload/benchmark.hpp"

namespace gppm::workload::benchmarks {

// Rodinia (18)
BenchmarkDef make_backprop();
BenchmarkDef make_bfs();
BenchmarkDef make_cfd();
BenchmarkDef make_gaussian();
BenchmarkDef make_heartwall();
BenchmarkDef make_hotspot();
BenchmarkDef make_kmeans();
BenchmarkDef make_lavamd();
BenchmarkDef make_leukocyte();
BenchmarkDef make_mummergpu();
BenchmarkDef make_lud();
BenchmarkDef make_nn();
BenchmarkDef make_nw();
BenchmarkDef make_particlefilter();
BenchmarkDef make_pathfinder();
BenchmarkDef make_srad_v1();
BenchmarkDef make_srad_v2();
BenchmarkDef make_streamcluster();

// Parboil (10)
BenchmarkDef make_cutcp();
BenchmarkDef make_histo();
BenchmarkDef make_lbm();
BenchmarkDef make_mri_gridding();
BenchmarkDef make_mri_q();
BenchmarkDef make_sad();
BenchmarkDef make_sgemm();
BenchmarkDef make_spmv();
BenchmarkDef make_stencil();
BenchmarkDef make_tpacf();

// CUDA SDK (6)
BenchmarkDef make_binomial_options();
BenchmarkDef make_black_scholes();
BenchmarkDef make_concurrent_kernels();
BenchmarkDef make_histogram64();
BenchmarkDef make_histogram256();
BenchmarkDef make_mersenne_twister();

// Matrix (3)
BenchmarkDef make_madd();
BenchmarkDef make_mmul();
BenchmarkDef make_mtranspose();

}  // namespace gppm::workload::benchmarks
