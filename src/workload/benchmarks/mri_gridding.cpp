// Parboil `mri-gridding`: gridding of non-uniform MRI k-space samples onto
// a regular grid.  Scatter with a Kaiser-Bessel window: data-dependent
// neighbourhoods, poor coalescing, divergent bounds checks.
#include "workload/benchmarks/all.hpp"
#include "workload/kernels.hpp"

namespace gppm::workload::benchmarks {

BenchmarkDef make_mri_gridding() {
  BenchmarkDef def;
  def.name = "mri-gridding";
  def.suite = Suite::Parboil;
  def.size_count = 3;
  def.build = [](double scale) {
    sim::RunProfile run;
    run.host_time = Duration::milliseconds(480.0 * (0.5 + 0.5 * scale));

    sim::KernelProfile k;
    k.name = "gridding_GPU";
    k.blocks = 1536;
    k.threads_per_block = 256;
    k.flops_sp_per_thread = 90.0;
    k.int_ops_per_thread = 70.0;
    k.special_ops_per_thread = 10.0;  // window function evaluation
    k.global_load_bytes_per_thread = 20.0;
    k.global_store_bytes_per_thread = 12.0;
    k.coalescing = 0.30;
    k.locality = 0.35;
    k.divergence = 1.5;
    k.occupancy = 0.65;
    run.kernels.push_back(balance_launches(scale_grid(k, scale), 0.9 * scale));
    return run;
  };
  return def;
}

}  // namespace gppm::workload::benchmarks
