// Rodinia `kmeans`: k-means clustering.  Each thread computes distances
// from one point to all centroids; centroids are small enough to cache but
// the point stream is read once per iteration — a balanced workload with a
// memory-leaning tilt at large inputs.
#include "workload/benchmarks/all.hpp"
#include "workload/kernels.hpp"

namespace gppm::workload::benchmarks {

BenchmarkDef make_kmeans() {
  BenchmarkDef def;
  def.name = "kmeans";
  def.suite = Suite::Rodinia;
  def.size_count = 4;
  def.build = [](double scale) {
    sim::RunProfile run;
    run.host_time = Duration::milliseconds(380.0 * (0.5 + 0.5 * scale));

    sim::KernelProfile k;
    k.name = "kmeansPoint";
    k.blocks = 3072;
    k.threads_per_block = 256;
    k.flops_sp_per_thread = 70.0;   // distance terms over centroids
    k.int_ops_per_thread = 36.0;
    k.global_load_bytes_per_thread = 22.0;  // features (streamed) + centroids
    k.global_store_bytes_per_thread = 2.0;  // membership index
    k.coalescing = 0.85;
    k.locality = 0.30;
    k.divergence = 1.15;
    k.occupancy = 0.90;
    run.kernels.push_back(balance_launches(scale_grid(k, scale), 0.65 * scale));

    // kmeans_swap: transpose the feature matrix for coalesced access —
    // pure data movement, run once per invocation batch.
    sim::KernelProfile swap;
    swap.name = "kmeans_swap";
    swap.blocks = 3072;
    swap.threads_per_block = 256;
    swap.int_ops_per_thread = 10.0;
    swap.global_load_bytes_per_thread = 16.0;
    swap.global_store_bytes_per_thread = 16.0;
    swap.coalescing = 0.70;
    swap.locality = 0.10;
    swap.occupancy = 0.95;
    run.kernels.push_back(balance_launches(scale_grid(swap, scale), 0.15 * scale));
    return run;
  };
  return def;
}

}  // namespace gppm::workload::benchmarks
