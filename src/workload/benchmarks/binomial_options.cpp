// CUDA SDK `binomialOptions`: binomial-tree option pricing.  One block per
// option walks the tree backwards entirely in shared memory: thousands of
// FLOPs per byte of global traffic — pure compute with shared-memory
// pressure.
#include "workload/benchmarks/all.hpp"
#include "workload/kernels.hpp"

namespace gppm::workload::benchmarks {

BenchmarkDef make_binomial_options() {
  BenchmarkDef def;
  def.name = "binomialOptions";
  def.suite = Suite::CudaSdk;
  def.size_count = 3;
  def.build = [](double scale) {
    sim::RunProfile run;
    run.host_time = Duration::milliseconds(200.0 * (0.5 + 0.5 * scale));

    sim::KernelProfile k;
    k.name = "binomialOptionsKernel";
    k.blocks = 1024;  // one per option
    k.threads_per_block = 256;
    k.flops_sp_per_thread = 880.0;
    k.int_ops_per_thread = 160.0;
    k.shared_ops_per_thread = 220.0;
    k.bank_conflict = 1.05;
    k.global_load_bytes_per_thread = 2.0;
    k.global_store_bytes_per_thread = 1.0;
    k.coalescing = 1.0;
    k.locality = 0.80;
    k.occupancy = 0.70;
    k.overlap = 0.90;
    run.kernels.push_back(balance_launches(scale_grid(k, scale), 1.0 * scale));
    return run;
  };
  return def;
}

}  // namespace gppm::workload::benchmarks
