// Rodinia `heartwall`: mouse-heart-wall tracking on ultrasound frames.
// Template matching around each tracking point: convolution-like arithmetic
// with data-dependent control flow across points (divergence) and moderate
// reuse of the frame window.
#include "workload/benchmarks/all.hpp"
#include "workload/kernels.hpp"

namespace gppm::workload::benchmarks {

BenchmarkDef make_heartwall() {
  BenchmarkDef def;
  def.name = "heartwall";
  def.suite = Suite::Rodinia;
  def.size_count = 3;
  def.build = [](double scale) {
    sim::RunProfile run;
    run.host_time = Duration::milliseconds(520.0 * (0.5 + 0.5 * scale));

    sim::KernelProfile k;
    k.name = "heartwall_kernel";
    k.blocks = 1024;
    k.threads_per_block = 256;
    k.flops_sp_per_thread = 260.0;
    k.int_ops_per_thread = 90.0;
    k.special_ops_per_thread = 14.0;
    k.global_load_bytes_per_thread = 18.0;
    k.global_store_bytes_per_thread = 4.0;
    k.coalescing = 0.75;
    k.locality = 0.55;
    k.divergence = 1.45;
    k.occupancy = 0.60;
    run.kernels.push_back(balance_launches(scale_grid(k, scale), 0.9 * scale));
    return run;
  };
  return def;
}

}  // namespace gppm::workload::benchmarks
