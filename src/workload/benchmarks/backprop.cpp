// Rodinia `backprop`: back-propagation training of a fully-connected neural
// network layer.  Two kernels per iteration: layerforward (dense
// matrix-vector products into shared-memory partial sums) and
// adjust_weights (weight update).  Per connection the forward pass does a
// multiply-accumulate plus index arithmetic on data that stays resident,
// so arithmetic intensity is high — the paper showcases it as the
// compute-intensive workload of Fig. 1 (performance flat in memory
// frequency, linear in core frequency, on every architecture).
#include "workload/benchmarks/all.hpp"
#include "workload/kernels.hpp"

namespace gppm::workload::benchmarks {

BenchmarkDef make_backprop() {
  BenchmarkDef def;
  def.name = "backprop";
  def.suite = Suite::Rodinia;
  def.size_count = 3;
  def.build = [](double scale) {
    sim::RunProfile run;
    run.host_time = Duration::milliseconds(80.0 * (0.5 + 0.5 * scale));

    sim::KernelProfile fwd;
    fwd.name = "layerforward";
    fwd.blocks = 2048;
    fwd.threads_per_block = 256;
    fwd.flops_sp_per_thread = 900.0;   // MACs over the hidden layer
    fwd.int_ops_per_thread = 160.0;    // index arithmetic
    fwd.shared_ops_per_thread = 24.0;  // partial-sum reduction
    fwd.global_load_bytes_per_thread = 3.0;
    fwd.global_store_bytes_per_thread = 1.0;
    fwd.coalescing = 0.97;
    fwd.locality = 0.85;  // weights stay resident across the layer sweep
    fwd.divergence = 1.05;
    fwd.occupancy = 0.90;
    fwd.overlap = 0.85;
    run.kernels.push_back(balance_launches(scale_grid(fwd, scale), 0.50 * scale));

    sim::KernelProfile adj;
    adj.name = "adjust_weights";
    adj.blocks = 2048;
    adj.threads_per_block = 256;
    adj.flops_sp_per_thread = 400.0;
    adj.int_ops_per_thread = 80.0;
    adj.global_load_bytes_per_thread = 3.0;
    adj.global_store_bytes_per_thread = 1.0;
    adj.coalescing = 0.95;
    adj.locality = 0.85;
    adj.occupancy = 0.90;
    adj.overlap = 0.85;
    run.kernels.push_back(balance_launches(scale_grid(adj, scale), 0.22 * scale));
    return run;
  };
  return def;
}

}  // namespace gppm::workload::benchmarks
