// CUDA SDK `MersenneTwister`: parallel Mersenne-Twister random number
// generation plus Box-Muller transform.  Integer state updates dominate,
// output is a pure write stream.
#include "workload/benchmarks/all.hpp"
#include "workload/kernels.hpp"

namespace gppm::workload::benchmarks {

BenchmarkDef make_mersenne_twister() {
  BenchmarkDef def;
  def.name = "MersenneTwister";
  def.suite = Suite::CudaSdk;
  def.size_count = 3;
  def.build = [](double scale) {
    sim::RunProfile run;
    run.host_time = Duration::milliseconds(220.0 * (0.5 + 0.5 * scale));

    sim::KernelProfile k;
    k.name = "RandomGPU";
    k.blocks = 2048;
    k.threads_per_block = 256;
    k.flops_sp_per_thread = 30.0;   // Box-Muller
    k.int_ops_per_thread = 140.0;   // twister state updates
    k.special_ops_per_thread = 6.0;
    k.global_load_bytes_per_thread = 4.0;
    k.global_store_bytes_per_thread = 16.0;
    k.coalescing = 0.95;
    k.locality = 0.20;
    k.occupancy = 0.90;
    run.kernels.push_back(balance_launches(scale_grid(k, scale), 0.6 * scale));
    return run;
  };
  return def;
}

}  // namespace gppm::workload::benchmarks
