// Parboil `stencil`: 7-point 3D Jacobi stencil.  Streaming sweeps with
// plane reuse in cache: low arithmetic intensity, well-coalesced —
// bandwidth-bound with a cache-assisted tilt on Fermi/Kepler.
#include "workload/benchmarks/all.hpp"
#include "workload/kernels.hpp"

namespace gppm::workload::benchmarks {

BenchmarkDef make_stencil() {
  BenchmarkDef def;
  def.name = "stencil";
  def.suite = Suite::Parboil;
  def.size_count = 4;
  def.build = [](double scale) {
    sim::RunProfile run;
    run.host_time = Duration::milliseconds(260.0 * (0.5 + 0.5 * scale));

    sim::KernelProfile k;
    k.name = "block2D_hybrid_coarsen_x";
    k.blocks = 2048;
    k.threads_per_block = 256;
    k.flops_sp_per_thread = 34.0;  // 7-point update + scaling
    k.int_ops_per_thread = 18.0;
    k.global_load_bytes_per_thread = 30.0;
    k.global_store_bytes_per_thread = 5.0;
    k.coalescing = 0.92;
    k.locality = 0.60;
    k.occupancy = 0.90;
    run.kernels.push_back(balance_launches(scale_grid(k, scale), 0.8 * scale));
    return run;
  };
  return def;
}

}  // namespace gppm::workload::benchmarks
