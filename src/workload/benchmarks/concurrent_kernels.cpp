// CUDA SDK `concurrentKernels`: many tiny kernels issued back-to-back to
// exercise concurrent execution.  Each launch occupies a fraction of the
// machine for microseconds, so launch overhead and idle gaps dominate —
// the GPU is mostly underutilized, which is why the paper finds
// low-frequency pairs optimal for it on every board (TABLE IV).
#include "workload/benchmarks/all.hpp"
#include "workload/kernels.hpp"

namespace gppm::workload::benchmarks {

BenchmarkDef make_concurrent_kernels() {
  BenchmarkDef def;
  def.name = "concurrentKernels";
  def.suite = Suite::CudaSdk;
  def.size_count = 3;
  def.build = [](double scale) {
    sim::RunProfile run;
    run.host_time = Duration::milliseconds(180.0 * (0.5 + 0.5 * scale));

    sim::KernelProfile k;
    k.name = "clock_block";
    k.blocks = 8;  // deliberately undersized grid
    k.threads_per_block = 128;
    k.flops_sp_per_thread = 200.0;
    k.int_ops_per_thread = 40.0;
    k.global_load_bytes_per_thread = 8.0;
    k.global_store_bytes_per_thread = 4.0;
    k.coalescing = 0.90;
    k.locality = 0.30;
    k.occupancy = 0.25;
    run.kernels.push_back(balance_launches(scale_grid(k, scale), 0.6 * scale));
    return run;
  };
  return def;
}

}  // namespace gppm::workload::benchmarks
