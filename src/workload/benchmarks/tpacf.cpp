// Parboil `tpacf`: two-point angular correlation function over galaxy
// positions.  Pairwise angular distances binned into shared-memory
// histograms: FLOP-heavy with transcendental calls and divergent binning.
#include "workload/benchmarks/all.hpp"
#include "workload/kernels.hpp"

namespace gppm::workload::benchmarks {

BenchmarkDef make_tpacf() {
  BenchmarkDef def;
  def.name = "tpacf";
  def.suite = Suite::Parboil;
  def.size_count = 3;
  def.build = [](double scale) {
    sim::RunProfile run;
    run.host_time = Duration::milliseconds(340.0 * (0.5 + 0.5 * scale));

    sim::KernelProfile k;
    k.name = "gen_hists";
    k.blocks = 1024;
    k.threads_per_block = 256;
    k.flops_sp_per_thread = 210.0;
    k.int_ops_per_thread = 80.0;
    k.special_ops_per_thread = 24.0;  // acos per pair
    k.shared_ops_per_thread = 50.0;
    k.bank_conflict = 1.2;
    k.global_load_bytes_per_thread = 10.0;
    k.global_store_bytes_per_thread = 2.0;
    k.coalescing = 0.80;
    k.locality = 0.60;
    k.divergence = 1.4;
    k.occupancy = 0.70;
    run.kernels.push_back(balance_launches(scale_grid(k, scale), 0.9 * scale));
    return run;
  };
  return def;
}

}  // namespace gppm::workload::benchmarks
