// CUDA SDK `BlackScholes`: closed-form option pricing over a large array.
// Five inputs / two outputs per option with ~80 FLOPs and several
// transcendental calls in between: a streaming kernel whose intensity sits
// below Kepler's compute/bandwidth balance but above Tesla's.
#include "workload/benchmarks/all.hpp"
#include "workload/kernels.hpp"

namespace gppm::workload::benchmarks {

BenchmarkDef make_black_scholes() {
  BenchmarkDef def;
  def.name = "BlackScholes";
  def.suite = Suite::CudaSdk;
  def.size_count = 4;
  def.build = [](double scale) {
    sim::RunProfile run;
    run.host_time = Duration::milliseconds(240.0 * (0.5 + 0.5 * scale));

    sim::KernelProfile k;
    k.name = "BlackScholesGPU";
    k.blocks = 4096;
    k.threads_per_block = 256;
    k.flops_sp_per_thread = 90.0;
    k.int_ops_per_thread = 20.0;
    k.special_ops_per_thread = 22.0;  // exp/log/sqrt in the CND
    k.global_load_bytes_per_thread = 20.0;
    k.global_store_bytes_per_thread = 8.0;
    k.coalescing = 1.0;
    k.locality = 0.05;
    k.occupancy = 1.0;
    run.kernels.push_back(balance_launches(scale_grid(k, scale), 0.8 * scale));
    return run;
  };
  return def;
}

}  // namespace gppm::workload::benchmarks
