// Rodinia `srad_v2`: the second SRAD variant — same diffusion algorithm
// restructured without shared-memory tiling, so slightly less reuse and
// more raw global traffic than srad_v1.
#include "workload/benchmarks/all.hpp"
#include "workload/kernels.hpp"

namespace gppm::workload::benchmarks {

BenchmarkDef make_srad_v2() {
  BenchmarkDef def;
  def.name = "srad_v2";
  def.suite = Suite::Rodinia;
  def.size_count = 3;
  def.build = [](double scale) {
    sim::RunProfile run;
    run.host_time = Duration::milliseconds(300.0 * (0.5 + 0.5 * scale));

    sim::KernelProfile k;
    k.name = "srad_cuda_1";
    k.blocks = 2048;
    k.threads_per_block = 256;
    k.flops_sp_per_thread = 48.0;
    k.int_ops_per_thread = 26.0;
    k.special_ops_per_thread = 6.0;
    k.global_load_bytes_per_thread = 26.0;
    k.global_store_bytes_per_thread = 7.0;
    k.coalescing = 0.90;
    k.locality = 0.55;
    k.occupancy = 0.85;
    run.kernels.push_back(balance_launches(scale_grid(k, scale), 0.7 * scale));
    return run;
  };
  return def;
}

}  // namespace gppm::workload::benchmarks
