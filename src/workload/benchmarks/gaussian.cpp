// Rodinia `gaussian`: Gaussian elimination.  Row elimination alternates a
// small multiplier kernel (Fan1) and a large update kernel (Fan2) once per
// pivot.  Its arithmetic intensity sits near the compute/memory balance
// point of the evaluated boards, which is why the paper uses it (Fig. 3) as
// the workload whose boundedness flips between frequency pairs and between
// same-generation boards.
#include "workload/benchmarks/all.hpp"
#include "workload/kernels.hpp"

namespace gppm::workload::benchmarks {

BenchmarkDef make_gaussian() {
  BenchmarkDef def;
  def.name = "gaussian";
  def.suite = Suite::Rodinia;
  def.size_count = 4;
  def.build = [](double scale) {
    sim::RunProfile run;
    run.host_time = Duration::milliseconds(260.0 * (0.5 + 0.5 * scale));

    sim::KernelProfile fan1;
    fan1.name = "Fan1";
    fan1.blocks = 64;
    fan1.threads_per_block = 128;
    fan1.flops_sp_per_thread = 20.0;
    fan1.int_ops_per_thread = 10.0;
    fan1.global_load_bytes_per_thread = 8.0;
    fan1.global_store_bytes_per_thread = 4.0;
    fan1.coalescing = 0.90;
    fan1.locality = 0.40;
    fan1.occupancy = 0.40;  // one block column: underpopulated grid
    run.kernels.push_back(balance_launches(scale_grid(fan1, scale), 0.12 * scale));

    sim::KernelProfile fan2;
    fan2.name = "Fan2";
    fan2.blocks = 1024;
    fan2.threads_per_block = 256;
    fan2.flops_sp_per_thread = 50.0;   // multiply-subtract over the submatrix
    fan2.int_ops_per_thread = 24.0;
    fan2.global_load_bytes_per_thread = 12.0;
    fan2.global_store_bytes_per_thread = 6.0;
    fan2.coalescing = 0.90;
    fan2.locality = 0.45;
    fan2.occupancy = 0.85;
    run.kernels.push_back(balance_launches(scale_grid(fan2, scale), 0.75 * scale));
    return run;
  };
  return def;
}

}  // namespace gppm::workload::benchmarks
