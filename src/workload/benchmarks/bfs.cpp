// Rodinia `bfs`: level-synchronous breadth-first search.  Frontier threads
// chase adjacency lists through scattered global loads — almost no FLOPs,
// terrible coalescing, heavy branch divergence: the classic
// latency/bandwidth-bound irregular workload.
#include "workload/benchmarks/all.hpp"
#include "workload/kernels.hpp"

namespace gppm::workload::benchmarks {

BenchmarkDef make_bfs() {
  BenchmarkDef def;
  def.name = "bfs";
  def.suite = Suite::Rodinia;
  def.size_count = 3;
  def.build = [](double scale) {
    sim::RunProfile run;
    run.host_time = Duration::milliseconds(480.0 * (0.5 + 0.5 * scale));

    sim::KernelProfile k;
    k.name = "bfs_kernel";
    k.blocks = 3072;
    k.threads_per_block = 256;
    k.flops_sp_per_thread = 4.0;
    k.int_ops_per_thread = 34.0;   // offset/visited-bitmap arithmetic
    k.global_load_bytes_per_thread = 22.0;  // edge list + frontier flags
    k.global_store_bytes_per_thread = 4.0;
    k.coalescing = 0.25;  // neighbor indices land in scattered segments
    k.locality = 0.20;
    k.divergence = 1.9;   // frontier membership splits every warp
    k.occupancy = 0.85;
    k.overlap = 0.70;
    run.kernels.push_back(balance_launches(scale_grid(k, scale), 0.35 * scale));
    return run;
  };
  return def;
}

}  // namespace gppm::workload::benchmarks
