// Rodinia `srad_v1`: speckle-reducing anisotropic diffusion (image
// despeckling), two stencil passes per iteration with divergence
// coefficients computed through exp().  Stencil reuse gives the cached
// architectures a compute-leaning profile; Tesla sees it memory-bound.
#include "workload/benchmarks/all.hpp"
#include "workload/kernels.hpp"

namespace gppm::workload::benchmarks {

BenchmarkDef make_srad_v1() {
  BenchmarkDef def;
  def.name = "srad_v1";
  def.suite = Suite::Rodinia;
  def.size_count = 4;
  def.build = [](double scale) {
    sim::RunProfile run;
    run.host_time = Duration::milliseconds(300.0 * (0.5 + 0.5 * scale));

    sim::KernelProfile k;
    k.name = "srad_kernel";
    k.blocks = 2048;
    k.threads_per_block = 256;
    k.flops_sp_per_thread = 60.0;
    k.int_ops_per_thread = 30.0;
    k.special_ops_per_thread = 8.0;  // exp() in the diffusion coefficient
    k.global_load_bytes_per_thread = 24.0;  // 4-neighbour stencil
    k.global_store_bytes_per_thread = 6.0;
    k.coalescing = 0.90;
    k.locality = 0.62;
    k.occupancy = 0.85;
    run.kernels.push_back(balance_launches(scale_grid(k, scale), 0.7 * scale));
    return run;
  };
  return def;
}

}  // namespace gppm::workload::benchmarks
