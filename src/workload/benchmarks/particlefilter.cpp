// Rodinia `particlefilter_float`: particle-filter object tracking.
// Likelihood evaluation and resampling per particle: moderate arithmetic
// with transcendental calls, divergent resampling branches.
#include "workload/benchmarks/all.hpp"
#include "workload/kernels.hpp"

namespace gppm::workload::benchmarks {

BenchmarkDef make_particlefilter() {
  BenchmarkDef def;
  def.name = "particlefilter_float";
  def.suite = Suite::Rodinia;
  def.size_count = 3;
  def.build = [](double scale) {
    sim::RunProfile run;
    run.host_time = Duration::milliseconds(340.0 * (0.5 + 0.5 * scale));

    sim::KernelProfile k;
    k.name = "likelihood_kernel";
    k.blocks = 1536;
    k.threads_per_block = 256;
    k.flops_sp_per_thread = 110.0;
    k.int_ops_per_thread = 50.0;
    k.special_ops_per_thread = 18.0;  // exp/log in the likelihood
    k.global_load_bytes_per_thread = 12.0;
    k.global_store_bytes_per_thread = 6.0;
    k.coalescing = 0.80;
    k.locality = 0.40;
    k.divergence = 1.35;
    k.occupancy = 0.75;
    run.kernels.push_back(balance_launches(scale_grid(k, scale), 0.7 * scale));
    return run;
  };
  return def;
}

}  // namespace gppm::workload::benchmarks
