// Rodinia `nn`: k-nearest-neighbours over hurricane records.  A single
// short distance kernel streams the record array once; most of the wall
// time is host-side parsing and the final CPU-side sort, so the GPU's DVFS
// leverage is small.
#include "workload/benchmarks/all.hpp"
#include "workload/kernels.hpp"

namespace gppm::workload::benchmarks {

BenchmarkDef make_nn() {
  BenchmarkDef def;
  def.name = "nn";
  def.suite = Suite::Rodinia;
  def.size_count = 3;
  def.build = [](double scale) {
    sim::RunProfile run;
    run.host_time = Duration::milliseconds(700.0 * (0.5 + 0.5 * scale));

    sim::KernelProfile k;
    k.name = "euclid";
    k.blocks = 2048;
    k.threads_per_block = 256;
    k.flops_sp_per_thread = 20.0;  // lat/long distance
    k.int_ops_per_thread = 10.0;
    k.special_ops_per_thread = 2.0;  // sqrt
    k.global_load_bytes_per_thread = 16.0;
    k.global_store_bytes_per_thread = 4.0;
    k.coalescing = 0.95;
    k.locality = 0.10;
    k.occupancy = 0.95;
    run.kernels.push_back(balance_launches(scale_grid(k, scale), 0.15 * scale));
    return run;
  };
  return def;
}

}  // namespace gppm::workload::benchmarks
