// Rodinia `mummergpu`: DNA read alignment by suffix-tree traversal.  Each
// thread walks pointer-linked tree nodes (bound through the texture path on
// real hardware): scattered accesses, deep divergence, almost no arithmetic.
// One of the four programs the paper's CUDA profiler could not analyze.
#include "workload/benchmarks/all.hpp"
#include "workload/kernels.hpp"

namespace gppm::workload::benchmarks {

BenchmarkDef make_mummergpu() {
  BenchmarkDef def;
  def.name = "mummergpu";
  def.suite = Suite::Rodinia;
  def.size_count = 3;
  def.build = [](double scale) {
    sim::RunProfile run;
    run.host_time = Duration::milliseconds(900.0 * (0.5 + 0.5 * scale));

    sim::KernelProfile k;
    k.name = "mummergpuKernel";
    k.blocks = 2048;
    k.threads_per_block = 256;
    k.flops_sp_per_thread = 10.0;
    k.int_ops_per_thread = 60.0;     // match-length bookkeeping
    k.tex_ops_per_thread = 24.0;     // tree nodes fetched via texture
    k.global_load_bytes_per_thread = 26.0;
    k.global_store_bytes_per_thread = 5.0;
    k.coalescing = 0.15;  // pointer chasing
    k.locality = 0.35;    // upper tree levels are shared
    k.divergence = 2.3;
    k.occupancy = 0.70;
    k.overlap = 0.60;
    run.kernels.push_back(balance_launches(scale_grid(k, scale), 0.8 * scale));
    return run;
  };
  return def;
}

}  // namespace gppm::workload::benchmarks
