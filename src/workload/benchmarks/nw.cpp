// Rodinia `nw`: Needleman-Wunsch sequence alignment.  The score matrix is
// filled along anti-diagonals: many small dependent launches, shared-memory
// tiles, low occupancy at the diagonal ends — a launch-bound, weakly
// parallel workload.
#include "workload/benchmarks/all.hpp"
#include "workload/kernels.hpp"

namespace gppm::workload::benchmarks {

BenchmarkDef make_nw() {
  BenchmarkDef def;
  def.name = "nw";
  def.suite = Suite::Rodinia;
  def.size_count = 3;
  def.build = [](double scale) {
    sim::RunProfile run;
    run.host_time = Duration::milliseconds(260.0 * (0.5 + 0.5 * scale));

    sim::KernelProfile k;
    k.name = "needle_cuda_shared";
    k.blocks = 512;
    k.threads_per_block = 64;
    k.flops_sp_per_thread = 30.0;
    k.int_ops_per_thread = 26.0;
    k.shared_ops_per_thread = 30.0;
    k.global_load_bytes_per_thread = 9.0;
    k.global_store_bytes_per_thread = 5.0;
    k.coalescing = 0.70;
    k.locality = 0.60;
    k.divergence = 1.3;
    k.occupancy = 0.35;
    run.kernels.push_back(balance_launches(scale_grid(k, scale), 0.5 * scale));
    return run;
  };
  return def;
}

}  // namespace gppm::workload::benchmarks
