// Rodinia `cfd`: unstructured-grid Euler solver (3D flux computation).
// Per cell the flux kernel evaluates ~100 floating-point operations over
// four neighbour states fetched through an indirection table; the solver
// iterates many time steps, so kernel launches dominate the run.
#include "workload/benchmarks/all.hpp"
#include "workload/kernels.hpp"

namespace gppm::workload::benchmarks {

BenchmarkDef make_cfd() {
  BenchmarkDef def;
  def.name = "cfd";
  def.suite = Suite::Rodinia;
  def.size_count = 4;
  def.build = [](double scale) {
    sim::RunProfile run;
    run.host_time = Duration::milliseconds(420.0 * (0.5 + 0.5 * scale));

    sim::KernelProfile k;
    k.name = "compute_flux";
    k.blocks = 1536;
    k.threads_per_block = 192;
    k.flops_sp_per_thread = 240.0;
    k.int_ops_per_thread = 60.0;
    k.special_ops_per_thread = 8.0;  // sqrt in the speed-of-sound terms
    k.global_load_bytes_per_thread = 26.0;  // neighbour states via indirection
    k.global_store_bytes_per_thread = 8.0;
    k.coalescing = 0.80;
    k.locality = 0.40;
    k.divergence = 1.1;
    k.occupancy = 0.70;
    k.overlap = 0.85;
    run.kernels.push_back(balance_launches(scale_grid(k, scale), 1.0 * scale));

    // The RK time-step update: a light streaming kernel launched as often
    // as the flux kernel.
    sim::KernelProfile step;
    step.name = "time_step";
    step.blocks = 1536;
    step.threads_per_block = 192;
    step.flops_sp_per_thread = 24.0;
    step.int_ops_per_thread = 12.0;
    step.global_load_bytes_per_thread = 20.0;
    step.global_store_bytes_per_thread = 20.0;
    step.coalescing = 0.95;
    step.locality = 0.15;
    step.occupancy = 0.90;
    run.kernels.push_back(balance_launches(scale_grid(step, scale), 0.2 * scale));
    return run;
  };
  return def;
}

}  // namespace gppm::workload::benchmarks
