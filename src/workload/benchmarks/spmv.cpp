// Parboil `spmv`: sparse matrix-vector multiply (JDS format).  Index-driven
// gathers of the dense vector defeat coalescing; two loads per FMA make it
// firmly bandwidth-bound with an irregular access tail.
#include "workload/benchmarks/all.hpp"
#include "workload/kernels.hpp"

namespace gppm::workload::benchmarks {

BenchmarkDef make_spmv() {
  BenchmarkDef def;
  def.name = "spmv";
  def.suite = Suite::Parboil;
  def.size_count = 4;
  def.build = [](double scale) {
    sim::RunProfile run;
    run.host_time = Duration::milliseconds(300.0 * (0.5 + 0.5 * scale));

    sim::KernelProfile k;
    k.name = "spmv_jds";
    k.blocks = 2048;
    k.threads_per_block = 256;
    k.flops_sp_per_thread = 24.0;
    k.int_ops_per_thread = 26.0;
    k.global_load_bytes_per_thread = 36.0;  // values + column indices + x gathers
    k.global_store_bytes_per_thread = 2.0;
    k.coalescing = 0.45;
    k.locality = 0.30;
    k.divergence = 1.25;  // row-length imbalance
    k.occupancy = 0.80;
    k.overlap = 0.75;
    run.kernels.push_back(balance_launches(scale_grid(k, scale), 0.6 * scale));
    return run;
  };
  return def;
}

}  // namespace gppm::workload::benchmarks
