// Rodinia `lud`: dense LU decomposition with shared-memory blocking.
// Diagonal, perimeter and internal kernels per block step; the internal
// kernel dominates: tile multiply-subtract with good reuse but noticeable
// bank pressure, and shrinking parallelism near the end of the matrix.
#include "workload/benchmarks/all.hpp"
#include "workload/kernels.hpp"

namespace gppm::workload::benchmarks {

BenchmarkDef make_lud() {
  BenchmarkDef def;
  def.name = "lud";
  def.suite = Suite::Rodinia;
  def.size_count = 4;
  def.build = [](double scale) {
    sim::RunProfile run;
    run.host_time = Duration::milliseconds(240.0 * (0.5 + 0.5 * scale));

    sim::KernelProfile k;
    k.name = "lud_internal";
    k.blocks = 1024;
    k.threads_per_block = 256;
    k.flops_sp_per_thread = 120.0;
    k.int_ops_per_thread = 40.0;
    k.shared_ops_per_thread = 60.0;
    k.bank_conflict = 1.35;
    k.global_load_bytes_per_thread = 10.0;
    k.global_store_bytes_per_thread = 5.0;
    k.coalescing = 0.85;
    k.locality = 0.65;
    k.occupancy = 0.55;
    run.kernels.push_back(balance_launches(scale_grid(k, scale), 0.7 * scale));
    return run;
  };
  return def;
}

}  // namespace gppm::workload::benchmarks
