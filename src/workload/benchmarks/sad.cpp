// Parboil `sad`: sum-of-absolute-differences block matching from H.264
// motion estimation.  16x16 macroblock comparisons with strong reuse of the
// reference window (texture path on hardware) and integer-dominated
// arithmetic.
#include "workload/benchmarks/all.hpp"
#include "workload/kernels.hpp"

namespace gppm::workload::benchmarks {

BenchmarkDef make_sad() {
  BenchmarkDef def;
  def.name = "sad";
  def.suite = Suite::Parboil;
  def.size_count = 3;
  def.build = [](double scale) {
    sim::RunProfile run;
    run.host_time = Duration::milliseconds(300.0 * (0.5 + 0.5 * scale));

    sim::KernelProfile k;
    k.name = "mb_sad_calc";
    k.blocks = 1800;
    k.threads_per_block = 256;
    k.flops_sp_per_thread = 130.0;  // abs-diff accumulation
    k.int_ops_per_thread = 60.0;
    k.shared_ops_per_thread = 30.0;
    k.tex_ops_per_thread = 8.0;
    k.global_load_bytes_per_thread = 14.0;
    k.global_store_bytes_per_thread = 5.0;
    k.coalescing = 0.80;
    k.locality = 0.70;
    k.occupancy = 0.80;
    run.kernels.push_back(balance_launches(scale_grid(k, scale), 0.5 * scale));
    return run;
  };
  return def;
}

}  // namespace gppm::workload::benchmarks
