// Parboil `lbm`: D3Q19 lattice-Boltzmann fluid step.  Per cell, 19
// distribution values are read and 19 written to neighbour offsets with a
// couple hundred FLOPs in between: a classic bandwidth-bound streaming
// kernel whose working set defeats caches.
#include "workload/benchmarks/all.hpp"
#include "workload/kernels.hpp"

namespace gppm::workload::benchmarks {

BenchmarkDef make_lbm() {
  BenchmarkDef def;
  def.name = "lbm";
  def.suite = Suite::Parboil;
  def.size_count = 4;
  def.build = [](double scale) {
    sim::RunProfile run;
    run.host_time = Duration::milliseconds(560.0 * (0.5 + 0.5 * scale));

    sim::KernelProfile k;
    k.name = "performStreamCollide";
    k.blocks = 2560;
    k.threads_per_block = 128;
    k.flops_sp_per_thread = 210.0;
    k.int_ops_per_thread = 50.0;
    k.global_load_bytes_per_thread = 76.0;   // 19 x 4B distributions in
    k.global_store_bytes_per_thread = 76.0;  // 19 x 4B out
    k.coalescing = 0.78;  // propagation offsets break some coalescing
    k.locality = 0.20;
    k.occupancy = 0.80;
    k.overlap = 0.85;
    run.kernels.push_back(balance_launches(scale_grid(k, scale), 1.35 * scale));

    // Obstacle/boundary treatment: a divergent, smaller sweep per step.
    sim::KernelProfile boundary;
    boundary.name = "treatBoundary";
    boundary.blocks = 640;
    boundary.threads_per_block = 128;
    boundary.flops_sp_per_thread = 40.0;
    boundary.int_ops_per_thread = 30.0;
    boundary.global_load_bytes_per_thread = 40.0;
    boundary.global_store_bytes_per_thread = 20.0;
    boundary.coalescing = 0.60;
    boundary.locality = 0.25;
    boundary.divergence = 1.6;
    boundary.occupancy = 0.70;
    run.kernels.push_back(
        balance_launches(scale_grid(boundary, scale), 0.15 * scale));
    return run;
  };
  return def;
}

}  // namespace gppm::workload::benchmarks
