// Parboil `cutcp`: cutoff-limited Coulombic potential on a 3D lattice.
// Each thread accumulates distance-weighted charges from a shared-memory
// bin of atoms: dense FMA work with rsqrt (SFU) per interaction — strongly
// compute-bound.
#include "workload/benchmarks/all.hpp"
#include "workload/kernels.hpp"

namespace gppm::workload::benchmarks {

BenchmarkDef make_cutcp() {
  BenchmarkDef def;
  def.name = "cutcp";
  def.suite = Suite::Parboil;
  def.size_count = 3;
  def.build = [](double scale) {
    sim::RunProfile run;
    run.host_time = Duration::milliseconds(260.0 * (0.5 + 0.5 * scale));

    sim::KernelProfile k;
    k.name = "cuda_cutoff_potential_lattice";
    k.blocks = 1536;
    k.threads_per_block = 128;
    k.flops_sp_per_thread = 640.0;
    k.int_ops_per_thread = 120.0;
    k.special_ops_per_thread = 40.0;  // rsqrt per atom interaction
    k.shared_ops_per_thread = 30.0;
    k.global_load_bytes_per_thread = 9.0;
    k.global_store_bytes_per_thread = 3.0;
    k.coalescing = 0.85;
    k.locality = 0.65;
    k.occupancy = 0.75;
    k.overlap = 0.90;
    run.kernels.push_back(balance_launches(scale_grid(k, scale), 0.8 * scale));
    return run;
  };
  return def;
}

}  // namespace gppm::workload::benchmarks
