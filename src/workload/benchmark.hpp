// Benchmark-suite framework.
//
// Each of the paper's 37 target programs (TABLE II: Rodinia, Parboil,
// CUDA SDK, matrix kernels) is modeled as a BenchmarkDef: a name, the suite
// it comes from, the input sizes it is run at, and a builder that derives
// the kernel profiles for a given size from the real algorithm's structure
// (op counts per element, access pattern, iteration counts).  The paper
// varies input sizes to obtain its 114 modeling samples; `size_count`
// encodes how many sizes each program contributes.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "gpusim/kernel_profile.hpp"

namespace gppm::workload {

/// Benchmark suite of origin (paper TABLE II).
enum class Suite { Rodinia, Parboil, CudaSdk, Matrix };

std::string to_string(Suite s);

/// One benchmark program.
struct BenchmarkDef {
  std::string name;
  Suite suite;
  /// Number of input sizes this program is sampled at; size index i runs at
  /// scale 2^i of the base input.
  std::size_t size_count = 3;
  /// Build the run profile at a given input scale (1, 2, 4, ...).
  std::function<sim::RunProfile(double scale)> build;

  /// Input scale of size index i (doubling ladder, i < size_count).
  double scale_of(std::size_t size_index) const;

  /// Run profile at size index i; the largest index is the paper's
  /// "maximum feasible input data size" used for characterization.
  sim::RunProfile profile(std::size_t size_index) const;

  /// Profile at the largest size.
  sim::RunProfile max_profile() const { return profile(size_count - 1); }
};

}  // namespace gppm::workload
