// Phase-segmented workload emission for the online DVFS governor.
//
// A governor does not see a curated modeling corpus; it sees *phases* — a
// stream of kernels from whatever applications happen to be running, at
// input sizes the offline corpus never measured.  This module turns the
// TABLE II suite into such a stream: a deterministic schedule of
// (benchmark, input scale) phases whose scales drift off the corpus's
// doubling ladder, so an online refit engine has real distribution shift
// to chase.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gpusim/kernel_profile.hpp"

namespace gppm::workload {

/// One application phase: a benchmark run at an input scale.  Unlike the
/// corpus's size_index ladder (scale 2^i exactly), a phase scale may sit
/// anywhere BenchmarkDef::build accepts.
struct Phase {
  std::string benchmark;
  double scale = 1.0;

  /// Run profile of the phase (looked up in the suite registry).
  sim::RunProfile profile() const;
};

struct PhaseScheduleOptions {
  /// Number of phases emitted.
  std::size_t phases = 24;
  /// Seed of the schedule; equal seeds give identical schedules.
  std::uint64_t seed = 42;
  /// Relative scale wobble around the corpus ladder: each phase's scale is
  /// a ladder point times (1 + drift * u), u uniform in [-1, 1].  0 stays
  /// exactly on the ladder.
  double drift = 0.25;
};

/// Build a deterministic phase schedule over the benchmark suite, skipping
/// any benchmark named in `exclude` (callers pass the profiler-unsupported
/// set — this module cannot depend on the profiler).  Phases cycle through
/// the eligible programs in a seed-shuffled order so consecutive phases
/// change kernels, re-shuffling each time the list is exhausted.
std::vector<Phase> phase_schedule(const PhaseScheduleOptions& options = {},
                                  const std::vector<std::string>& exclude = {});

}  // namespace gppm::workload
