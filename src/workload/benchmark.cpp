#include "workload/benchmark.hpp"

#include <cmath>

#include "common/error.hpp"

namespace gppm::workload {

std::string to_string(Suite s) {
  switch (s) {
    case Suite::Rodinia: return "Rodinia";
    case Suite::Parboil: return "Parboil";
    case Suite::CudaSdk: return "CUDA SDK";
    case Suite::Matrix: return "Matrix";
  }
  throw Error("unknown suite");
}

double BenchmarkDef::scale_of(std::size_t size_index) const {
  GPPM_CHECK(size_index < size_count, "size index out of range");
  return std::pow(2.0, static_cast<double>(size_index));
}

sim::RunProfile BenchmarkDef::profile(std::size_t size_index) const {
  GPPM_CHECK(static_cast<bool>(build), "benchmark has no builder");
  sim::RunProfile p = build(scale_of(size_index));
  GPPM_CHECK(!p.kernels.empty(), "benchmark built no kernels");
  // Tag kernels with the size so per-workload effects key on (name, size),
  // and scale the counter-invisible noise: small inputs are relatively
  // noisier than large ones.
  for (sim::KernelProfile& k : p.kernels) {
    k.name = name + "/s" + std::to_string(size_index) + "/" + k.name;
    k.unmodeled_scale = 1.45 - 0.3 * static_cast<double>(size_index);
  }
  p.benchmark_name = name;
  return p;
}

}  // namespace gppm::workload
