#include "workload/suite.hpp"

#include "common/error.hpp"
#include "workload/benchmarks/all.hpp"

namespace gppm::workload {

const std::vector<BenchmarkDef>& benchmark_suite() {
  static const std::vector<BenchmarkDef> suite = [] {
    using namespace benchmarks;
    std::vector<BenchmarkDef> s;
    // Rodinia
    s.push_back(make_backprop());
    s.push_back(make_bfs());
    s.push_back(make_cfd());
    s.push_back(make_gaussian());
    s.push_back(make_heartwall());
    s.push_back(make_hotspot());
    s.push_back(make_kmeans());
    s.push_back(make_lavamd());
    s.push_back(make_leukocyte());
    s.push_back(make_mummergpu());
    s.push_back(make_lud());
    s.push_back(make_nn());
    s.push_back(make_nw());
    s.push_back(make_particlefilter());
    s.push_back(make_pathfinder());
    s.push_back(make_srad_v1());
    s.push_back(make_srad_v2());
    s.push_back(make_streamcluster());
    // Parboil
    s.push_back(make_cutcp());
    s.push_back(make_histo());
    s.push_back(make_lbm());
    s.push_back(make_mri_gridding());
    s.push_back(make_mri_q());
    s.push_back(make_sad());
    s.push_back(make_sgemm());
    s.push_back(make_spmv());
    s.push_back(make_stencil());
    s.push_back(make_tpacf());
    // CUDA SDK
    s.push_back(make_binomial_options());
    s.push_back(make_black_scholes());
    s.push_back(make_concurrent_kernels());
    s.push_back(make_histogram64());
    s.push_back(make_histogram256());
    s.push_back(make_mersenne_twister());
    // Matrix
    s.push_back(make_madd());
    s.push_back(make_mmul());
    s.push_back(make_mtranspose());
    return s;
  }();
  return suite;
}

const BenchmarkDef& find_benchmark(const std::string& name) {
  for (const BenchmarkDef& def : benchmark_suite()) {
    if (def.name == name) return def;
  }
  throw Error("unknown benchmark: " + name);
}

std::size_t total_samples(const std::vector<BenchmarkDef>& defs) {
  std::size_t n = 0;
  for (const BenchmarkDef& def : defs) n += def.size_count;
  return n;
}

}  // namespace gppm::workload
