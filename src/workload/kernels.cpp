#include "workload/kernels.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "gpusim/timing.hpp"

namespace gppm::workload {

sim::KernelProfile scale_grid(sim::KernelProfile base, double scale) {
  GPPM_CHECK(scale > 0.0, "scale must be positive");
  base.blocks = static_cast<std::uint64_t>(
      std::max(1.0, std::round(static_cast<double>(base.blocks) * scale)));
  return base;
}

sim::KernelProfile scale_launches(sim::KernelProfile base, double scale) {
  GPPM_CHECK(scale > 0.0, "scale must be positive");
  base.launches = static_cast<std::uint32_t>(
      std::max(1.0, std::round(static_cast<double>(base.launches) * scale)));
  return base;
}

sim::KernelProfile balance_launches(sim::KernelProfile kernel,
                                    double target_seconds) {
  GPPM_CHECK(target_seconds > 0.0, "target must be positive");
  const sim::DeviceSpec& ref = sim::device_spec(sim::GpuModel::GTX480);
  kernel.launches = 1;
  const sim::KernelTiming t =
      sim::compute_kernel_timing(ref, kernel, sim::kDefaultPair);
  const double per_launch = t.total_time.as_seconds();
  GPPM_ASSERT(per_launch > 0.0);
  kernel.launches = static_cast<std::uint32_t>(
      std::clamp(std::round(target_seconds / per_launch), 1.0, 2e5));
  return kernel;
}

}  // namespace gppm::workload
