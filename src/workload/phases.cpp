#include "workload/phases.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "workload/suite.hpp"

namespace gppm::workload {

sim::RunProfile Phase::profile() const {
  GPPM_CHECK(scale > 0.0, "phase scale must be > 0");
  return find_benchmark(benchmark).build(scale);
}

std::vector<Phase> phase_schedule(const PhaseScheduleOptions& options,
                                  const std::vector<std::string>& exclude) {
  GPPM_CHECK(options.drift >= 0.0 && options.drift < 1.0,
             "phase drift must be in [0, 1)");
  std::vector<const BenchmarkDef*> eligible;
  for (const BenchmarkDef& b : benchmark_suite()) {
    if (std::find(exclude.begin(), exclude.end(), b.name) != exclude.end()) {
      continue;
    }
    eligible.push_back(&b);
  }
  GPPM_CHECK(!eligible.empty(), "no eligible benchmarks for phase schedule");

  Rng rng(options.seed);
  std::vector<Phase> schedule;
  schedule.reserve(options.phases);
  std::vector<const BenchmarkDef*> order;
  while (schedule.size() < options.phases) {
    if (order.empty()) {
      // Fisher-Yates over the eligible set: a fresh kernel order per lap.
      order = eligible;
      for (std::size_t i = order.size(); i > 1; --i) {
        std::swap(order[i - 1], order[rng.uniform_index(i)]);
      }
    }
    const BenchmarkDef* bench = order.back();
    order.pop_back();
    const std::size_t size_index = rng.uniform_index(bench->size_count);
    const double wobble =
        options.drift == 0.0 ? 0.0 : options.drift * rng.uniform(-1.0, 1.0);
    Phase phase;
    phase.benchmark = bench->name;
    phase.scale = bench->scale_of(size_index) * (1.0 + wobble);
    schedule.push_back(std::move(phase));
  }
  return schedule;
}

}  // namespace gppm::workload
