// The benchmark-suite registry.
#pragma once

#include <vector>

#include "workload/benchmark.hpp"

namespace gppm::workload {

/// All 37 benchmark definitions in paper TABLE II order (Rodinia, Parboil,
/// CUDA SDK, Matrix).  Built once; the reference stays valid for the
/// process lifetime.
const std::vector<BenchmarkDef>& benchmark_suite();

/// Find by name; throws gppm::Error on unknown names.
const BenchmarkDef& find_benchmark(const std::string& name);

/// Total number of (benchmark, input size) samples over a set of
/// benchmarks — the paper's modeling corpus counts 114 of these across the
/// 33 profiler-supported programs.
std::size_t total_samples(const std::vector<BenchmarkDef>& defs);

}  // namespace gppm::workload
