// Helpers for building kernel profiles inside benchmark definitions.
#pragma once

#include <cstdint>

#include "gpusim/kernel_profile.hpp"

namespace gppm::workload {

/// Scale a kernel's grid by the input scale factor (data-parallel scaling:
/// more input elements -> more blocks, same per-thread work).
sim::KernelProfile scale_grid(sim::KernelProfile base, double scale);

/// Scale a kernel's launch count (iterative algorithms: more input -> more
/// solver iterations).
sim::KernelProfile scale_launches(sim::KernelProfile base, double scale);

/// Choose the launch count so the kernel's nominal GPU time at (H-H) on the
/// reference board (GTX 480, the paper's mid-generation device) is
/// approximately `target_seconds`.  Benchmark models use this to place their
/// runtimes in the paper's hundreds-of-ms-to-tens-of-seconds range without
/// hand-computing cycle counts.
sim::KernelProfile balance_launches(sim::KernelProfile kernel,
                                    double target_seconds);

}  // namespace gppm::workload
