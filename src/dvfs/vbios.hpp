// Synthetic video-BIOS images and the performance-table parser.
//
// The paper's frequency-scaling method (Section II-B) patches the GPU's BIOS
// image inside the proprietary driver so the board boots at a chosen P-state
// ("interested readers ... are encouraged to visit the software repository of
// Gdev").  We reproduce that control path against a synthetic image format:
//
//   offset  size  field
//   0       4     magic "GVBS"
//   4       1     format version (1)
//   5       1     GpuModel id
//   6       1     boot P-state index
//   7       1     P-state entry count
//   8       10*n  entries: core_mhz u16 | mem_mhz u16 | core_mv u16 |
//                          mem_mv u16 | flags u8 (bit0: configurable) | pad u8
//   8+10*n  1     checksum byte (two's complement; whole image sums to 0 mod 256)
//
// All multi-byte fields are little-endian, as in real VBIOS tables.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gpusim/arch.hpp"

namespace gppm::dvfs {

/// One decoded performance-table entry.
struct PStateEntry {
  sim::FrequencyPair pair;
  std::uint16_t core_mhz = 0;
  std::uint16_t mem_mhz = 0;
  std::uint16_t core_millivolts = 0;
  std::uint16_t mem_millivolts = 0;
  bool configurable = false;
};

/// A decoded VBIOS performance table.
struct PerfTable {
  sim::GpuModel model;
  std::size_t boot_index = 0;
  std::vector<PStateEntry> entries;

  /// Index of the entry matching `pair`; throws if absent.
  std::size_t index_of(sim::FrequencyPair pair) const;
};

/// Build the board's factory VBIOS image: all nine candidate pairs with
/// frequencies/voltages from the device spec and configurability flags from
/// TABLE III; the boot P-state is (H-H), the paper's default.
std::vector<std::uint8_t> build_vbios(sim::GpuModel model);

/// Parse and validate an image (magic, version, bounds, checksum).
/// Throws gppm::Error on any corruption.
PerfTable parse_vbios(std::span<const std::uint8_t> image);

/// Patch the boot P-state in-place, recomputing the checksum — the Gdev
/// method.  Throws if the pair is not a configurable entry of the image.
void patch_boot_pstate(std::vector<std::uint8_t>& image,
                       sim::FrequencyPair pair);

}  // namespace gppm::dvfs
