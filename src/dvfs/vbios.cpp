#include "dvfs/vbios.hpp"

#include <cmath>

#include "common/error.hpp"
#include "dvfs/combos.hpp"
#include "gpusim/device_spec.hpp"

namespace gppm::dvfs {

namespace {
constexpr std::uint8_t kMagic[4] = {'G', 'V', 'B', 'S'};
constexpr std::uint8_t kVersion = 1;
constexpr std::size_t kHeaderSize = 8;
constexpr std::size_t kEntrySize = 10;

void put_u16(std::vector<std::uint8_t>& buf, std::uint16_t v) {
  buf.push_back(static_cast<std::uint8_t>(v & 0xff));
  buf.push_back(static_cast<std::uint8_t>(v >> 8));
}

std::uint16_t get_u16(std::span<const std::uint8_t> image, std::size_t off) {
  return static_cast<std::uint16_t>(image[off] |
                                    (static_cast<std::uint16_t>(image[off + 1]) << 8));
}

std::uint8_t checksum_complement(std::span<const std::uint8_t> bytes) {
  unsigned sum = 0;
  for (std::uint8_t b : bytes) sum += b;
  return static_cast<std::uint8_t>((256 - (sum & 0xff)) & 0xff);
}

std::uint16_t to_millivolts(gppm::Voltage v) {
  return static_cast<std::uint16_t>(std::lround(v.as_volts() * 1000.0));
}
}  // namespace

std::size_t PerfTable::index_of(sim::FrequencyPair pair) const {
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].pair == pair) return i;
  }
  throw Error("P-state " + sim::to_string(pair) + " not present in table");
}

std::vector<std::uint8_t> build_vbios(sim::GpuModel model) {
  const sim::DeviceSpec& spec = sim::device_spec(model);
  const auto pairs = all_candidate_pairs();

  std::vector<std::uint8_t> image;
  image.reserve(kHeaderSize + kEntrySize * pairs.size() + 1);
  image.insert(image.end(), std::begin(kMagic), std::end(kMagic));
  image.push_back(kVersion);
  image.push_back(static_cast<std::uint8_t>(model));
  image.push_back(0);  // boot index: entry 0 is (H-H), the factory default
  image.push_back(static_cast<std::uint8_t>(pairs.size()));

  for (sim::FrequencyPair p : pairs) {
    const sim::ClockStep& core = spec.core_clock.at(p.core);
    const sim::ClockStep& mem = spec.mem_clock.at(p.mem);
    put_u16(image, static_cast<std::uint16_t>(
                       std::lround(core.frequency.as_mhz())));
    put_u16(image, static_cast<std::uint16_t>(std::lround(mem.frequency.as_mhz())));
    put_u16(image, to_millivolts(core.voltage));
    put_u16(image, to_millivolts(mem.voltage));
    image.push_back(is_configurable(model, p) ? 0x01 : 0x00);
    image.push_back(0x00);  // pad
  }
  image.push_back(checksum_complement(image));
  return image;
}

PerfTable parse_vbios(std::span<const std::uint8_t> image) {
  GPPM_CHECK(image.size() > kHeaderSize + 1, "image too small");
  for (std::size_t i = 0; i < 4; ++i) {
    GPPM_CHECK(image[i] == kMagic[i], "bad VBIOS magic");
  }
  GPPM_CHECK(image[4] == kVersion, "unsupported VBIOS version");
  const std::uint8_t model_id = image[5];
  GPPM_CHECK(model_id < 4, "bad GPU model id");
  const std::size_t boot_index = image[6];
  const std::size_t count = image[7];
  const std::size_t expected = kHeaderSize + kEntrySize * count + 1;
  GPPM_CHECK(image.size() == expected, "image size does not match entry count");
  GPPM_CHECK(boot_index < count, "boot index out of range");

  unsigned sum = 0;
  for (std::uint8_t b : image) sum += b;
  GPPM_CHECK((sum & 0xff) == 0, "VBIOS checksum mismatch");

  PerfTable table;
  table.model = static_cast<sim::GpuModel>(model_id);
  table.boot_index = boot_index;
  const auto pairs = all_candidate_pairs();
  GPPM_CHECK(count == pairs.size(), "unexpected entry count");
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t off = kHeaderSize + i * kEntrySize;
    PStateEntry e;
    e.pair = pairs[i];
    e.core_mhz = get_u16(image, off);
    e.mem_mhz = get_u16(image, off + 2);
    e.core_millivolts = get_u16(image, off + 4);
    e.mem_millivolts = get_u16(image, off + 6);
    e.configurable = (image[off + 8] & 0x01) != 0;
    table.entries.push_back(e);
  }
  return table;
}

void patch_boot_pstate(std::vector<std::uint8_t>& image,
                       sim::FrequencyPair pair) {
  PerfTable table = parse_vbios(image);
  const std::size_t idx = table.index_of(pair);
  GPPM_CHECK(table.entries[idx].configurable,
             "pair " + sim::to_string(pair) + " is not configurable on " +
                 sim::to_string(table.model) + " (TABLE III)");
  image[6] = static_cast<std::uint8_t>(idx);
  image.back() = 0;  // recompute checksum over all preceding bytes
  image.back() = checksum_complement(
      std::span<const std::uint8_t>(image.data(), image.size() - 1));
}

}  // namespace gppm::dvfs
