#include "dvfs/controller.hpp"

#include "common/error.hpp"
#include "dvfs/combos.hpp"

namespace gppm::dvfs {

Controller::Controller(sim::Gpu& gpu)
    : gpu_(gpu), image_(build_vbios(gpu.spec().model)) {
  boot();
}

void Controller::boot() {
  const PerfTable table = parse_vbios(image_);
  const PStateEntry& entry = table.entries[table.boot_index];
  GPPM_CHECK(entry.configurable, "boot P-state not configurable");
  gpu_.set_frequency_pair(entry.pair);
  ++reboot_count_;
}

void Controller::set_pair(sim::FrequencyPair pair) {
  // Same-pair transitions are a no-op: a steady-state governor re-asserting
  // its current decision must not pay (or count) a patch + reboot cycle.
  // Still reject pairs this board cannot configure, exactly like a real
  // transition would — a no-op answer to an illegal request would hide
  // misconfiguration.  Only skip when the GPU really is at the image's
  // pair; if someone bypassed the controller and moved the clocks, the
  // reboot re-asserts the BIOS state.
  GPPM_CHECK(is_configurable(gpu_.spec().model, pair),
             "pair not configurable on this board");
  if (pair == current_pair() && gpu_.frequency_pair() == pair) return;
  patch_boot_pstate(image_, pair);  // throws on illegal pairs
  boot();
}

sim::FrequencyPair Controller::current_pair() const {
  const PerfTable table = parse_vbios(image_);
  return table.entries[table.boot_index].pair;
}

std::vector<sim::FrequencyPair> Controller::available_pairs() const {
  return configurable_pairs(gpu_.spec().model);
}

}  // namespace gppm::dvfs
