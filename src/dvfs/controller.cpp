#include "dvfs/controller.hpp"

#include "common/error.hpp"
#include "dvfs/combos.hpp"

namespace gppm::dvfs {

Controller::Controller(sim::Gpu& gpu)
    : gpu_(gpu), image_(build_vbios(gpu.spec().model)) {
  boot();
}

void Controller::boot() {
  const PerfTable table = parse_vbios(image_);
  const PStateEntry& entry = table.entries[table.boot_index];
  GPPM_CHECK(entry.configurable, "boot P-state not configurable");
  gpu_.set_frequency_pair(entry.pair);
  ++reboot_count_;
}

void Controller::set_pair(sim::FrequencyPair pair) {
  patch_boot_pstate(image_, pair);  // throws on illegal pairs
  boot();
}

sim::FrequencyPair Controller::current_pair() const {
  const PerfTable table = parse_vbios(image_);
  return table.entries[table.boot_index].pair;
}

std::vector<sim::FrequencyPair> Controller::available_pairs() const {
  return configurable_pairs(gpu_.spec().model);
}

}  // namespace gppm::dvfs
