// The DVFS controller: applies a VBIOS-selected operating point to a
// simulated board, reproducing the paper's control flow (patch image ->
// reboot GPU at the chosen P-state -> run).
#pragma once

#include <cstdint>
#include <vector>

#include "dvfs/vbios.hpp"
#include "gpusim/engine.hpp"

namespace gppm::dvfs {

/// Owns the board's VBIOS image and drives the Gpu's clock pair through it.
/// Every real transition goes through patch_boot_pstate + a simulated
/// re-boot; requesting the pair the board is already at is a validated
/// no-op (no patch, no reboot_count increment), so a steady-state governor
/// can re-assert its decision every phase without thrashing P-states.
/// Illegal pairs are rejected with the same error either way.
class Controller {
 public:
  /// Builds the factory image for the GPU's model and boots at (H-H).
  explicit Controller(sim::Gpu& gpu);

  /// Set the operating point.  Throws gppm::Error if the pair is not
  /// configurable on this board (TABLE III).  A request equal to
  /// current_pair() returns without patching or rebooting.
  void set_pair(sim::FrequencyPair pair);

  /// Current operating point (decoded from the image, not cached).
  sim::FrequencyPair current_pair() const;

  /// Pairs this board's BIOS exposes, in TABLE III row order.
  std::vector<sim::FrequencyPair> available_pairs() const;

  /// The raw image (for tests and the quickstart example).
  const std::vector<std::uint8_t>& image() const { return image_; }

  /// Number of simulated reboots performed (one per *effective* set_pair;
  /// same-pair no-ops and rejected requests charge nothing).
  int reboot_count() const { return reboot_count_; }

 private:
  void boot();

  sim::Gpu& gpu_;
  std::vector<std::uint8_t> image_;
  int reboot_count_ = 0;
};

}  // namespace gppm::dvfs
