// The configurable frequency combinations of paper TABLE III.
//
// NVIDIA's BIOS exposes only a subset of the nine (core, mem) level pairs on
// each board; the paper sweeps exactly the exposed ones.  This table is the
// ground truth the synthetic VBIOS images are generated from and the DVFS
// controller validates against.
#pragma once

#include <vector>

#include "gpusim/arch.hpp"

namespace gppm::dvfs {

/// True if the board's BIOS exposes the pair (paper TABLE III).
bool is_configurable(sim::GpuModel model, sim::FrequencyPair pair);

/// All configurable pairs of a board, in TABLE III row order
/// (H-H, H-M, H-L, M-H, M-M, M-L, L-H, L-M, L-L, filtered to legal ones).
std::vector<sim::FrequencyPair> configurable_pairs(sim::GpuModel model);

/// The nine candidate pairs in TABLE III row order (unfiltered).
std::vector<sim::FrequencyPair> all_candidate_pairs();

}  // namespace gppm::dvfs
