#include "dvfs/combos.hpp"

#include "common/error.hpp"

namespace gppm::dvfs {

using sim::ClockLevel;
using sim::FrequencyPair;
using sim::GpuModel;

std::vector<FrequencyPair> all_candidate_pairs() {
  // TABLE III row order: core level major (H, M, L), memory level minor.
  std::vector<FrequencyPair> out;
  for (ClockLevel core : {ClockLevel::High, ClockLevel::Medium, ClockLevel::Low}) {
    for (ClockLevel mem : {ClockLevel::High, ClockLevel::Medium, ClockLevel::Low}) {
      out.push_back({core, mem});
    }
  }
  return out;
}

bool is_configurable(GpuModel model, FrequencyPair pair) {
  // All boards expose every pair with core at H or M.
  if (pair.core != ClockLevel::Low) return true;
  // Core-L rows differ per board (TABLE III):
  switch (model) {
    case GpuModel::GTX285:
      // L-H and L-M, but not L-L.
      return pair.mem != ClockLevel::Low;
    case GpuModel::GTX460:
    case GpuModel::GTX480:
      // Fermi boards only pair the 100 MHz idle core state with Mem-L.
      return pair.mem == ClockLevel::Low;
    case GpuModel::GTX680:
      // Only L-H.
      return pair.mem == ClockLevel::High;
  }
  throw Error("unknown GPU model");
}

std::vector<FrequencyPair> configurable_pairs(GpuModel model) {
  std::vector<FrequencyPair> out;
  for (FrequencyPair p : all_candidate_pairs()) {
    if (is_configurable(model, p)) out.push_back(p);
  }
  return out;
}

}  // namespace gppm::dvfs
