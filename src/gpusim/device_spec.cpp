#include "gpusim/device_spec.hpp"

#include "common/error.hpp"

namespace gppm::sim {

double ClockDomainSpec::frequency_ratio(ClockLevel l) const {
  return at(l).frequency / at(ClockLevel::High).frequency;
}

double ClockDomainSpec::voltage_sq_ratio(ClockLevel l) const {
  return at(l).voltage.squared() / at(ClockLevel::High).voltage.squared();
}

namespace {

constexpr ClockStep step(double mhz, double volts) {
  return ClockStep{Frequency::mhz(mhz), Voltage::volts(volts)};
}

// GTX 285 (Tesla, GT200b).  Narrow core-voltage range and a memory interface
// whose power is mostly load-proportional: only small DVFS savings are
// available, matching the paper's 13% best case / 0.8% average.
const DeviceSpec kGtx285{
    .model = GpuModel::GTX285,
    .architecture = Architecture::Tesla,
    .sm_count = 30,
    .cores_per_sm = 8,
    .cuda_cores = 240,
    .peak_gflops = 933.0,
    .mem_bandwidth_gbps = 159.0,
    .tdp = Power::watts(183.0),
    // Paper TABLE I: the scalable "core" domain of the paper is the shader
    // clock on Tesla.
    .core_clock = {{step(600, 1.00), step(800, 1.06), step(1296, 1.15)}},
    .mem_clock = {{step(100, 1.80), step(300, 1.85), step(1284, 1.95)}},
    .has_cache_hierarchy = false,
    .performance_counter_count = 32,
    .power = {.static_power = Power::watts(45.0),
              .core_dynamic = Power::watts(95.0),
              .mem_dynamic = Power::watts(48.0),
              .core_baseline = 0.14,
              .mem_baseline = 0.50,
              .core_ungated = 0.40,
              .unmodeled_power_sigma = 0.42},
    .timing = {.issue_efficiency = 0.70,
               .dram_efficiency = 0.72,
               .cache_effectiveness = 0.12,  // texture cache only
               .dp_throughput_ratio = 1.0 / 8.0,
               .launch_overhead = Duration::microseconds(14.0),
               .max_warps_per_sm = 32,
               .unmodeled_sigma = 0.57},
};

// GTX 460 (Fermi, GF104).  GDDR5 interface with a large load-independent
// power component: lowering the memory clock on compute-bound kernels saves
// ~40% system energy (paper Fig. 1).
const DeviceSpec kGtx460{
    .model = GpuModel::GTX460,
    .architecture = Architecture::Fermi,
    .sm_count = 7,
    .cores_per_sm = 48,
    .cuda_cores = 336,
    .peak_gflops = 907.0,
    .mem_bandwidth_gbps = 115.2,
    .tdp = Power::watts(160.0),
    // Core-L (100 MHz) is the 2D/idle P-state exposed by the BIOS.
    .core_clock = {{step(100, 0.85), step(810, 0.95), step(1350, 1.012)}},
    .mem_clock = {{step(135, 1.45), step(324, 1.50), step(1800, 1.60)}},
    .has_cache_hierarchy = true,
    .performance_counter_count = 74,
    .power = {.static_power = Power::watts(22.0),
              .core_dynamic = Power::watts(70.0),
              .mem_dynamic = Power::watts(65.0),
              .core_baseline = 0.12,
              .mem_baseline = 0.88,
              .core_ungated = 0.10,
              .unmodeled_power_sigma = 0.12},
    .timing = {.issue_efficiency = 0.62,
               .dram_efficiency = 0.75,
               .cache_effectiveness = 0.55,
               .dp_throughput_ratio = 1.0 / 12.0,
               .launch_overhead = Duration::microseconds(10.0),
               .max_warps_per_sm = 48,
               .unmodeled_sigma = 0.44},
};

// GTX 480 (Fermi, GF100).  Same generation as the GTX 460 but a wider
// (384-bit) memory interface and more SMs; the paper selected both to show
// intra-generation differences.
const DeviceSpec kGtx480{
    .model = GpuModel::GTX480,
    .architecture = Architecture::Fermi,
    .sm_count = 15,
    .cores_per_sm = 32,
    .cuda_cores = 480,
    .peak_gflops = 1350.0,
    .mem_bandwidth_gbps = 177.0,
    .tdp = Power::watts(250.0),
    .core_clock = {{step(100, 0.875), step(810, 0.962), step(1400, 1.05)}},
    .mem_clock = {{step(135, 1.45), step(324, 1.50), step(1848, 1.60)}},
    .has_cache_hierarchy = true,
    .performance_counter_count = 74,
    .power = {.static_power = Power::watts(40.0),
              .core_dynamic = Power::watts(105.0),
              .mem_dynamic = Power::watts(95.0),
              .core_baseline = 0.12,
              .mem_baseline = 0.86,
              .core_ungated = 0.10,
              .unmodeled_power_sigma = 0.12},
    .timing = {.issue_efficiency = 0.60,
               .dram_efficiency = 0.74,
               .cache_effectiveness = 0.58,
               .dp_throughput_ratio = 1.0 / 8.0,
               .launch_overhead = Duration::microseconds(10.0),
               .max_warps_per_sm = 48,
               .unmodeled_sigma = 0.38},
};

// GTX 680 (Kepler, GK104).  Wide core-voltage range (boost-table top step at
// 1.175 V down to 0.9 V at the medium step): dropping to Core-M cuts core
// power by more than half at a 30% performance cost on compute-bound
// kernels, which is the mechanism behind the paper's 75% best-case
// efficiency gain.
const DeviceSpec kGtx680{
    .model = GpuModel::GTX680,
    .architecture = Architecture::Kepler,
    .sm_count = 8,
    .cores_per_sm = 192,
    .cuda_cores = 1536,
    .peak_gflops = 3090.0,
    .mem_bandwidth_gbps = 192.2,
    .tdp = Power::watts(195.0),
    .core_clock = {{step(648, 0.85), step(1080, 0.875), step(1411, 1.175)}},
    .mem_clock = {{step(324, 1.45), step(810, 1.50), step(3004, 1.60)}},
    .has_cache_hierarchy = true,
    .performance_counter_count = 108,
    .power = {.static_power = Power::watts(30.0),
              .core_dynamic = Power::watts(110.0),
              .mem_dynamic = Power::watts(70.0),
              .core_baseline = 0.10,
              .mem_baseline = 0.85,
              .core_ungated = 0.05,
              .unmodeled_power_sigma = 0.70},
    .timing = {.issue_efficiency = 0.55,
               .dram_efficiency = 0.77,
               .cache_effectiveness = 0.62,
               .dp_throughput_ratio = 1.0 / 24.0,
               .launch_overhead = Duration::microseconds(7.0),
               .max_warps_per_sm = 64,
               .unmodeled_sigma = 0.40},
};

}  // namespace

const DeviceSpec& device_spec(GpuModel m) {
  switch (m) {
    case GpuModel::GTX285: return kGtx285;
    case GpuModel::GTX460: return kGtx460;
    case GpuModel::GTX480: return kGtx480;
    case GpuModel::GTX680: return kGtx680;
  }
  throw Error("unknown GPU model");
}

}  // namespace gppm::sim
