#include "gpusim/engine.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "gpusim/power.hpp"

namespace gppm::sim {

namespace {
constexpr double kWarpSize = 32.0;
constexpr double kWordBytes = 4.0;        // dominant access granularity
constexpr double kTransactionBytes = 32.0;
}  // namespace

HardwareEvents synthesize_events(const DeviceSpec& spec,
                                 const KernelProfile& kernel,
                                 const KernelTiming& timing) {
  HardwareEvents e;
  const double launches = static_cast<double>(kernel.launches);
  const double threads =
      static_cast<double>(kernel.total_threads()) * launches;
  const double warps = threads / kWarpSize;

  e.threads_launched = threads;
  e.warps_launched = warps;
  e.blocks_launched = static_cast<double>(kernel.blocks) * launches;

  e.flops_sp = kernel.flops_sp_per_thread * threads;
  e.flops_dp = kernel.flops_dp_per_thread * threads;
  e.int_insts = kernel.int_ops_per_thread * threads;
  e.special_insts = kernel.special_ops_per_thread * threads;

  const double load_accesses =
      kernel.global_load_bytes_per_thread / kWordBytes * threads;
  const double store_accesses =
      kernel.global_store_bytes_per_thread / kWordBytes * threads;
  e.gld_requests = load_accesses / kWarpSize;
  e.gst_requests = store_accesses / kWarpSize;
  // Transactions inflate with poor coalescing (partial 32B segments).
  e.gld_transactions =
      load_accesses * kWordBytes / kTransactionBytes / kernel.coalescing;
  e.gst_transactions =
      store_accesses * kWordBytes / kTransactionBytes / kernel.coalescing;

  const double hit = kernel.locality * spec.timing.cache_effectiveness;
  if (spec.has_cache_hierarchy) {
    e.l1_hits = e.gld_transactions * hit;
    e.l1_misses = e.gld_transactions * (1.0 - hit);
    e.l2_reads = e.l1_misses;
    e.l2_writes = e.gst_transactions;
  }
  // DRAM transactions agree with the timing model's DRAM traffic; the
  // read/write split follows the request byte split.
  const double dram_bytes = timing.dram_bytes * launches;
  const double total_req_bytes = kernel.global_load_bytes_per_thread +
                                 kernel.global_store_bytes_per_thread;
  const double read_share =
      total_req_bytes > 0.0
          ? kernel.global_load_bytes_per_thread / total_req_bytes
          : 0.0;
  e.dram_reads = dram_bytes * read_share / kTransactionBytes;
  e.dram_writes = dram_bytes * (1.0 - read_share) / kTransactionBytes;

  e.shared_loads = kernel.shared_ops_per_thread * 0.6 * threads;
  e.shared_stores = kernel.shared_ops_per_thread * 0.4 * threads;
  e.shared_bank_conflicts =
      (kernel.bank_conflict - 1.0) * kernel.shared_ops_per_thread * threads;

  e.tex_requests = kernel.tex_ops_per_thread * threads / kWarpSize;
  e.tex_hits = e.tex_requests * std::min(0.95, 0.5 + kernel.locality * 0.5);

  // Warp-level instruction counts: arithmetic classes issue per warp; add a
  // control-flow estimate proportional to the instruction stream.
  const double arith_warp_insts =
      (e.flops_sp / 2.0 + e.flops_dp / 2.0 + e.int_insts + e.special_insts +
       (e.shared_loads + e.shared_stores)) / kWarpSize;
  const double mem_warp_insts = e.gld_requests + e.gst_requests + e.tex_requests;
  e.branches = (arith_warp_insts + mem_warp_insts) / 12.0;
  const double div_frac = (kernel.divergence - 1.0) / kernel.divergence;
  e.divergent_branches = e.branches * div_frac;
  e.insts_executed = arith_warp_insts + mem_warp_insts + e.branches;
  // Issued > executed: divergence and bank-conflict replays.
  e.insts_issued = e.insts_executed * kernel.divergence +
                   e.shared_bank_conflicts / kWarpSize;

  e.barrier_syncs = e.blocks_launched *
                    (kernel.shared_ops_per_thread > 0.0 ? 4.0 : 0.0);
  return e;
}

Gpu::Gpu(GpuModel model, std::uint64_t seed)
    : spec_(device_spec(model)), seed_(seed) {}

double Gpu::unmodeled_factor(const std::string& kernel_name,
                             double sigma_scale) const {
  const std::uint64_t key =
      fnv1a(kernel_name) ^ (static_cast<std::uint64_t>(spec_.model) << 56);
  Rng rng = Rng(seed_).fork(key);
  // Lognormal with median 1: exp(sigma * z).  The factor is >= 0.35 so the
  // perturbed time never goes non-physical.
  const double z = rng.normal();
  return std::max(0.35,
                  std::exp(spec_.timing.unmodeled_sigma * sigma_scale * z));
}

KernelExecution Gpu::launch(const KernelProfile& kernel) const {
  const KernelTiming nominal = compute_kernel_timing(spec_, kernel, pair_);

  KernelExecution out;
  // Counters see the *nominal* execution: performance-monitoring hardware
  // counts work (instructions, transactions, scheduled cycles), not the
  // stall behaviour that separates nominal from realized time.  This gap is
  // exactly what bounds the paper's counter-based prediction accuracy.
  out.events = synthesize_events(spec_, kernel, nominal);
  const double core_hz = spec_.core_clock.at(pair_.core).frequency.as_hz();
  out.events.elapsed_cycles = nominal.total_time.as_seconds() * core_hz;
  out.events.active_cycles =
      out.events.elapsed_cycles *
      std::min(1.0, nominal.core_utilization + 0.05);
  out.events.active_warps =
      out.events.active_cycles * kernel.occupancy *
      static_cast<double>(spec_.timing.max_warps_per_sm);

  // Realized time: nominal scaled by the counter-invisible behaviour
  // factor.  Utilizations drop proportionally — the extra time is stalls.
  KernelTiming timing = nominal;
  const double factor =
      unmodeled_factor(kernel.name, kernel.unmodeled_scale);
  const double scaled_kernel_s = timing.kernel_time.as_seconds() * factor;
  timing.kernel_time = Duration::seconds(scaled_kernel_s);
  timing.total_time = Duration::seconds(
      static_cast<double>(kernel.launches) *
      (scaled_kernel_s + spec_.timing.launch_overhead.as_seconds()));
  timing.core_utilization = std::min(1.0, timing.core_utilization / factor);
  timing.mem_utilization = std::min(1.0, timing.mem_utilization / factor);
  out.timing = timing;

  // Realized power: the physical model plus a counter-invisible deviation
  // keyed on (kernel, operating point) — board VRM efficiency, temperature
  // and (on Kepler) boost behaviour make measured power scatter around any
  // activity-based estimate.
  Power power = gpu_power(spec_, pair_, timing.core_utilization,
                          timing.mem_utilization);
  // The dominant component is a per-workload factor (board thermals, the
  // workload's switching-activity signature): constant across operating
  // points, so characterization ratios stay clean, yet invisible to the
  // counters the models see.  A small per-pair component models residual
  // operating-point effects (VRM efficiency curves, boost residency).
  const std::uint64_t kkey =
      fnv1a(kernel.name) ^ (static_cast<std::uint64_t>(spec_.model) << 40);
  Rng krng = Rng(seed_ ^ 0x9077e5).fork(kkey);
  Rng prng = Rng(seed_ ^ 0x9077e6).fork(kkey ^ (fnv1a(to_string(pair_)) << 1));
  const double pfactor =
      std::exp(spec_.power.unmodeled_power_sigma * krng.normal() +
               0.03 * prng.normal());
  // The factor scales the *dynamic above-idle* portion only: switching
  // activity varies per workload, but an active board never reads below
  // its own idle power.
  const Power idle = gpu_idle_power(spec_, pair_);
  out.gpu_power = idle + (power - idle) * pfactor;
  return out;
}

RunExecution Gpu::run(const RunProfile& profile) const {
  GPPM_CHECK(!profile.kernels.empty(), "run without kernels");
  RunExecution out;
  out.host_time = profile.host_time;

  // Host setup phase (input generation, H2D transfer) before the kernels,
  // post-processing after; a 60/40 split is representative of the suites.
  const Duration setup = profile.host_time * 0.6;
  const Duration finish = profile.host_time * 0.4;
  const Power gpu_idle = gpu_idle_power(spec_, pair_);
  out.timeline.push_back({SegmentKind::HostCompute, setup, gpu_idle});

  Duration gpu_total = Duration::seconds(0.0);
  for (const KernelProfile& k : profile.kernels) {
    KernelExecution exec = launch(k);
    gpu_total += exec.timing.total_time;
    out.timeline.push_back(
        {SegmentKind::GpuKernel, exec.timing.total_time, exec.gpu_power});
    out.events += exec.events;
    out.kernels.push_back(std::move(exec));
  }
  out.timeline.push_back({SegmentKind::HostCompute, finish, gpu_idle});

  out.gpu_time = gpu_total;
  out.total_time = gpu_total + profile.host_time;
  return out;
}

}  // namespace gppm::sim
