// The simulator's kernel timing model.
//
// A bounded-overlap roofline: compute time scales with the core clock,
// memory time with the memory clock (bandwidth is frequency-proportional),
// and the kernel time is the bottleneck plus the non-overlapped share of the
// other component.  This first-order model is what produces the paper's
// characterization shapes — flat performance vs. core frequency for
// memory-bound kernels at Mem-M/L, rising performance at Mem-H (Fig. 2),
// and the compute-bound linear scaling of Fig. 1.
#pragma once

#include "common/units.hpp"
#include "gpusim/device_spec.hpp"
#include "gpusim/kernel_profile.hpp"

namespace gppm::sim {

/// Timing breakdown of one kernel launch.
struct KernelTiming {
  Duration compute_time;   ///< core-side time at full issue, per launch
  Duration memory_time;    ///< DRAM transfer time, per launch
  Duration kernel_time;    ///< bottleneck-combined time, per launch
  Duration total_time;     ///< launches * (kernel_time + launch overhead)
  double core_utilization; ///< fraction of kernel_time the core is busy
  double mem_utilization;  ///< fraction of kernel_time DRAM is busy
  double dram_bytes;       ///< DRAM traffic per launch, bytes
};

/// Compute the timing of `kernel` on `spec` at the given operating point.
/// Pure function of its inputs (no hidden state, no randomness).
KernelTiming compute_kernel_timing(const DeviceSpec& spec,
                                   const KernelProfile& kernel,
                                   FrequencyPair pair);

/// Weighted compute work of one thread, in core issue-slot cycles.  Exposed
/// for tests and the profiler layer.
double thread_issue_cycles(const DeviceSpec& spec, const KernelProfile& k);

/// DRAM traffic of one launch in bytes after cache filtering and
/// coalescing waste.  Exposed for tests and the profiler layer.
double kernel_dram_bytes(const DeviceSpec& spec, const KernelProfile& k);

/// Sustained DRAM bandwidth the device can deliver to `kernel` at `pair`,
/// bytes/second: the peak-bandwidth ceiling scaled by the memory clock and
/// degraded by occupancy (requests in flight) and the core:memory clock
/// ratio (issue rate).  This is the per-kernel share basis the concurrent
/// mix engine divides under contention.
double sustained_bandwidth(const DeviceSpec& spec, const KernelProfile& kernel,
                           FrequencyPair pair);

/// The bandwidth a kernel *demands* while running at `pair`, bytes/second:
/// its DRAM traffic spread over its own kernel time.  For a memory-bound
/// kernel this equals its sustained bandwidth; for a compute-bound kernel
/// it is lower.  Aggregating demands across co-scheduled kernels against
/// the device ceiling is the mix engine's first-order contention model.
double kernel_bandwidth_demand(const DeviceSpec& spec,
                               const KernelProfile& kernel,
                               FrequencyPair pair);

/// Device DRAM ceiling at `pair`, bytes/second: peak bandwidth scaled by
/// the memory clock and the sustained-efficiency calibration.  No kernel's
/// demand can exceed it, and the sum of co-scheduled demands above it is
/// what produces interference slowdowns.
double device_bandwidth_ceiling(const DeviceSpec& spec, FrequencyPair pair);

}  // namespace gppm::sim
