// The simulator's kernel timing model.
//
// A bounded-overlap roofline: compute time scales with the core clock,
// memory time with the memory clock (bandwidth is frequency-proportional),
// and the kernel time is the bottleneck plus the non-overlapped share of the
// other component.  This first-order model is what produces the paper's
// characterization shapes — flat performance vs. core frequency for
// memory-bound kernels at Mem-M/L, rising performance at Mem-H (Fig. 2),
// and the compute-bound linear scaling of Fig. 1.
#pragma once

#include "common/units.hpp"
#include "gpusim/device_spec.hpp"
#include "gpusim/kernel_profile.hpp"

namespace gppm::sim {

/// Timing breakdown of one kernel launch.
struct KernelTiming {
  Duration compute_time;   ///< core-side time at full issue, per launch
  Duration memory_time;    ///< DRAM transfer time, per launch
  Duration kernel_time;    ///< bottleneck-combined time, per launch
  Duration total_time;     ///< launches * (kernel_time + launch overhead)
  double core_utilization; ///< fraction of kernel_time the core is busy
  double mem_utilization;  ///< fraction of kernel_time DRAM is busy
  double dram_bytes;       ///< DRAM traffic per launch, bytes
};

/// Compute the timing of `kernel` on `spec` at the given operating point.
/// Pure function of its inputs (no hidden state, no randomness).
KernelTiming compute_kernel_timing(const DeviceSpec& spec,
                                   const KernelProfile& kernel,
                                   FrequencyPair pair);

/// Weighted compute work of one thread, in core issue-slot cycles.  Exposed
/// for tests and the profiler layer.
double thread_issue_cycles(const DeviceSpec& spec, const KernelProfile& k);

/// DRAM traffic of one launch in bytes after cache filtering and
/// coalescing waste.  Exposed for tests and the profiler layer.
double kernel_dram_bytes(const DeviceSpec& spec, const KernelProfile& k);

}  // namespace gppm::sim
