#include "gpusim/system.hpp"

#include "common/error.hpp"

namespace gppm::sim {

const HostSpec& default_host() {
  static const HostSpec host{};
  return host;
}

Power wall_power(const HostSpec& host, Power internal_dc) {
  GPPM_CHECK(host.psu_efficiency > 0.0 && host.psu_efficiency <= 1.0,
             "psu efficiency out of (0,1]");
  return Power::watts(internal_dc.as_watts() / host.psu_efficiency);
}

}  // namespace gppm::sim
