// Host machine and power-delivery model.
//
// The paper measures power "from the power outlet of the machine"
// (Section II-C): what the WT1600 sees is CPU + motherboard + GPU behind
// the PSU's conversion loss.  This module models the Intel Core i5-2400
// host the paper uses and the wall-power conversion.
#pragma once

#include "common/units.hpp"

namespace gppm::sim {

/// DC-side host power in the three states a GPGPU run cycles through.
struct HostSpec {
  /// Machine idle: CPU C-states, motherboard, disks, fans.
  Power idle = Power::watts(24.0);
  /// CPU waiting on a GPU synchronization (the driver stack blocks the
  /// calling thread; the CPU drops into shallow sleep between wakeups).
  Power gpu_wait = Power::watts(26.0);
  /// CPU actively computing the host-side part of a benchmark.
  Power host_active = Power::watts(65.0);
  /// PSU conversion efficiency (wall power = DC power / efficiency).
  double psu_efficiency = 0.88;
};

/// The paper's host platform (Core i5 2400, Linux 3.3.0).
const HostSpec& default_host();

/// Convert internal DC power to the wall power the meter measures.
Power wall_power(const HostSpec& host, Power internal_dc);

}  // namespace gppm::sim
