// Architecture and clock-level enumerations shared across the simulator,
// DVFS controller and the modeling layer.
#pragma once

#include <array>
#include <string>

namespace gppm::sim {

/// NVIDIA GPU architecture generations covered by the paper.
enum class Architecture { Tesla, Fermi, Kepler };

/// The four evaluated boards (paper TABLE I).
enum class GpuModel { GTX285, GTX460, GTX480, GTX680 };

/// All boards, in the paper's column order.
constexpr std::array<GpuModel, 4> kAllGpus = {
    GpuModel::GTX285, GpuModel::GTX460, GpuModel::GTX480, GpuModel::GTX680};

/// Discrete clock level of one domain (paper: Core/Mem-L, -M, -H).
enum class ClockLevel { Low, Medium, High };

constexpr std::array<ClockLevel, 3> kAllLevels = {
    ClockLevel::Low, ClockLevel::Medium, ClockLevel::High};

/// A (core level, memory level) operating point, e.g. (H-L).
struct FrequencyPair {
  ClockLevel core = ClockLevel::High;
  ClockLevel mem = ClockLevel::High;

  bool operator==(const FrequencyPair&) const = default;
};

/// Default operating point of every board (paper: "(H-H) is the default").
constexpr FrequencyPair kDefaultPair{ClockLevel::High, ClockLevel::High};

/// "Tesla" / "Fermi" / "Kepler".
std::string to_string(Architecture a);

/// "GTX 285" etc., matching the paper's naming.
std::string to_string(GpuModel m);

/// "L" / "M" / "H".
std::string to_string(ClockLevel l);

/// "(H-L)" notation used throughout the paper's TABLE IV.
std::string to_string(FrequencyPair p);

/// Index 0/1/2 for Low/Medium/High (used to address per-level tables).
std::size_t level_index(ClockLevel l);

}  // namespace gppm::sim
