// Static specifications and calibration parameters of the four boards.
//
// The datasheet half of each spec comes straight from the paper's TABLE I
// (cores, peak GFLOPS, bandwidth, TDP, clock steps).  The calibration half
// (voltage tables, power-budget split, cache effectiveness, issue efficiency)
// is not published for these boards; values are chosen so that the simulated
// system reproduces the paper's *measured* behaviour (TABLE IV / Fig. 4
// efficiency improvements, Figs. 1-3 curve shapes).  DESIGN.md documents this
// substitution.
#pragma once

#include <array>

#include "common/units.hpp"
#include "gpusim/arch.hpp"

namespace gppm::sim {

/// One step of a clock domain: frequency and the supply voltage the board
/// applies at that frequency ("voltage is implicitly adjusted with frequency
/// changes", paper Section II-B).
struct ClockStep {
  Frequency frequency;
  Voltage voltage;
};

/// A three-step (L/M/H) scalable clock domain.
struct ClockDomainSpec {
  std::array<ClockStep, 3> steps;  // indexed by level_index()

  const ClockStep& at(ClockLevel l) const { return steps[level_index(l)]; }
  /// Frequency ratio of `l` relative to the High step.
  double frequency_ratio(ClockLevel l) const;
  /// Squared voltage ratio of `l` relative to the High step.
  double voltage_sq_ratio(ClockLevel l) const;
};

/// Power calibration: the board's power budget at (H-H) and full utilization
/// is split into a leakage/static part and per-domain dynamic parts.  Each
/// dynamic part has a utilization-independent baseline fraction (clock trees,
/// DRAM interface/refresh) — the component whose removal by down-clocking
/// produces the energy savings the paper measures on compute-bound kernels.
struct PowerCalibration {
  Power static_power;     ///< leakage + always-on at core-H voltage
  Power core_dynamic;     ///< core-domain dynamic power at (H), utilization 1
  Power mem_dynamic;      ///< memory-domain dynamic power at (H), utilization 1
  double core_baseline;   ///< fraction of core_dynamic drawn at utilization 0
  double mem_baseline;    ///< fraction of mem_dynamic drawn at utilization 0
  /// Fraction of core_dynamic that does not scale with voltage/frequency at
  /// all: clock distribution and logic without clock gating.  Large on the
  /// Tesla generation (weak gating — the reason the paper finds almost no
  /// DVFS headroom on the GTX 285), small on Fermi/Kepler.
  double core_ungated;
  /// Lognormal sigma of measured-power deviations no counter can explain
  /// (VRM efficiency, temperature, and on Kepler the boost machinery).
  /// The paper's anomalously low Kepler power-model R^2 (0.18) comes from
  /// exactly this kind of activity-independent power scatter.
  double unmodeled_power_sigma;
};

/// Timing calibration.
struct TimingCalibration {
  double issue_efficiency;    ///< sustained fraction of peak issue rate
  double dram_efficiency;     ///< sustained fraction of peak DRAM bandwidth
  double cache_effectiveness; ///< fraction of a workload's locality the cache
                              ///< hierarchy converts into DRAM-traffic savings
                              ///< (0 on Tesla: no L1/L2, texture cache only)
  double dp_throughput_ratio; ///< double-precision : single-precision rate
  Duration launch_overhead;   ///< per kernel launch (driver + PCIe)
  int max_warps_per_sm;       ///< resident-warp limit (occupancy accounting)
  /// Lognormal sigma of per-workload timing behaviour that hardware
  /// counters cannot observe (replay storms, TLB/partition camping...).
  /// Larger on older architectures — the paper attributes its decreasing
  /// performance-model error across generations to exactly this
  /// ("the enhanced microarchitecture can also remove unpredictable
  /// behaviors present in old GPUs", Section IV-B).
  double unmodeled_sigma;
};

/// Full device specification.
struct DeviceSpec {
  GpuModel model;
  Architecture architecture;
  int sm_count;
  int cores_per_sm;
  int cuda_cores;             ///< sm_count * cores_per_sm (TABLE I row 2)
  double peak_gflops;         ///< TABLE I row 3, at core-H
  double mem_bandwidth_gbps;  ///< TABLE I row 4, at mem-H
  Power tdp;                  ///< TABLE I row 5
  ClockDomainSpec core_clock; ///< TABLE I row 6
  ClockDomainSpec mem_clock;  ///< TABLE I row 7
  bool has_cache_hierarchy;   ///< L1/L2 present (Fermi, Kepler)
  int performance_counter_count;  ///< CUDA profiler counters (paper: 32/74/108)
  PowerCalibration power;
  TimingCalibration timing;
};

/// Board specification registry (immutable, process-lifetime storage).
const DeviceSpec& device_spec(GpuModel m);

}  // namespace gppm::sim
