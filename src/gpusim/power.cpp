#include "gpusim/power.hpp"

#include "common/error.hpp"

namespace gppm::sim {

GpuPowerBreakdown gpu_power_breakdown(const DeviceSpec& spec,
                                      FrequencyPair pair,
                                      double core_utilization,
                                      double mem_utilization) {
  GPPM_CHECK(core_utilization >= 0.0 && core_utilization <= 1.0,
             "core utilization out of [0,1]");
  GPPM_CHECK(mem_utilization >= 0.0 && mem_utilization <= 1.0,
             "mem utilization out of [0,1]");
  const PowerCalibration& cal = spec.power;

  // Leakage scales with the square of the core-domain voltage (short-channel
  // leakage is superlinear in V; V^2 is the customary first-order form).
  const double static_scale = spec.core_clock.voltage_sq_ratio(pair.core);

  const double core_vf = spec.core_clock.voltage_sq_ratio(pair.core) *
                         spec.core_clock.frequency_ratio(pair.core);
  const double mem_vf = spec.mem_clock.voltage_sq_ratio(pair.mem) *
                        spec.mem_clock.frequency_ratio(pair.mem);

  const double core_activity =
      cal.core_baseline + (1.0 - cal.core_baseline) * core_utilization;
  const double mem_activity =
      cal.mem_baseline + (1.0 - cal.mem_baseline) * mem_utilization;

  GpuPowerBreakdown b;
  b.static_power = cal.static_power * static_scale;
  // The ungated share of core power is paid regardless of the operating
  // point; only the gated remainder follows V^2 f and activity.
  b.core_dynamic =
      cal.core_dynamic *
      (cal.core_ungated +
       (1.0 - cal.core_ungated) * core_vf * core_activity);
  b.mem_dynamic = cal.mem_dynamic * (mem_vf * mem_activity);
  b.total = b.static_power + b.core_dynamic + b.mem_dynamic;
  return b;
}

Power gpu_power(const DeviceSpec& spec, FrequencyPair pair,
                double core_utilization, double mem_utilization) {
  return gpu_power_breakdown(spec, pair, core_utilization, mem_utilization)
      .total;
}

Power gpu_idle_power(const DeviceSpec& spec, FrequencyPair pair) {
  return gpu_power(spec, pair, 0.0, 0.0);
}

}  // namespace gppm::sim
