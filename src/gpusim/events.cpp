#include "gpusim/events.hpp"

namespace gppm::sim {

HardwareEvents& HardwareEvents::operator+=(const HardwareEvents& o) {
  insts_issued += o.insts_issued;
  insts_executed += o.insts_executed;
  flops_sp += o.flops_sp;
  flops_dp += o.flops_dp;
  int_insts += o.int_insts;
  special_insts += o.special_insts;
  gld_requests += o.gld_requests;
  gst_requests += o.gst_requests;
  gld_transactions += o.gld_transactions;
  gst_transactions += o.gst_transactions;
  l1_hits += o.l1_hits;
  l1_misses += o.l1_misses;
  l2_reads += o.l2_reads;
  l2_writes += o.l2_writes;
  dram_reads += o.dram_reads;
  dram_writes += o.dram_writes;
  shared_loads += o.shared_loads;
  shared_stores += o.shared_stores;
  shared_bank_conflicts += o.shared_bank_conflicts;
  tex_requests += o.tex_requests;
  tex_hits += o.tex_hits;
  branches += o.branches;
  divergent_branches += o.divergent_branches;
  warps_launched += o.warps_launched;
  blocks_launched += o.blocks_launched;
  threads_launched += o.threads_launched;
  active_cycles += o.active_cycles;
  elapsed_cycles += o.elapsed_cycles;
  active_warps += o.active_warps;
  barrier_syncs += o.barrier_syncs;
  return *this;
}

}  // namespace gppm::sim
