// The simulator's GPU power model.
//
// Board power is decomposed into a voltage-dependent static part and one
// dynamic C·V²·f part per clock domain.  Each dynamic part has a
// utilization-independent baseline (clock distribution, DRAM
// interface/refresh) plus a utilization-proportional share.  With the BIOS
// method the paper uses, clocks are pinned for the whole run, so the
// baseline components are paid even while the GPU idles — exactly the
// behaviour that makes memory down-clocking profitable for compute-bound
// kernels.
#pragma once

#include "common/units.hpp"
#include "gpusim/device_spec.hpp"

namespace gppm::sim {

/// GPU board power at an operating point given domain utilizations in [0,1].
/// Pure function of its inputs.
Power gpu_power(const DeviceSpec& spec, FrequencyPair pair,
                double core_utilization, double mem_utilization);

/// GPU board power while idle at pinned clocks (utilizations 0).
Power gpu_idle_power(const DeviceSpec& spec, FrequencyPair pair);

/// Breakdown of gpu_power, for tests and the ablation benches.
struct GpuPowerBreakdown {
  Power static_power;
  Power core_dynamic;
  Power mem_dynamic;
  Power total;
};
GpuPowerBreakdown gpu_power_breakdown(const DeviceSpec& spec,
                                      FrequencyPair pair,
                                      double core_utilization,
                                      double mem_utilization);

}  // namespace gppm::sim
