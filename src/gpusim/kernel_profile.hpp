// The simulator's workload input format.
//
// A KernelProfile summarizes one CUDA kernel launch (or a homogeneous series
// of launches) by its per-thread operation counts and behavioural
// coefficients.  Benchmark models (src/workload) derive these from the real
// algorithms' structure; the execution engine turns them into time, power
// and hardware-event counts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace gppm::sim {

/// Per-launch kernel description.  All `*_per_thread` quantities are average
/// dynamic counts over the kernel's threads.
struct KernelProfile {
  std::string name;

  std::uint64_t blocks = 1;
  std::uint32_t threads_per_block = 256;
  /// Number of identical launches of this kernel in one benchmark run
  /// (iterative solvers launch the same kernel hundreds of times).
  std::uint32_t launches = 1;

  double flops_sp_per_thread = 0.0;      ///< single-precision FLOPs
  double flops_dp_per_thread = 0.0;      ///< double-precision FLOPs
  double int_ops_per_thread = 0.0;       ///< integer/address ALU ops
  double special_ops_per_thread = 0.0;   ///< SFU ops (exp/log/sin/rsqrt)
  double shared_ops_per_thread = 0.0;    ///< shared-memory load/store
  double global_load_bytes_per_thread = 0.0;
  double global_store_bytes_per_thread = 0.0;
  double tex_ops_per_thread = 0.0;       ///< texture fetches

  /// DRAM transfer efficiency of the access pattern, (0, 1]:
  /// 1 = fully coalesced, small values waste bandwidth on partial
  /// transactions (e.g. the paper's mummergpu-style pointer chasing).
  double coalescing = 1.0;
  /// Data reuse available to a cache hierarchy, [0, 1).  The fraction of
  /// global traffic removable by caches is locality * cache_effectiveness
  /// of the architecture (0 effective on Tesla).
  double locality = 0.0;
  /// Branch-divergence serialization factor on compute throughput (>= 1).
  double divergence = 1.0;
  /// Shared-memory bank-conflict replay factor (>= 1).
  double bank_conflict = 1.0;
  /// Achieved occupancy, (0, 1]; low occupancy reduces both issue
  /// efficiency and memory-level parallelism.
  double occupancy = 1.0;
  /// Compute/memory overlap capability, [0, 1]: 1 = perfect overlap
  /// (pure roofline max), 0 = fully serialized phases.
  double overlap = 0.85;
  /// Multiplier on the architecture's counter-invisible timing sigma.
  /// Small inputs are relatively noisier (driver and launch effects are a
  /// larger share of the run), which is how large relative prediction
  /// errors coexist with high absolute-scale R^2 in the paper.
  double unmodeled_scale = 1.0;

  std::uint64_t total_threads() const {
    return blocks * static_cast<std::uint64_t>(threads_per_block);
  }
};

/// A benchmark run seen by the measurement pipeline: GPU kernel work plus
/// the host-side (CPU) portion whose duration does not depend on GPU clocks.
struct RunProfile {
  std::string benchmark_name;
  std::vector<KernelProfile> kernels;
  Duration host_time;  ///< CPU-side setup/IO/transfer time per run
};

}  // namespace gppm::sim
