// Ground-truth hardware event counts produced by the execution engine.
//
// These are the quantities a GPU's performance-monitoring hardware counts;
// the profiler layer (src/profiler) exposes lossy per-architecture views of
// them, the way the real CUDA profiler samples a subset of SMs.
#pragma once

#include <cstdint>

namespace gppm::sim {

/// Event totals for one kernel launch series (all launches of one kernel in
/// one benchmark run, summed).
struct HardwareEvents {
  double insts_issued = 0;       ///< warp-instructions issued (incl. replays)
  double insts_executed = 0;     ///< warp-instructions retired
  double flops_sp = 0;
  double flops_dp = 0;
  double int_insts = 0;
  double special_insts = 0;

  double gld_requests = 0;       ///< global load warp-requests
  double gst_requests = 0;       ///< global store warp-requests
  double gld_transactions = 0;   ///< 32B memory transactions for loads
  double gst_transactions = 0;
  double l1_hits = 0;            ///< 0 on Tesla
  double l1_misses = 0;
  double l2_reads = 0;
  double l2_writes = 0;
  double dram_reads = 0;         ///< DRAM read transactions
  double dram_writes = 0;

  double shared_loads = 0;
  double shared_stores = 0;
  double shared_bank_conflicts = 0;

  double tex_requests = 0;
  double tex_hits = 0;

  double branches = 0;
  double divergent_branches = 0;

  double warps_launched = 0;
  double blocks_launched = 0;
  double threads_launched = 0;
  double active_cycles = 0;      ///< SM cycles with at least one active warp
  double elapsed_cycles = 0;     ///< core-clock cycles over the launch series
  double active_warps = 0;       ///< sum over cycles of resident warps
  double barrier_syncs = 0;

  /// Elementwise sum (used to aggregate multi-kernel benchmarks).
  HardwareEvents& operator+=(const HardwareEvents& o);
};

}  // namespace gppm::sim
