// Cycle-level SM micro-simulator.
//
// An independent, finer-grained timing model used to cross-validate the
// analytical bounded-overlap roofline in timing.cpp: instead of combining
// aggregate compute/memory times, it event-simulates one streaming
// multiprocessor — resident warps alternate issue groups and memory
// requests; the warp scheduler hides memory latency with other warps; the
// memory pipe has finite per-SM bandwidth (set by the memory clock) and a
// fixed service latency.  Grids larger than one residency wave execute in
// waves; the launch total scales from there.
//
// The two models share only the device specs and the kernel profile, so
// their agreement (bench_microsim_validation) is a meaningful consistency
// check: first-order behaviour (clock scaling, boundedness crossover,
// occupancy sensitivity) must match, while latency-bound corner cases
// (low occupancy, poor coalescing) may legitimately diverge.
#pragma once

#include "gpusim/device_spec.hpp"
#include "gpusim/kernel_profile.hpp"

namespace gppm::sim {

/// Result of a micro-simulated kernel.
struct MicrosimResult {
  double cycles_per_wave = 0;    ///< core cycles for one residency wave
  double waves = 0;              ///< residency waves in the grid
  Duration kernel_time;          ///< one launch
  Duration total_time;           ///< all launches + launch overhead
  double issue_utilization = 0;  ///< fraction of cycles the issue port ran
  double stall_fraction = 0;     ///< fraction of warp-cycles spent blocked
};

/// Micro-simulate `kernel` on `spec` at the operating point.
/// Deterministic; cost is O(warps x groups) events per wave.
MicrosimResult microsim_kernel(const DeviceSpec& spec,
                               const KernelProfile& kernel,
                               FrequencyPair pair);

}  // namespace gppm::sim
