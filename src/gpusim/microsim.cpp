#include "gpusim/microsim.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "gpusim/timing.hpp"

namespace gppm::sim {

namespace {

/// Groups each warp's work is split into: one memory round-trip per group.
constexpr int kGroupsPerWarp = 16;
/// DRAM round-trip latency in nanoseconds (row activation + transfer +
/// interconnect); roughly constant across the generations at stock memory
/// clocks, stretched when the memory clock drops.
constexpr double kBaseMemLatencyNs = 350.0;

}  // namespace

MicrosimResult microsim_kernel(const DeviceSpec& spec,
                               const KernelProfile& kernel,
                               FrequencyPair pair) {
  GPPM_CHECK(kernel.blocks > 0 && kernel.threads_per_block > 0, "empty launch");

  const double core_hz = spec.core_clock.at(pair.core).frequency.as_hz();
  const double mem_ratio = spec.mem_clock.frequency_ratio(pair.mem);

  // --- Residency -------------------------------------------------------
  const int resident_warps = std::max(
      1, static_cast<int>(std::lround(
             kernel.occupancy * static_cast<double>(spec.timing.max_warps_per_sm))));
  const double total_warps =
      static_cast<double>(kernel.total_threads()) / 32.0;
  const double warps_per_wave =
      static_cast<double>(resident_warps * spec.sm_count);
  const double waves = std::max(1.0, total_warps / warps_per_wave);

  // --- Per-warp work ---------------------------------------------------
  // Issue slots per warp (32 threads), in units of one CUDA core-cycle.
  const double warp_slots = 32.0 * thread_issue_cycles(spec, kernel);
  // SM issue throughput in slots per core cycle.
  const double slots_per_cycle =
      static_cast<double>(spec.cores_per_sm) * spec.timing.issue_efficiency;
  const double cycles_per_group =
      std::max(1.0, warp_slots / kGroupsPerWarp / slots_per_cycle);

  // DRAM transactions per warp (32B each).  A warp performs one memory
  // round trip per *round*; low-traffic kernels have fewer rounds than
  // groups (they do not touch DRAM in most groups), capped at one round
  // per group for streaming kernels.
  const double dram_bytes_per_warp =
      kernel_dram_bytes(spec, kernel) / std::max(total_warps, 1.0);
  const double txns_per_warp = dram_bytes_per_warp / 32.0;
  const int mem_rounds = static_cast<int>(
      std::clamp(std::round(txns_per_warp), 0.0,
                 static_cast<double>(kGroupsPerWarp)));
  const double txns_per_round =
      mem_rounds > 0 ? txns_per_warp / mem_rounds : 0.0;

  // --- Memory pipe -----------------------------------------------------
  // Per-SM share of sustained DRAM bandwidth, in transactions per core
  // cycle.
  const double bw_bytes_per_s = spec.mem_bandwidth_gbps * 1e9 * mem_ratio *
                                spec.timing.dram_efficiency;
  const double txns_per_cycle =
      bw_bytes_per_s / 32.0 / static_cast<double>(spec.sm_count) / core_hz;
  GPPM_CHECK(txns_per_cycle > 0.0, "zero memory throughput");
  // Latency in core cycles; a slower memory clock stretches the on-die
  // portion of the round trip.
  const double latency_cycles =
      kBaseMemLatencyNs * 1e-9 * core_hz * (0.7 + 0.3 / std::max(mem_ratio, 0.05));

  // --- Event simulation of one wave on one SM --------------------------
  struct Warp {
    int groups_done = 0;
    double ready_at = 0.0;  // cycle the warp can issue its next group
  };
  std::vector<Warp> warps(static_cast<std::size_t>(resident_warps));

  double now = 0.0;
  double issue_busy_until = 0.0;
  double mem_busy_until = 0.0;
  double issue_busy_cycles = 0.0;
  double stall_cycles = 0.0;
  int remaining = resident_warps * kGroupsPerWarp;

  while (remaining > 0) {
    // Pick the ready warp with the earliest ready time.
    Warp* next = nullptr;
    for (Warp& w : warps) {
      if (w.groups_done >= kGroupsPerWarp) continue;
      if (next == nullptr || w.ready_at < next->ready_at) next = &w;
    }
    GPPM_ASSERT(next != nullptr);

    // The group starts when the warp is ready AND the issue port is free.
    const double start = std::max({now, next->ready_at, issue_busy_until});
    stall_cycles += std::max(0.0, start - next->ready_at);
    const double issue_end = start + cycles_per_group;
    issue_busy_until = issue_end;
    issue_busy_cycles += cycles_per_group;

    // Fire the group's memory requests (if this group ends a memory round):
    // they queue behind the SM's memory pipe and come back one latency
    // after the last one is accepted.  Memory rounds are spread evenly
    // over the warp's groups.
    double done = issue_end;
    const bool has_mem_round =
        mem_rounds > 0 &&
        ((next->groups_done + 1) * mem_rounds) / kGroupsPerWarp >
            (next->groups_done * mem_rounds) / kGroupsPerWarp;
    if (has_mem_round) {
      const double accept_start = std::max(issue_end, mem_busy_until);
      const double service = txns_per_round / txns_per_cycle;
      mem_busy_until = accept_start + service;
      done = mem_busy_until + latency_cycles;
    }
    next->groups_done += 1;
    next->ready_at = done;
    --remaining;
    now = start;
  }

  double finish = issue_busy_until;
  for (const Warp& w : warps) finish = std::max(finish, w.ready_at);

  MicrosimResult out;
  out.cycles_per_wave = finish;
  out.waves = waves;
  const double kernel_s = finish * waves / core_hz;
  out.kernel_time = Duration::seconds(kernel_s);
  out.total_time = Duration::seconds(
      static_cast<double>(kernel.launches) *
      (kernel_s + spec.timing.launch_overhead.as_seconds()));
  out.issue_utilization = finish > 0.0 ? issue_busy_cycles / finish : 0.0;
  out.stall_fraction =
      finish > 0.0
          ? stall_cycles / (finish * static_cast<double>(resident_warps))
          : 0.0;
  return out;
}

}  // namespace gppm::sim
