#include "gpusim/timing.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace gppm::sim {

namespace {
// Issue-slot costs of the instruction classes, relative to one CUDA core
// executing one single-precision FMA per cycle.
constexpr double kFmaFlopsPerSlot = 2.0;   // one FMA = 2 FLOPs in 1 slot
constexpr double kSpecialOpSlots = 4.0;    // SFU ops are ~4x scarcer
constexpr double kSharedOpSlots = 0.5;     // LSU port, dual-issued
constexpr double kTexOpSlots = 1.0;

bool finite_nonneg(double v) { return std::isfinite(v) && v >= 0.0; }

void validate(const KernelProfile& k) {
  GPPM_CHECK(k.blocks > 0 && k.threads_per_block > 0, "empty launch");
  GPPM_CHECK(k.launches > 0, "launches must be >= 1");
  // Operation counts must be finite: a non-finite count would flow through
  // the roofline's min/max combination as a silent clamp (NaN compares
  // false everywhere) and surface as garbage time instead of an error.
  GPPM_CHECK(finite_nonneg(k.flops_sp_per_thread) &&
                 finite_nonneg(k.flops_dp_per_thread) &&
                 finite_nonneg(k.int_ops_per_thread) &&
                 finite_nonneg(k.special_ops_per_thread) &&
                 finite_nonneg(k.shared_ops_per_thread) &&
                 finite_nonneg(k.tex_ops_per_thread),
             "kernel '" + k.name + "': operation counts must be finite and >= 0");
  GPPM_CHECK(finite_nonneg(k.global_load_bytes_per_thread) &&
                 finite_nonneg(k.global_store_bytes_per_thread),
             "kernel '" + k.name + "': global byte counts must be finite and >= 0");
  GPPM_CHECK(k.coalescing > 0.0 && k.coalescing <= 1.0, "coalescing in (0,1]");
  GPPM_CHECK(k.locality >= 0.0 && k.locality < 1.0, "locality in [0,1)");
  GPPM_CHECK(k.divergence >= 1.0 && std::isfinite(k.divergence),
             "divergence >= 1");
  GPPM_CHECK(k.bank_conflict >= 1.0 && std::isfinite(k.bank_conflict),
             "bank_conflict >= 1");
  GPPM_CHECK(k.occupancy > 0.0 && k.occupancy <= 1.0, "occupancy in (0,1]");
  GPPM_CHECK(k.overlap >= 0.0 && k.overlap <= 1.0, "overlap in [0,1]");
}
}  // namespace

double thread_issue_cycles(const DeviceSpec& spec, const KernelProfile& k) {
  const double dp_cost =
      1.0 / std::max(spec.timing.dp_throughput_ratio, 1e-6) / kFmaFlopsPerSlot;
  double slots = k.flops_sp_per_thread / kFmaFlopsPerSlot +
                 k.flops_dp_per_thread * dp_cost +
                 k.int_ops_per_thread +
                 k.special_ops_per_thread * kSpecialOpSlots +
                 k.shared_ops_per_thread * kSharedOpSlots * k.bank_conflict +
                 k.tex_ops_per_thread * kTexOpSlots;
  return slots * k.divergence;
}

double kernel_dram_bytes(const DeviceSpec& spec, const KernelProfile& k) {
  const double raw =
      static_cast<double>(k.total_threads()) *
      (k.global_load_bytes_per_thread + k.global_store_bytes_per_thread);
  // Cache hierarchy removes the cacheable share of the traffic; poorly
  // coalesced patterns inflate what remains (partial transactions).
  const double hit = k.locality * spec.timing.cache_effectiveness;
  return raw * (1.0 - hit) / k.coalescing;
}

double device_bandwidth_ceiling(const DeviceSpec& spec, FrequencyPair pair) {
  return spec.mem_bandwidth_gbps * 1e9 *
         spec.mem_clock.frequency_ratio(pair.mem) *
         spec.timing.dram_efficiency;
}

double sustained_bandwidth(const DeviceSpec& spec, const KernelProfile& kernel,
                           FrequencyPair pair) {
  // Bandwidth scales linearly with the memory clock; sustained efficiency
  // degrades at low occupancy (not enough requests in flight) and when the
  // core clock is low relative to the memory clock (the SMs cannot issue
  // requests fast enough to keep DRAM busy).  The latter is what makes
  // memory-bound kernels gain performance from the core clock at Mem-H,
  // the paper's Fig. 2 observation on Streamcluster.
  const double mlp_eff = 0.55 + 0.45 * kernel.occupancy;
  const double clock_ratio = spec.core_clock.frequency_ratio(pair.core) /
                             spec.mem_clock.frequency_ratio(pair.mem);
  const double issue_eff = std::min(1.0, 0.55 + 0.5 * clock_ratio);
  return device_bandwidth_ceiling(spec, pair) * mlp_eff * issue_eff;
}

double kernel_bandwidth_demand(const DeviceSpec& spec,
                               const KernelProfile& kernel,
                               FrequencyPair pair) {
  const KernelTiming t = compute_kernel_timing(spec, kernel, pair);
  const double seconds = t.kernel_time.as_seconds();
  return seconds > 0.0 ? t.dram_bytes / seconds : 0.0;
}

KernelTiming compute_kernel_timing(const DeviceSpec& spec,
                                   const KernelProfile& kernel,
                                   FrequencyPair pair) {
  validate(kernel);

  const Frequency core_freq = spec.core_clock.at(pair.core).frequency;

  // --- Compute side ---------------------------------------------------
  // Low occupancy costs issue efficiency: with few resident warps the
  // scheduler cannot cover pipeline latency.
  const double occ_eff = 0.45 + 0.55 * kernel.occupancy;
  const double slots_per_cycle =
      static_cast<double>(spec.cuda_cores) * spec.timing.issue_efficiency * occ_eff;
  const double total_slots =
      static_cast<double>(kernel.total_threads()) *
      thread_issue_cycles(spec, kernel);
  const double compute_cycles = total_slots / slots_per_cycle;
  const double t_comp = compute_cycles / core_freq.as_hz();

  // --- Memory side ----------------------------------------------------
  const double dram_bytes = kernel_dram_bytes(spec, kernel);
  const double bw_bytes_per_s = sustained_bandwidth(spec, kernel, pair);
  // A kernel that moves DRAM traffic on a device that cannot deliver any
  // bandwidth has an implied demand above the ceiling by construction.
  // Reject it: the previous behaviour silently clamped t_mem to zero,
  // i.e. granted the kernel infinite bandwidth.
  GPPM_CHECK(dram_bytes == 0.0 || bw_bytes_per_s > 0.0,
             "kernel '" + kernel.name + "' demands " +
                 std::to_string(dram_bytes) +
                 " DRAM bytes but the device bandwidth ceiling at this "
                 "operating point is zero");
  const double t_mem = dram_bytes > 0.0 ? dram_bytes / bw_bytes_per_s : 0.0;

  // --- Bounded overlap combination -------------------------------------
  const double t_max = std::max(t_comp, t_mem);
  const double t_min = std::min(t_comp, t_mem);
  const double t_kernel = t_max + (1.0 - kernel.overlap) * t_min;

  KernelTiming out;
  out.compute_time = Duration::seconds(t_comp);
  out.memory_time = Duration::seconds(t_mem);
  out.kernel_time = Duration::seconds(t_kernel);
  out.total_time =
      Duration::seconds(static_cast<double>(kernel.launches) *
                        (t_kernel + spec.timing.launch_overhead.as_seconds()));
  out.core_utilization = t_kernel > 0.0 ? std::clamp(t_comp / t_kernel, 0.0, 1.0) : 0.0;
  out.mem_utilization = t_kernel > 0.0 ? std::clamp(t_mem / t_kernel, 0.0, 1.0) : 0.0;
  out.dram_bytes = dram_bytes;
  return out;
}

}  // namespace gppm::sim
