// The GPU execution engine: runs benchmark profiles at an operating point
// and produces the three observables the paper's pipeline consumes — time,
// power over time, and hardware-event counts.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "gpusim/device_spec.hpp"
#include "gpusim/events.hpp"
#include "gpusim/kernel_profile.hpp"
#include "gpusim/timing.hpp"

namespace gppm::sim {

/// What a segment of a run's power timeline represents.
enum class SegmentKind { HostCompute, GpuKernel };

/// A constant-power interval of a run; `gpu_power` is the GPU board power
/// during the segment (host power is added by the measurement layer).
struct PowerSegment {
  SegmentKind kind;
  Duration duration;
  Power gpu_power;
};

/// Result of executing one kernel launch series.
struct KernelExecution {
  KernelTiming timing;        ///< per-launch breakdown + total over launches
  Power gpu_power;            ///< average GPU board power during the kernels
  HardwareEvents events;      ///< ground-truth counts over all launches
};

/// Result of executing one full benchmark run.
struct RunExecution {
  Duration gpu_time;          ///< sum of kernel total times
  Duration host_time;         ///< CPU-side portion (clock-independent)
  Duration total_time;        ///< gpu_time + host_time
  HardwareEvents events;      ///< aggregated over all kernels
  std::vector<KernelExecution> kernels;
  std::vector<PowerSegment> timeline;  ///< host-setup / kernels / host-finish
};

/// A simulated GPU board.  Deterministic: two Gpu instances with the same
/// model and seed produce identical results for identical inputs, regardless
/// of call order (per-kernel stochastic effects are keyed on kernel name and
/// operating point, not on engine state).
class Gpu {
 public:
  /// `seed` controls the unmodeled-behaviour draw (see
  /// DeviceSpec::timing.unmodeled_sigma).
  explicit Gpu(GpuModel model, std::uint64_t seed = 42);

  const DeviceSpec& spec() const { return spec_; }

  /// Pin the clock pair, as the paper's BIOS method does at boot.
  /// The engine accepts any of the nine combinations; the DVFS layer
  /// enforces which ones a board's BIOS actually exposes (TABLE III).
  void set_frequency_pair(FrequencyPair pair) { pair_ = pair; }
  FrequencyPair frequency_pair() const { return pair_; }

  /// Execute one kernel launch series at the pinned clocks.
  KernelExecution launch(const KernelProfile& kernel) const;

  /// Execute a full benchmark run (kernels + host time).
  RunExecution run(const RunProfile& profile) const;

 private:
  /// Multiplicative time factor for counter-invisible behaviour, keyed on
  /// (seed, model, kernel name): stable across operating points so it acts
  /// like workload character, not run noise.
  double unmodeled_factor(const std::string& kernel_name,
                          double sigma_scale) const;

  const DeviceSpec& spec_;
  std::uint64_t seed_;
  FrequencyPair pair_ = kDefaultPair;
};

/// Derive ground-truth hardware events for one kernel launch series.
/// Exposed for the profiler layer and tests.
HardwareEvents synthesize_events(const DeviceSpec& spec,
                                 const KernelProfile& kernel,
                                 const KernelTiming& timing);

}  // namespace gppm::sim
