#include "gpusim/arch.hpp"

#include "common/error.hpp"

namespace gppm::sim {

std::string to_string(Architecture a) {
  switch (a) {
    case Architecture::Tesla: return "Tesla";
    case Architecture::Fermi: return "Fermi";
    case Architecture::Kepler: return "Kepler";
  }
  throw Error("unknown architecture");
}

std::string to_string(GpuModel m) {
  switch (m) {
    case GpuModel::GTX285: return "GTX 285";
    case GpuModel::GTX460: return "GTX 460";
    case GpuModel::GTX480: return "GTX 480";
    case GpuModel::GTX680: return "GTX 680";
  }
  throw Error("unknown GPU model");
}

std::string to_string(ClockLevel l) {
  switch (l) {
    case ClockLevel::Low: return "L";
    case ClockLevel::Medium: return "M";
    case ClockLevel::High: return "H";
  }
  throw Error("unknown clock level");
}

std::string to_string(FrequencyPair p) {
  return "(" + to_string(p.core) + "-" + to_string(p.mem) + ")";
}

std::size_t level_index(ClockLevel l) {
  switch (l) {
    case ClockLevel::Low: return 0;
    case ClockLevel::Medium: return 1;
    case ClockLevel::High: return 2;
  }
  throw Error("unknown clock level");
}

}  // namespace gppm::sim
