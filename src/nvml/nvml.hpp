// NVML-style runtime monitoring shim.
//
// A modern reproduction of the paper's measurement setup would sample board
// power through NVML instead of a wall-power meter.  This module provides
// an NVML-shaped API over the simulated boards so downstream tooling
// written against that interface (samplers, dashboards, governors) can run
// unmodified on the simulator:
//
//   * device enumeration and handles,
//   * clock / utilization / power queries tied to a running workload,
//   * on-board energy counters (millijoules, like nvmlDeviceGetTotalEnergyConsumption).
//
// Semantics note: NVML reads *board* power (not wall power) and reflects
// whatever the board is doing at the query's virtual timestamp.  The shim
// is driven by an explicit virtual timeline — callers attach the power
// segments of a run and then query at chosen offsets, which keeps the
// library deterministic and free of wall-clock dependencies.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "gpusim/engine.hpp"

namespace gppm::nvml {

/// Opaque device handle (index into the session's device table).
struct DeviceHandle {
  std::size_t index = 0;
  bool operator==(const DeviceHandle&) const = default;
};

/// Instantaneous utilization rates, as NVML reports them (percent).
struct UtilizationRates {
  unsigned gpu = 0;     ///< percent of time the SMs were busy
  unsigned memory = 0;  ///< percent of time the memory interface was busy
};

/// Clock readings in MHz.
struct ClockInfo {
  unsigned graphics_mhz = 0;
  unsigned memory_mhz = 0;
};

/// An NVML session over a set of simulated boards.
class Session {
 public:
  Session() = default;

  /// Register a board with the session; returns its handle.
  DeviceHandle attach_device(sim::Gpu& gpu);

  /// Number of attached devices (nvmlDeviceGetCount).
  std::size_t device_count() const { return devices_.size(); }

  /// Board name (nvmlDeviceGetName).
  std::string device_name(DeviceHandle handle) const;

  /// Current clocks (nvmlDeviceGetClockInfo).
  ClockInfo clock_info(DeviceHandle handle) const;

  /// Load a run's power timeline into the device's virtual recorder.  The
  /// timeline starts at virtual time 0; subsequent queries sample it.
  void begin_run(DeviceHandle handle, const sim::RunExecution& exec);

  /// Board power draw at a virtual timestamp (nvmlDeviceGetPowerUsage,
  /// milliwatts).  Past the end of the run the board reads idle power.
  unsigned power_usage_mw(DeviceHandle handle, Duration at) const;

  /// Utilization at a virtual timestamp (nvmlDeviceGetUtilizationRates).
  UtilizationRates utilization(DeviceHandle handle, Duration at) const;

  /// Total board energy from run start to `until`
  /// (nvmlDeviceGetTotalEnergyConsumption, millijoules).
  std::uint64_t total_energy_mj(DeviceHandle handle, Duration until) const;

 private:
  struct Device {
    sim::Gpu* gpu = nullptr;
    std::vector<sim::PowerSegment> timeline;
    std::vector<sim::KernelExecution> kernels;
  };
  const Device& device(DeviceHandle handle) const;

  std::vector<Device> devices_;
};

/// Fixed-interval power sampler built on a Session — the NVML equivalent of
/// the WT1600 loop ("sample power every N ms, accumulate energy").
struct PowerSample {
  Duration timestamp;
  Power power;
};

/// Sample a device's power over [0, duration) every `period`.
std::vector<PowerSample> sample_power(const Session& session,
                                      DeviceHandle handle, Duration duration,
                                      Duration period);

/// Average power of a sample series.
Power average_power(const std::vector<PowerSample>& samples);

}  // namespace gppm::nvml
