#include "nvml/nvml.hpp"

#include <cmath>

#include "common/error.hpp"
#include "gpusim/power.hpp"

namespace gppm::nvml {

DeviceHandle Session::attach_device(sim::Gpu& gpu) {
  Device d;
  d.gpu = &gpu;
  devices_.push_back(std::move(d));
  return DeviceHandle{devices_.size() - 1};
}

const Session::Device& Session::device(DeviceHandle handle) const {
  GPPM_CHECK(handle.index < devices_.size(), "invalid device handle");
  return devices_[handle.index];
}

std::string Session::device_name(DeviceHandle handle) const {
  return "NVIDIA GeForce " + sim::to_string(device(handle).gpu->spec().model);
}

ClockInfo Session::clock_info(DeviceHandle handle) const {
  const Device& d = device(handle);
  const sim::DeviceSpec& spec = d.gpu->spec();
  const sim::FrequencyPair pair = d.gpu->frequency_pair();
  ClockInfo info;
  info.graphics_mhz = static_cast<unsigned>(
      std::lround(spec.core_clock.at(pair.core).frequency.as_mhz()));
  info.memory_mhz = static_cast<unsigned>(
      std::lround(spec.mem_clock.at(pair.mem).frequency.as_mhz()));
  return info;
}

void Session::begin_run(DeviceHandle handle, const sim::RunExecution& exec) {
  GPPM_CHECK(handle.index < devices_.size(), "invalid device handle");
  devices_[handle.index].timeline = exec.timeline;
  devices_[handle.index].kernels = exec.kernels;
}

namespace {
/// Locate the timeline segment covering virtual time `at`; nullptr if the
/// run has ended (or none is loaded).
const sim::PowerSegment* segment_at(const std::vector<sim::PowerSegment>& tl,
                                    Duration at) {
  double t = at.as_seconds();
  GPPM_CHECK(t >= 0.0, "negative timestamp");
  for (const sim::PowerSegment& seg : tl) {
    if (t < seg.duration.as_seconds()) return &seg;
    t -= seg.duration.as_seconds();
  }
  return nullptr;
}
}  // namespace

unsigned Session::power_usage_mw(DeviceHandle handle, Duration at) const {
  const Device& d = device(handle);
  const sim::PowerSegment* seg = segment_at(d.timeline, at);
  const Power p = seg != nullptr
                      ? seg->gpu_power
                      : sim::gpu_idle_power(d.gpu->spec(), d.gpu->frequency_pair());
  return static_cast<unsigned>(std::lround(p.as_watts() * 1000.0));
}

UtilizationRates Session::utilization(DeviceHandle handle, Duration at) const {
  const Device& d = device(handle);
  const sim::PowerSegment* seg = segment_at(d.timeline, at);
  UtilizationRates rates;
  if (seg == nullptr || seg->kind != sim::SegmentKind::GpuKernel) {
    return rates;  // idle or host phase: 0/0
  }
  // Identify which kernel this segment belongs to (segments and kernels are
  // in launch order; GpuKernel segments map 1:1 to kernels).
  std::size_t kernel_idx = 0;
  double t = at.as_seconds();
  for (const sim::PowerSegment& s : d.timeline) {
    if (t < s.duration.as_seconds()) break;
    t -= s.duration.as_seconds();
    if (s.kind == sim::SegmentKind::GpuKernel) ++kernel_idx;
  }
  GPPM_CHECK(kernel_idx < d.kernels.size(), "timeline/kernel mismatch");
  const sim::KernelTiming& timing = d.kernels[kernel_idx].timing;
  rates.gpu = static_cast<unsigned>(
      std::lround(timing.core_utilization * 100.0));
  rates.memory = static_cast<unsigned>(
      std::lround(timing.mem_utilization * 100.0));
  return rates;
}

std::uint64_t Session::total_energy_mj(DeviceHandle handle,
                                       Duration until) const {
  const Device& d = device(handle);
  double t = until.as_seconds();
  GPPM_CHECK(t >= 0.0, "negative timestamp");
  double joules = 0.0;
  for (const sim::PowerSegment& seg : d.timeline) {
    const double take = std::min(t, seg.duration.as_seconds());
    if (take <= 0.0) break;
    joules += seg.gpu_power.as_watts() * take;
    t -= take;
  }
  if (t > 0.0) {
    // Run over: the board idles for the remainder.
    joules +=
        sim::gpu_idle_power(d.gpu->spec(), d.gpu->frequency_pair()).as_watts() *
        t;
  }
  return static_cast<std::uint64_t>(std::llround(joules * 1000.0));
}

std::vector<PowerSample> sample_power(const Session& session,
                                      DeviceHandle handle, Duration duration,
                                      Duration period) {
  GPPM_CHECK(period > Duration::seconds(0.0), "period must be positive");
  GPPM_CHECK(duration >= period, "duration shorter than one period");
  std::vector<PowerSample> out;
  for (double t = 0.0; t < duration.as_seconds(); t += period.as_seconds()) {
    const Duration at = Duration::seconds(t);
    out.push_back({at, Power::watts(
                           session.power_usage_mw(handle, at) / 1000.0)});
  }
  return out;
}

Power average_power(const std::vector<PowerSample>& samples) {
  GPPM_CHECK(!samples.empty(), "no samples");
  double acc = 0.0;
  for (const PowerSample& s : samples) acc += s.power.as_watts();
  return Power::watts(acc / static_cast<double>(samples.size()));
}

}  // namespace gppm::nvml
