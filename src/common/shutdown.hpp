// Cooperative SIGINT/SIGTERM shutdown for the CLI tools.
//
// The tools' contract on Ctrl-C used to be "die mid-loop, lose every
// pending --metrics-out/--trace-out byte".  install_shutdown_handler()
// arms a tiny async-signal-safe handler that just flips an atomic flag;
// loops poll shutdown_requested() and unwind normally — reports print,
// obs sinks flush, exit code stays 0 for a clean interrupt.
//
// The handler is installed WITHOUT SA_RESTART on purpose: a tool parked
// in a blocking read (gppm serve's stdin getline, a socket accept) must
// have that call fail with EINTR so its loop can observe the flag —
// SA_RESTART would resume the read and the tool would hang until the
// next byte arrives.  A second signal while the flag is already set
// falls back to the default disposition, so a stuck drain can still be
// killed with a second Ctrl-C.
#pragma once

namespace gppm {

/// Arm SIGINT/SIGTERM to request a cooperative shutdown.  Idempotent.
void install_shutdown_handler();

/// True once a shutdown signal has arrived.  Async-signal-safe to set,
/// cheap to poll from worker loops.
bool shutdown_requested();

/// Test hook: re-arm the flag (signals are process-global state).
void reset_shutdown_for_test();

}  // namespace gppm
