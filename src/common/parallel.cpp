#include "common/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/obs.hpp"

namespace gppm {

namespace {

thread_local bool tl_in_worker = false;

// Pool instruments, registered once and cached so the hot path is a single
// enabled-flag branch per record.
obs::Counter& loops_counter() {
  static obs::Counter& c =
      obs::Registry::instance().counter("parallel.loops");
  return c;
}
obs::Counter& tasks_counter() {
  static obs::Counter& c =
      obs::Registry::instance().counter("parallel.tasks");
  return c;
}
obs::Gauge& queue_depth_gauge() {
  static obs::Gauge& g =
      obs::Registry::instance().gauge("parallel.queue_depth");
  return g;
}
obs::Gauge& busy_workers_gauge() {
  static obs::Gauge& g =
      obs::Registry::instance().gauge("parallel.busy_workers");
  return g;
}

/// Lazily-started compute pool.  Holds parallel_threads() - 1 workers; the
/// thread that calls parallel_for contributes the remaining lane.
class ComputePool {
 public:
  static ComputePool& instance() {
    static ComputePool pool(parallel_threads() > 0 ? parallel_threads() - 1
                                                   : 0);
    return pool;
  }

  std::size_t workers() const { return threads_.size(); }

  void submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      tasks_.push_back(std::move(task));
      queue_depth_gauge().set(static_cast<std::int64_t>(tasks_.size()));
    }
    cv_.notify_one();
  }

  ~ComputePool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

 private:
  explicit ComputePool(std::size_t n) {
    threads_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      threads_.emplace_back([this] {
        tl_in_worker = true;
        for (;;) {
          std::function<void()> task;
          {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
            if (stop_ && tasks_.empty()) return;
            task = std::move(tasks_.front());
            tasks_.pop_front();
            queue_depth_gauge().set(static_cast<std::int64_t>(tasks_.size()));
          }
          {
            obs::ObsSpan span("parallel.task");
            tasks_counter().add();
            busy_workers_gauge().add(1);
            task();
            busy_workers_gauge().add(-1);
          }
        }
      });
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

/// Shared state of one parallel_for call: dynamic index dispenser plus a
/// completion latch, with first-exception capture.
struct LoopState {
  const std::function<void(std::size_t)>* body = nullptr;
  std::size_t n = 0;
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};

  std::mutex mu;
  std::condition_variable done_cv;
  std::size_t active_runners = 0;
  std::exception_ptr error;

  void run_iterations() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n || failed.load(std::memory_order_relaxed)) return;
      try {
        (*body)(i);
      } catch (...) {
        failed.store(true, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(mu);
        if (!error) error = std::current_exception();
        return;
      }
    }
  }
};

}  // namespace

std::size_t parallel_threads() {
  static const std::size_t cached = [] {
    if (const char* env = std::getenv("GPPM_THREADS")) {
      char* end = nullptr;
      const unsigned long v = std::strtoul(env, &end, 10);
      if (end != env && *end == '\0' && v >= 1) {
        return static_cast<std::size_t>(v > 256 ? 256 : v);
      }
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return static_cast<std::size_t>(hw == 0 ? 1 : hw);
  }();
  return cached;
}

bool in_parallel_worker() { return tl_in_worker; }

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  std::size_t min_parallel) {
  if (n == 0) return;
  const bool serial =
      n < min_parallel || tl_in_worker || parallel_threads() <= 1;
  if (serial) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  ComputePool& pool = ComputePool::instance();
  if (pool.workers() == 0) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  obs::ObsSpan span("parallel.for");
  loops_counter().add();
  auto state = std::make_shared<LoopState>();
  state->body = &body;
  state->n = n;

  // One runner per pool worker (capped at n-1: the caller is a runner too).
  std::size_t helpers = pool.workers();
  if (helpers > n - 1) helpers = n - 1;
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->active_runners = helpers;
  }
  for (std::size_t h = 0; h < helpers; ++h) {
    pool.submit([state] {
      state->run_iterations();
      std::lock_guard<std::mutex> lock(state->mu);
      if (--state->active_runners == 0) state->done_cv.notify_all();
    });
  }

  state->run_iterations();
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->done_cv.wait(lock, [&] { return state->active_runners == 0; });
    if (state->error) std::rethrow_exception(state->error);
  }
}

}  // namespace gppm
