// Bounded retry with exponential backoff — the acquisition layer's answer
// to an unreliable instrument channel.
//
// A real characterization rig (wall-power meter on a serial link, NVML over
// the driver, VBIOS reflash + reboot per P-state) sees transient failures
// routinely; the paper's 37-benchmark x pair sweep cannot afford to abort on
// the first one.  Errors are split into transient (retry) and permanent
// (propagate) via the exception types in common/error.hpp, and retries are
// paced by an exponential backoff whose jitter comes from the library's
// deterministic RNG, so a replayed sweep backs off identically.
//
// Backoff time is *virtual*: the simulator never sleeps.  Delays are
// computed, accumulated into RetryStats and charged against the policy's
// retry budget exactly as a wall-clock implementation would, which keeps
// tests instant and sweeps reproducible.
#pragma once

#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"

namespace gppm {

/// Retry discipline for one logical operation (one measurement, one query,
/// one P-state transition).
struct RetryPolicy {
  /// Total attempts, including the first (1 = no retry).
  int max_attempts = 4;
  /// Backoff before the first retry; doubles (by `multiplier`) per retry.
  Duration initial_backoff = Duration::milliseconds(10.0);
  double multiplier = 2.0;
  /// Per-retry backoff ceiling.
  Duration max_backoff = Duration::seconds(2.0);
  /// Deterministic jitter: each delay is scaled by a factor drawn uniformly
  /// from [1 - jitter_fraction, 1 + jitter_fraction].  The fraction
  /// saturates at 0.95 inside backoff_delay — a fraction >= 1 would let the
  /// factor go negative and erase the delay entirely.
  double jitter_fraction = 0.1;
  /// Total backoff budget across the operation's retries; once spent, the
  /// next transient failure is final.
  Duration retry_budget = Duration::seconds(10.0);
};

/// What one retried operation actually did.
struct RetryStats {
  int attempts = 0;               ///< attempts performed (>= 1 once run)
  int transient_failures = 0;     ///< transient errors absorbed
  Duration total_backoff;         ///< virtual time spent backing off
  bool budget_exhausted = false;  ///< gave up because the budget ran out
};

/// Backoff before retry number `retry` (0-based: the delay after the first
/// failure is backoff_delay(policy, 0, rng)).  Deterministic given the RNG
/// state.  Saturates at max_backoff for arbitrarily high retry counts: the
/// exponential is compared in log space before being computed, so the delay
/// can never overflow to inf/NaN and wrap to a tiny or negative value.
Duration backoff_delay(const RetryPolicy& policy, int retry, Rng& rng);

/// Run `fn`, retrying on TransientError under `policy`.  PermanentError and
/// every other exception propagate immediately.  When attempts or budget
/// run out, the last TransientError propagates.  `stats` accumulates what
/// happened either way; `rng` drives the jitter (pass a forked stream for
/// order-independent determinism).
///
/// Budget-exhaustion semantics, pinned by tests: the delay that *would*
/// overrun the budget is computed (advancing `rng` by exactly one jitter
/// draw, the same as a charged delay) but never charged —
/// `stats.total_backoff` counts only delays actually spent, so it never
/// exceeds `policy.retry_budget`, while the RNG stream position depends
/// only on the number of transient failures that were followed by a backoff
/// computation.  Two runs with the same seed and failure pattern therefore
/// leave their RNGs in identical states whether or not the last delay fit
/// the budget.
template <typename Fn>
auto retry_call(const RetryPolicy& policy, Rng& rng, RetryStats& stats,
                Fn&& fn) -> decltype(fn()) {
  const int attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  for (int attempt = 0;; ++attempt) {
    ++stats.attempts;
    try {
      return std::forward<Fn>(fn)();
    } catch (const TransientError&) {
      ++stats.transient_failures;
      if (attempt + 1 >= attempts) throw;
      const Duration delay = backoff_delay(policy, attempt, rng);
      if (stats.total_backoff + delay > policy.retry_budget) {
        stats.budget_exhausted = true;
        throw;
      }
      stats.total_backoff += delay;
    }
  }
}

}  // namespace gppm
