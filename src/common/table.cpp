#include "common/table.hpp"

#include "common/error.hpp"
#include "common/str.hpp"

namespace gppm {

void AsciiTable::add_row(std::vector<std::string> row) {
  GPPM_CHECK(row.size() == header_.size(), "row width != header width");
  rows_.push_back(std::move(row));
}

void AsciiTable::add_row(const std::string& key,
                         const std::vector<double>& values, int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(key);
  for (double v : values) row.push_back(format_double(v, precision));
  add_row(std::move(row));
}

void AsciiTable::print(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_sep = [&] {
    out << '+';
    for (std::size_t w : widths) out << std::string(w + 2, '-') << '+';
    out << '\n';
  };
  auto print_row = [&](const std::vector<std::string>& row) {
    out << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << ' ' << pad_right(row[c], widths[c]) << " |";
    }
    out << '\n';
  };

  if (!title_.empty()) out << title_ << '\n';
  print_sep();
  print_row(header_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
}

}  // namespace gppm
