// Minimal CSV writer.  Benches emit their table/figure data as CSV next to
// the human-readable rendering so results can be re-plotted externally.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace gppm {

/// Streams rows of a CSV document.  Fields containing commas, quotes,
/// newlines or carriage returns are quoted per RFC 4180.
class CsvWriter {
 public:
  /// Writes to `out`; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  /// Write one row of string fields.
  void row(const std::vector<std::string>& fields);

  /// Write one row mixing a string key with numeric fields.
  void row(const std::string& key, const std::vector<double>& values,
           int precision = 6);

 private:
  static std::string escape(const std::string& field);
  std::ostream& out_;
};

}  // namespace gppm
