// Portable SIMD kernels for the measured hot loops, with compile-time
// dispatch and a bit-identical scalar fallback.
//
// Backend selection is purely compile-time, driven by the ISA feature
// macros the compiler already defines (no runtime dispatch, no new
// dependencies):
//
//   GPPM_SIMD_FORCE_SCALAR   -> scalar   (set by -DGPPM_SIMD=off)
//   __AVX2__                 -> avx2     (4 doubles per vector)
//   __ARM_NEON               -> neon     (2 doubles per vector)
//   __SSE2__ / x86-64        -> sse2     (2 doubles per vector)
//   anything else            -> scalar
//
// Bit-identity is the design constraint, not an afterthought.  Every
// reduction kernel — on every backend, including the scalar fallback —
// computes the SAME fixed summation tree: eight logical accumulator lanes
// striding the input (element i lands in lane i % 8), spilled to an array
// and combined by one shared expression.  IEEE-754 arithmetic is
// deterministic per operation, so two backends running the same tree over
// the same input produce the same bits, NaNs and denormals included.  The
// `simd` ctest label pins this: kernels are compared bitwise against
// gppm::simd::scalar::* (always compiled) on randomized inputs, and a
// -DGPPM_SIMD=off build must reproduce the default build's model
// artifacts byte for byte.
//
// Corollary: kernels never use FMA intrinsics, and the build sets
// -ffp-contract=off, so a*b+c cannot silently contract to fma(a,b,c) on
// one backend and not another.
#pragma once

#include <cstddef>

#if defined(GPPM_SIMD_FORCE_SCALAR)
// Scalar fallback requested (-DGPPM_SIMD=off): no ISA headers.
#elif defined(__AVX2__)
#define GPPM_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(__ARM_NEON) || defined(__ARM_NEON__)
#define GPPM_SIMD_NEON 1
#include <arm_neon.h>
#elif defined(__SSE2__) || defined(_M_X64) || \
    (defined(_M_IX86_FP) && _M_IX86_FP >= 2)
#define GPPM_SIMD_SSE2 1
#include <emmintrin.h>
#endif

namespace gppm::simd {

/// Logical accumulator lanes per reduction.  Fixed across backends — it is
/// part of the numeric contract, not a tuning knob.
inline constexpr std::size_t kAccumLanes = 8;

/// Combine the eight spilled accumulator lanes.  One shared tree shape for
/// every backend; changing it changes every artifact, so don't.
inline double combine8(const double lanes[kAccumLanes]) {
  return ((lanes[0] + lanes[4]) + (lanes[2] + lanes[6])) +
         ((lanes[1] + lanes[5]) + (lanes[3] + lanes[7]));
}

/// Reference kernels: the canonical 8-lane tree written out scalarly.
/// Always compiled, whatever backend is active — the parity suite compares
/// the active backend against these bitwise.
namespace scalar {

inline double dot(const double* a, const double* b, std::size_t n) {
  double lanes[kAccumLanes] = {0, 0, 0, 0, 0, 0, 0, 0};
  const std::size_t n8 = n & ~(kAccumLanes - 1);
  for (std::size_t i = 0; i < n8; i += kAccumLanes) {
    for (std::size_t l = 0; l < kAccumLanes; ++l) {
      lanes[l] += a[i + l] * b[i + l];
    }
  }
  for (std::size_t l = 0; n8 + l < n; ++l) lanes[l] += a[n8 + l] * b[n8 + l];
  return combine8(lanes);
}

inline double sum(const double* a, std::size_t n) {
  double lanes[kAccumLanes] = {0, 0, 0, 0, 0, 0, 0, 0};
  const std::size_t n8 = n & ~(kAccumLanes - 1);
  for (std::size_t i = 0; i < n8; i += kAccumLanes) {
    for (std::size_t l = 0; l < kAccumLanes; ++l) lanes[l] += a[i + l];
  }
  for (std::size_t l = 0; n8 + l < n; ++l) lanes[l] += a[n8 + l];
  return combine8(lanes);
}

/// Fused single pass producing sum(a) and dot(a, y) — the Gram builder's
/// per-column pair (intercept cross term + X^T y entry).
inline void sum_dot(const double* a, const double* y, std::size_t n,
                    double& sum_out, double& dot_out) {
  double s[kAccumLanes] = {0, 0, 0, 0, 0, 0, 0, 0};
  double d[kAccumLanes] = {0, 0, 0, 0, 0, 0, 0, 0};
  const std::size_t n8 = n & ~(kAccumLanes - 1);
  for (std::size_t i = 0; i < n8; i += kAccumLanes) {
    for (std::size_t l = 0; l < kAccumLanes; ++l) {
      s[l] += a[i + l];
      d[l] += a[i + l] * y[i + l];
    }
  }
  for (std::size_t l = 0; n8 + l < n; ++l) {
    s[l] += a[n8 + l];
    d[l] += a[n8 + l] * y[n8 + l];
  }
  sum_out = combine8(s);
  dot_out = combine8(d);
}

}  // namespace scalar

/// Strided dot product over the same 8-lane tree (element i in lane i % 8).
/// Row-major column access has no contiguous layout to vectorize over, so
/// this stays scalar on every backend — but because it computes the
/// canonical tree, Matrix::col_dot(c, c) is bit-identical to simd::dot over
/// the same column copied contiguous (the column-panel path in GramSystem).
inline double dot_strided(const double* a, const double* b, std::size_t n,
                          std::size_t stride_a, std::size_t stride_b) {
  double lanes[kAccumLanes] = {0, 0, 0, 0, 0, 0, 0, 0};
  const std::size_t n8 = n & ~(kAccumLanes - 1);
  for (std::size_t i = 0; i < n8; i += kAccumLanes) {
    for (std::size_t l = 0; l < kAccumLanes; ++l) {
      lanes[l] += a[(i + l) * stride_a] * b[(i + l) * stride_b];
    }
  }
  for (std::size_t l = 0; n8 + l < n; ++l) {
    lanes[l] += a[(n8 + l) * stride_a] * b[(n8 + l) * stride_b];
  }
  return combine8(lanes);
}

#if defined(GPPM_SIMD_AVX2)

inline constexpr const char* kBackend = "avx2";
inline constexpr std::size_t kLaneWidth = 4;

/// Two 4-wide accumulators = logical lanes 0-3 and 4-7.  The vector loads
/// map element i+l to lane l in order, matching the scalar reference's
/// striding exactly.
inline double dot(const double* a, const double* b, std::size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  const std::size_t n8 = n & ~(kAccumLanes - 1);
  for (std::size_t i = 0; i < n8; i += kAccumLanes) {
    acc0 = _mm256_add_pd(
        acc0, _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
    acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(_mm256_loadu_pd(a + i + 4),
                                             _mm256_loadu_pd(b + i + 4)));
  }
  double lanes[kAccumLanes];
  _mm256_storeu_pd(lanes, acc0);
  _mm256_storeu_pd(lanes + 4, acc1);
  for (std::size_t l = 0; n8 + l < n; ++l) lanes[l] += a[n8 + l] * b[n8 + l];
  return combine8(lanes);
}

inline double sum(const double* a, std::size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  const std::size_t n8 = n & ~(kAccumLanes - 1);
  for (std::size_t i = 0; i < n8; i += kAccumLanes) {
    acc0 = _mm256_add_pd(acc0, _mm256_loadu_pd(a + i));
    acc1 = _mm256_add_pd(acc1, _mm256_loadu_pd(a + i + 4));
  }
  double lanes[kAccumLanes];
  _mm256_storeu_pd(lanes, acc0);
  _mm256_storeu_pd(lanes + 4, acc1);
  for (std::size_t l = 0; n8 + l < n; ++l) lanes[l] += a[n8 + l];
  return combine8(lanes);
}

inline void sum_dot(const double* a, const double* y, std::size_t n,
                    double& sum_out, double& dot_out) {
  __m256d s0 = _mm256_setzero_pd(), s1 = _mm256_setzero_pd();
  __m256d d0 = _mm256_setzero_pd(), d1 = _mm256_setzero_pd();
  const std::size_t n8 = n & ~(kAccumLanes - 1);
  for (std::size_t i = 0; i < n8; i += kAccumLanes) {
    const __m256d a0 = _mm256_loadu_pd(a + i);
    const __m256d a1 = _mm256_loadu_pd(a + i + 4);
    s0 = _mm256_add_pd(s0, a0);
    s1 = _mm256_add_pd(s1, a1);
    d0 = _mm256_add_pd(d0, _mm256_mul_pd(a0, _mm256_loadu_pd(y + i)));
    d1 = _mm256_add_pd(d1, _mm256_mul_pd(a1, _mm256_loadu_pd(y + i + 4)));
  }
  double s[kAccumLanes], d[kAccumLanes];
  _mm256_storeu_pd(s, s0);
  _mm256_storeu_pd(s + 4, s1);
  _mm256_storeu_pd(d, d0);
  _mm256_storeu_pd(d + 4, d1);
  for (std::size_t l = 0; n8 + l < n; ++l) {
    s[l] += a[n8 + l];
    d[l] += a[n8 + l] * y[n8 + l];
  }
  sum_out = combine8(s);
  dot_out = combine8(d);
}

#elif defined(GPPM_SIMD_NEON)

inline constexpr const char* kBackend = "neon";
inline constexpr std::size_t kLaneWidth = 2;

/// Four 2-wide accumulators = logical lane pairs (0,1) (2,3) (4,5) (6,7).
inline double dot(const double* a, const double* b, std::size_t n) {
  float64x2_t acc0 = vdupq_n_f64(0.0), acc1 = vdupq_n_f64(0.0);
  float64x2_t acc2 = vdupq_n_f64(0.0), acc3 = vdupq_n_f64(0.0);
  const std::size_t n8 = n & ~(kAccumLanes - 1);
  for (std::size_t i = 0; i < n8; i += kAccumLanes) {
    acc0 = vaddq_f64(acc0, vmulq_f64(vld1q_f64(a + i), vld1q_f64(b + i)));
    acc1 = vaddq_f64(acc1,
                     vmulq_f64(vld1q_f64(a + i + 2), vld1q_f64(b + i + 2)));
    acc2 = vaddq_f64(acc2,
                     vmulq_f64(vld1q_f64(a + i + 4), vld1q_f64(b + i + 4)));
    acc3 = vaddq_f64(acc3,
                     vmulq_f64(vld1q_f64(a + i + 6), vld1q_f64(b + i + 6)));
  }
  double lanes[kAccumLanes];
  vst1q_f64(lanes, acc0);
  vst1q_f64(lanes + 2, acc1);
  vst1q_f64(lanes + 4, acc2);
  vst1q_f64(lanes + 6, acc3);
  for (std::size_t l = 0; n8 + l < n; ++l) lanes[l] += a[n8 + l] * b[n8 + l];
  return combine8(lanes);
}

inline double sum(const double* a, std::size_t n) {
  float64x2_t acc0 = vdupq_n_f64(0.0), acc1 = vdupq_n_f64(0.0);
  float64x2_t acc2 = vdupq_n_f64(0.0), acc3 = vdupq_n_f64(0.0);
  const std::size_t n8 = n & ~(kAccumLanes - 1);
  for (std::size_t i = 0; i < n8; i += kAccumLanes) {
    acc0 = vaddq_f64(acc0, vld1q_f64(a + i));
    acc1 = vaddq_f64(acc1, vld1q_f64(a + i + 2));
    acc2 = vaddq_f64(acc2, vld1q_f64(a + i + 4));
    acc3 = vaddq_f64(acc3, vld1q_f64(a + i + 6));
  }
  double lanes[kAccumLanes];
  vst1q_f64(lanes, acc0);
  vst1q_f64(lanes + 2, acc1);
  vst1q_f64(lanes + 4, acc2);
  vst1q_f64(lanes + 6, acc3);
  for (std::size_t l = 0; n8 + l < n; ++l) lanes[l] += a[n8 + l];
  return combine8(lanes);
}

inline void sum_dot(const double* a, const double* y, std::size_t n,
                    double& sum_out, double& dot_out) {
  float64x2_t s0 = vdupq_n_f64(0.0), s1 = vdupq_n_f64(0.0);
  float64x2_t s2 = vdupq_n_f64(0.0), s3 = vdupq_n_f64(0.0);
  float64x2_t d0 = vdupq_n_f64(0.0), d1 = vdupq_n_f64(0.0);
  float64x2_t d2 = vdupq_n_f64(0.0), d3 = vdupq_n_f64(0.0);
  const std::size_t n8 = n & ~(kAccumLanes - 1);
  for (std::size_t i = 0; i < n8; i += kAccumLanes) {
    const float64x2_t a0 = vld1q_f64(a + i);
    const float64x2_t a1 = vld1q_f64(a + i + 2);
    const float64x2_t a2 = vld1q_f64(a + i + 4);
    const float64x2_t a3 = vld1q_f64(a + i + 6);
    s0 = vaddq_f64(s0, a0);
    s1 = vaddq_f64(s1, a1);
    s2 = vaddq_f64(s2, a2);
    s3 = vaddq_f64(s3, a3);
    d0 = vaddq_f64(d0, vmulq_f64(a0, vld1q_f64(y + i)));
    d1 = vaddq_f64(d1, vmulq_f64(a1, vld1q_f64(y + i + 2)));
    d2 = vaddq_f64(d2, vmulq_f64(a2, vld1q_f64(y + i + 4)));
    d3 = vaddq_f64(d3, vmulq_f64(a3, vld1q_f64(y + i + 6)));
  }
  double s[kAccumLanes], d[kAccumLanes];
  vst1q_f64(s, s0);
  vst1q_f64(s + 2, s1);
  vst1q_f64(s + 4, s2);
  vst1q_f64(s + 6, s3);
  vst1q_f64(d, d0);
  vst1q_f64(d + 2, d1);
  vst1q_f64(d + 4, d2);
  vst1q_f64(d + 6, d3);
  for (std::size_t l = 0; n8 + l < n; ++l) {
    s[l] += a[n8 + l];
    d[l] += a[n8 + l] * y[n8 + l];
  }
  sum_out = combine8(s);
  dot_out = combine8(d);
}

#elif defined(GPPM_SIMD_SSE2)

inline constexpr const char* kBackend = "sse2";
inline constexpr std::size_t kLaneWidth = 2;

/// Four 2-wide accumulators = logical lane pairs (0,1) (2,3) (4,5) (6,7).
inline double dot(const double* a, const double* b, std::size_t n) {
  __m128d acc0 = _mm_setzero_pd(), acc1 = _mm_setzero_pd();
  __m128d acc2 = _mm_setzero_pd(), acc3 = _mm_setzero_pd();
  const std::size_t n8 = n & ~(kAccumLanes - 1);
  for (std::size_t i = 0; i < n8; i += kAccumLanes) {
    acc0 = _mm_add_pd(acc0,
                      _mm_mul_pd(_mm_loadu_pd(a + i), _mm_loadu_pd(b + i)));
    acc1 = _mm_add_pd(
        acc1, _mm_mul_pd(_mm_loadu_pd(a + i + 2), _mm_loadu_pd(b + i + 2)));
    acc2 = _mm_add_pd(
        acc2, _mm_mul_pd(_mm_loadu_pd(a + i + 4), _mm_loadu_pd(b + i + 4)));
    acc3 = _mm_add_pd(
        acc3, _mm_mul_pd(_mm_loadu_pd(a + i + 6), _mm_loadu_pd(b + i + 6)));
  }
  double lanes[kAccumLanes];
  _mm_storeu_pd(lanes, acc0);
  _mm_storeu_pd(lanes + 2, acc1);
  _mm_storeu_pd(lanes + 4, acc2);
  _mm_storeu_pd(lanes + 6, acc3);
  for (std::size_t l = 0; n8 + l < n; ++l) lanes[l] += a[n8 + l] * b[n8 + l];
  return combine8(lanes);
}

inline double sum(const double* a, std::size_t n) {
  __m128d acc0 = _mm_setzero_pd(), acc1 = _mm_setzero_pd();
  __m128d acc2 = _mm_setzero_pd(), acc3 = _mm_setzero_pd();
  const std::size_t n8 = n & ~(kAccumLanes - 1);
  for (std::size_t i = 0; i < n8; i += kAccumLanes) {
    acc0 = _mm_add_pd(acc0, _mm_loadu_pd(a + i));
    acc1 = _mm_add_pd(acc1, _mm_loadu_pd(a + i + 2));
    acc2 = _mm_add_pd(acc2, _mm_loadu_pd(a + i + 4));
    acc3 = _mm_add_pd(acc3, _mm_loadu_pd(a + i + 6));
  }
  double lanes[kAccumLanes];
  _mm_storeu_pd(lanes, acc0);
  _mm_storeu_pd(lanes + 2, acc1);
  _mm_storeu_pd(lanes + 4, acc2);
  _mm_storeu_pd(lanes + 6, acc3);
  for (std::size_t l = 0; n8 + l < n; ++l) lanes[l] += a[n8 + l];
  return combine8(lanes);
}

inline void sum_dot(const double* a, const double* y, std::size_t n,
                    double& sum_out, double& dot_out) {
  __m128d s0 = _mm_setzero_pd(), s1 = _mm_setzero_pd();
  __m128d s2 = _mm_setzero_pd(), s3 = _mm_setzero_pd();
  __m128d d0 = _mm_setzero_pd(), d1 = _mm_setzero_pd();
  __m128d d2 = _mm_setzero_pd(), d3 = _mm_setzero_pd();
  const std::size_t n8 = n & ~(kAccumLanes - 1);
  for (std::size_t i = 0; i < n8; i += kAccumLanes) {
    const __m128d a0 = _mm_loadu_pd(a + i);
    const __m128d a1 = _mm_loadu_pd(a + i + 2);
    const __m128d a2 = _mm_loadu_pd(a + i + 4);
    const __m128d a3 = _mm_loadu_pd(a + i + 6);
    s0 = _mm_add_pd(s0, a0);
    s1 = _mm_add_pd(s1, a1);
    s2 = _mm_add_pd(s2, a2);
    s3 = _mm_add_pd(s3, a3);
    d0 = _mm_add_pd(d0, _mm_mul_pd(a0, _mm_loadu_pd(y + i)));
    d1 = _mm_add_pd(d1, _mm_mul_pd(a1, _mm_loadu_pd(y + i + 2)));
    d2 = _mm_add_pd(d2, _mm_mul_pd(a2, _mm_loadu_pd(y + i + 4)));
    d3 = _mm_add_pd(d3, _mm_mul_pd(a3, _mm_loadu_pd(y + i + 6)));
  }
  double s[kAccumLanes], d[kAccumLanes];
  _mm_storeu_pd(s, s0);
  _mm_storeu_pd(s + 2, s1);
  _mm_storeu_pd(s + 4, s2);
  _mm_storeu_pd(s + 6, s3);
  _mm_storeu_pd(d, d0);
  _mm_storeu_pd(d + 2, d1);
  _mm_storeu_pd(d + 4, d2);
  _mm_storeu_pd(d + 6, d3);
  for (std::size_t l = 0; n8 + l < n; ++l) {
    s[l] += a[n8 + l];
    d[l] += a[n8 + l] * y[n8 + l];
  }
  sum_out = combine8(s);
  dot_out = combine8(d);
}

#else

inline constexpr const char* kBackend = "scalar";
inline constexpr std::size_t kLaneWidth = 1;

using scalar::dot;
using scalar::sum;
using scalar::sum_dot;

#endif

}  // namespace gppm::simd
