// Error handling primitives shared by all gppm libraries.
//
// The library throws `gppm::Error` (a std::runtime_error subclass) for
// violated preconditions and unrecoverable states.  GPPM_CHECK is used at
// public API boundaries; internal invariants use GPPM_ASSERT, which compiles
// to the same check (this is a research library — we never silently continue
// from a broken invariant).
#pragma once

#include <stdexcept>
#include <string>

namespace gppm {

/// Exception type thrown by every gppm component.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A failure that is expected to go away on retry: a dropped instrument
/// sample, a timed-out NVML query, a P-state transition the board refused
/// once.  Retry loops (common/retry.hpp) retry exactly this type.
class TransientError : public Error {
 public:
  explicit TransientError(const std::string& what) : Error(what) {}
};

/// A failure that will not go away on retry (bad configuration, a lost
/// device).  Retry loops propagate it immediately.
class PermanentError : public Error {
 public:
  explicit PermanentError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void raise(const char* expr, const char* file, int line,
                               const std::string& msg) {
  throw Error(std::string(file) + ":" + std::to_string(line) + ": check `" +
              expr + "` failed" + (msg.empty() ? "" : ": " + msg));
}
}  // namespace detail

}  // namespace gppm

/// Precondition check: throws gppm::Error with location info on failure.
#define GPPM_CHECK(expr, msg)                                   \
  do {                                                          \
    if (!(expr)) ::gppm::detail::raise(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

/// Internal invariant check (same behaviour as GPPM_CHECK).
#define GPPM_ASSERT(expr) GPPM_CHECK(expr, "internal invariant")
