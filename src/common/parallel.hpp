// Shared compute thread pool and parallel_for.
//
// The model-fitting pipeline fans out work that is embarrassingly parallel
// and CPU-bound: candidate scoring inside a forward-selection step,
// cross-validation folds, and independent (board, target, pair) fits in the
// bench drivers.  This pool serves exactly that kind of work; it is distinct
// from the serve request worker pool (src/serve/server.hpp), which owns
// request lifecycles and blocking queues.
//
// Determinism contract: parallel_for runs body(i) for every i in [0, n)
// exactly once, with no ordering guarantee.  Callers keep results
// deterministic by writing each iteration's output into a slot owned by that
// iteration (a preallocated array indexed by i) and reducing serially
// afterwards — every user in this codebase follows that pattern, so results
// are bit-identical to the serial loop regardless of thread count.
#pragma once

#include <cstddef>
#include <functional>

namespace gppm {

/// Worker-thread budget of the shared pool: the GPPM_THREADS environment
/// variable if set (clamped to [1, 256]), else hardware_concurrency, else 1.
/// A budget of 1 makes every parallel_for run serially in the caller.
std::size_t parallel_threads();

/// True when called from inside a shared-pool worker.  Nested parallel_for
/// calls detect this and run serially, so composed parallel code (e.g. a
/// parallel selection step inside a parallel cross-validation fold) cannot
/// deadlock the pool.
bool in_parallel_worker();

/// Run body(i) for every i in [0, n), possibly concurrently on the shared
/// pool; the calling thread participates.  Runs serially when n <
/// min_parallel, when the thread budget is 1, or when already inside a pool
/// worker.  If any body throws, the first exception is rethrown in the
/// caller after all in-flight iterations finish (remaining iterations are
/// abandoned).
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  std::size_t min_parallel = 2);

}  // namespace gppm
