// ASCII table renderer.  Every reproduction bench prints its paper table in
// this format so the output can be compared to the paper side by side.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace gppm {

/// Column-aligned ASCII table with a header row and optional title.
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  /// Optional caption printed above the table.
  void set_title(std::string title) { title_ = std::move(title); }

  /// Append a row; must have the same number of fields as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: key column plus numeric columns.
  void add_row(const std::string& key, const std::vector<double>& values,
               int precision = 2);

  /// Render with box-drawing separators.
  void print(std::ostream& out) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gppm
