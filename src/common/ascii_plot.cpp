#include "common/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/str.hpp"

namespace gppm {

namespace {
constexpr char kGlyphs[] = {'*', 'o', '+', 'x', '#', '@', '%', '&'};

struct Range {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  void include(double v) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  double span() const { return hi - lo; }
};
}  // namespace

void LineChart::add_series(Series s) {
  GPPM_CHECK(s.x.size() == s.y.size(), "series x/y size mismatch");
  GPPM_CHECK(!s.x.empty(), "empty series");
  series_.push_back(std::move(s));
}

void LineChart::print(std::ostream& out, int width, int height) const {
  GPPM_CHECK(width >= 8 && height >= 4, "chart too small");
  if (series_.empty()) {
    out << title_ << " (no data)\n";
    return;
  }

  Range xr, yr;
  for (const auto& s : series_) {
    for (double v : s.x) xr.include(v);
    for (double v : s.y) yr.include(v);
  }
  if (xr.span() <= 0) xr.hi = xr.lo + 1;
  if (yr.span() <= 0) yr.hi = yr.lo + 1;

  std::vector<std::string> grid(height, std::string(width, ' '));
  auto plot = [&](double x, double y, char glyph) {
    int cx = static_cast<int>(std::lround((x - xr.lo) / xr.span() * (width - 1)));
    int cy = static_cast<int>(std::lround((y - yr.lo) / yr.span() * (height - 1)));
    cx = std::clamp(cx, 0, width - 1);
    cy = std::clamp(cy, 0, height - 1);
    grid[height - 1 - cy][cx] = glyph;
  };

  for (std::size_t si = 0; si < series_.size(); ++si) {
    const char glyph = kGlyphs[si % sizeof(kGlyphs)];
    const auto& s = series_[si];
    // Linear interpolation between consecutive points so lines read as lines.
    for (std::size_t i = 0; i + 1 < s.x.size(); ++i) {
      const int steps = width;
      for (int k = 0; k <= steps; ++k) {
        const double t = static_cast<double>(k) / steps;
        plot(s.x[i] + t * (s.x[i + 1] - s.x[i]),
             s.y[i] + t * (s.y[i + 1] - s.y[i]), glyph);
      }
    }
    for (std::size_t i = 0; i < s.x.size(); ++i) plot(s.x[i], s.y[i], glyph);
  }

  out << title_ << "\n";
  const std::string y_hi = format_double(yr.hi, 3);
  const std::string y_lo = format_double(yr.lo, 3);
  const std::size_t margin = std::max(y_hi.size(), y_lo.size());
  for (int r = 0; r < height; ++r) {
    std::string label(margin, ' ');
    if (r == 0) label = pad_left(y_hi, margin);
    if (r == height - 1) label = pad_left(y_lo, margin);
    out << label << " |" << grid[r] << "\n";
  }
  out << std::string(margin, ' ') << " +" << std::string(width, '-') << "\n";
  out << std::string(margin, ' ') << "  " << pad_right(format_double(xr.lo, 0), width - 8)
      << pad_left(format_double(xr.hi, 0), 8) << "\n";
  out << std::string(margin, ' ') << "  x: " << x_label_ << ", y: " << y_label_ << "\n";
  for (std::size_t si = 0; si < series_.size(); ++si) {
    out << std::string(margin, ' ') << "  " << kGlyphs[si % sizeof(kGlyphs)]
        << " = " << series_[si].label << "\n";
  }
}

void BarChart::add_bar(const std::string& label, double value) {
  bars_.push_back({label, value});
}

void BarChart::print(std::ostream& out, int width) const {
  out << title_ << "\n";
  if (bars_.empty()) {
    out << "(no data)\n";
    return;
  }
  double max_v = 0;
  std::size_t label_w = 0;
  for (const auto& b : bars_) {
    max_v = std::max(max_v, std::abs(b.value));
    label_w = std::max(label_w, b.label.size());
  }
  if (max_v <= 0) max_v = 1;
  for (const auto& b : bars_) {
    const int n = static_cast<int>(std::lround(std::abs(b.value) / max_v * width));
    out << pad_right(b.label, label_w) << " |" << std::string(n, '#')
        << ' ' << format_double(b.value, 2) << "\n";
  }
}

void BoxPlot::print(std::ostream& out, int width) const {
  out << title_ << "\n";
  if (boxes_.empty()) {
    out << "(no data)\n";
    return;
  }
  Range r;
  std::size_t label_w = 0;
  for (const auto& b : boxes_) {
    r.include(b.whisker_lo);
    r.include(b.whisker_hi);
    label_w = std::max(label_w, b.label.size());
  }
  if (r.span() <= 0) r.hi = r.lo + 1;

  auto col = [&](double v) {
    return std::clamp(
        static_cast<int>(std::lround((v - r.lo) / r.span() * (width - 1))), 0,
        width - 1);
  };
  for (const auto& b : boxes_) {
    std::string row(width, ' ');
    const int lo = col(b.whisker_lo), q1 = col(b.q1), med = col(b.median),
              q3 = col(b.q3), hi = col(b.whisker_hi);
    for (int c = lo; c <= hi; ++c) row[c] = '-';
    for (int c = q1; c <= q3; ++c) row[c] = '=';
    row[lo] = '|';
    row[hi] = '|';
    if (q1 < static_cast<int>(row.size())) row[q1] = '[';
    if (q3 < static_cast<int>(row.size())) row[q3] = ']';
    row[med] = 'M';
    out << pad_right(b.label, label_w) << " " << row << "  (med "
        << format_double(b.median, 2) << ")\n";
  }
  out << std::string(label_w + 1, ' ') << pad_right(format_double(r.lo, 2), width - 8)
      << pad_left(format_double(r.hi, 2), 8) << "\n";
  out << std::string(label_w + 1, ' ') << "axis: " << axis_label_ << "\n";
}

}  // namespace gppm
