#include "common/shutdown.hpp"

#include <csignal>

#include <atomic>

namespace gppm {

namespace {

std::atomic<bool> g_shutdown{false};

void on_signal(int signo) {
  // Second signal: restore the default disposition and re-raise, so a
  // tool wedged past the cooperative path can still be interrupted.
  if (g_shutdown.exchange(true)) {
    std::signal(signo, SIG_DFL);
    std::raise(signo);
  }
}

}  // namespace

void install_shutdown_handler() {
#if defined(_WIN32)
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
#else
  struct sigaction action = {};
  action.sa_handler = on_signal;
  sigemptyset(&action.sa_mask);
  // No SA_RESTART: blocking reads must return EINTR so loops can see the
  // flag (see the header).
  action.sa_flags = 0;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
#endif
}

bool shutdown_requested() {
  return g_shutdown.load(std::memory_order_relaxed);
}

void reset_shutdown_for_test() {
  g_shutdown.store(false, std::memory_order_relaxed);
}

}  // namespace gppm
