// ASCII chart renderers for the figure-reproduction benches.
//
// The paper's figures are line charts (performance / power efficiency vs
// core frequency, one line per memory frequency), bar charts (efficiency
// improvement per benchmark) and box-and-whisker plots (error
// distributions).  These renderers draw the same shapes in a terminal so a
// bench's output can be compared against the paper figure directly.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace gppm {

/// One line series of an XY chart.
struct Series {
  std::string label;
  std::vector<double> x;
  std::vector<double> y;
};

/// Multi-series scatter/line chart on a character grid.  Each series is
/// drawn with its own glyph; a legend maps glyphs to labels.
class LineChart {
 public:
  LineChart(std::string title, std::string x_label, std::string y_label)
      : title_(std::move(title)),
        x_label_(std::move(x_label)),
        y_label_(std::move(y_label)) {}

  void add_series(Series s);

  /// Render at the given grid size (plot area, excluding axes/labels).
  void print(std::ostream& out, int width = 64, int height = 18) const;

 private:
  std::string title_, x_label_, y_label_;
  std::vector<Series> series_;
};

/// Horizontal bar chart: one labelled bar per item.
class BarChart {
 public:
  explicit BarChart(std::string title) : title_(std::move(title)) {}

  void add_bar(const std::string& label, double value);

  /// Render; bars are scaled to `width` characters at the maximum value.
  void print(std::ostream& out, int width = 50) const;

 private:
  struct Bar {
    std::string label;
    double value;
  };
  std::string title_;
  std::vector<Bar> bars_;
};

/// Five-number summary used by the box plot (matches stats::five_number).
struct BoxStats {
  std::string label;
  double whisker_lo = 0;
  double q1 = 0;
  double median = 0;
  double q3 = 0;
  double whisker_hi = 0;
};

/// Horizontal box-and-whisker plot, one row per box, shared scale.
class BoxPlot {
 public:
  BoxPlot(std::string title, std::string axis_label)
      : title_(std::move(title)), axis_label_(std::move(axis_label)) {}

  void add_box(BoxStats b) { boxes_.push_back(std::move(b)); }

  void print(std::ostream& out, int width = 60) const;

 private:
  std::string title_, axis_label_;
  std::vector<BoxStats> boxes_;
};

}  // namespace gppm
