// Small string helpers used by the table/CSV/plot renderers.
#pragma once

#include <string>
#include <vector>

namespace gppm {

/// Format a double with `precision` digits after the decimal point.
std::string format_double(double v, int precision);

/// Left-pad `s` with spaces to at least `width` characters.
std::string pad_left(const std::string& s, std::size_t width);

/// Right-pad `s` with spaces to at least `width` characters.
std::string pad_right(const std::string& s, std::size_t width);

/// Join strings with a separator.
std::string join(const std::vector<std::string>& parts, const std::string& sep);

/// True if `s` starts with `prefix`.
bool starts_with(const std::string& s, const std::string& prefix);

/// True if `s` contains `needle`.
bool contains(const std::string& s, const std::string& needle);

}  // namespace gppm
