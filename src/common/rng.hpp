// Deterministic random number generation.
//
// Every stochastic component in the library (meter noise, profiler sampling
// artifacts, workload jitter) draws from these generators rather than
// <random> distributions, because libstdc++/libc++ distributions are not
// bit-reproducible across platforms.  The generator is xoshiro256**, seeded
// through splitmix64 as its authors recommend.
#pragma once

#include <cstdint>
#include <string_view>

namespace gppm {

/// splitmix64 step; used for seeding and for cheap hash-like stream splitting.
std::uint64_t splitmix64(std::uint64_t& state);

/// FNV-1a 64-bit string hash; used to derive deterministic per-entity RNG
/// streams (per benchmark, per kernel) that do not depend on call order.
std::uint64_t fnv1a(std::string_view s);

/// xoshiro256** PRNG with helpers for the distributions the library needs.
/// All methods are deterministic given the seed.
class Rng {
 public:
  /// Seeds the four-word state from a single 64-bit seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n).  Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal deviate (Box-Muller, deterministic).
  double normal();

  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Derive an independent child stream; `stream_id` selects the substream.
  /// Children with distinct ids are statistically independent of each other
  /// and of the parent.
  Rng fork(std::uint64_t stream_id) const;

 private:
  std::uint64_t s_[4];
  std::uint64_t seed_;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace gppm
