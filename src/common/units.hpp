// Strongly-typed physical quantities used across the library.
//
// The simulator, power meter and models pass frequencies, voltages, powers,
// energies and durations around constantly; mixing up MHz and Hz (or W and J)
// is the classic bug in this domain.  Each quantity is a thin wrapper around
// a double with explicit factory functions and only the physically meaningful
// operators defined (e.g. Power * Duration = Energy).
#pragma once

#include <compare>

namespace gppm {

/// Clock frequency.  Stored in MHz because every frequency in the paper
/// (TABLE I) is specified in MHz.
class Frequency {
 public:
  constexpr Frequency() = default;
  static constexpr Frequency mhz(double v) { return Frequency(v); }
  static constexpr Frequency ghz(double v) { return Frequency(v * 1e3); }
  static constexpr Frequency hz(double v) { return Frequency(v / 1e6); }

  constexpr double as_mhz() const { return mhz_; }
  constexpr double as_ghz() const { return mhz_ / 1e3; }
  constexpr double as_hz() const { return mhz_ * 1e6; }

  constexpr auto operator<=>(const Frequency&) const = default;
  constexpr Frequency operator*(double s) const { return Frequency(mhz_ * s); }
  constexpr double operator/(Frequency o) const { return mhz_ / o.mhz_; }

 private:
  constexpr explicit Frequency(double mhz) : mhz_(mhz) {}
  double mhz_ = 0.0;
};

/// Supply voltage in volts.
class Voltage {
 public:
  constexpr Voltage() = default;
  static constexpr Voltage volts(double v) { return Voltage(v); }
  static constexpr Voltage millivolts(double v) { return Voltage(v / 1e3); }

  constexpr double as_volts() const { return v_; }
  constexpr double squared() const { return v_ * v_; }

  constexpr auto operator<=>(const Voltage&) const = default;

 private:
  constexpr explicit Voltage(double v) : v_(v) {}
  double v_ = 0.0;
};

class Energy;

/// Time duration in seconds.
class Duration {
 public:
  constexpr Duration() = default;
  static constexpr Duration seconds(double v) { return Duration(v); }
  static constexpr Duration milliseconds(double v) { return Duration(v / 1e3); }
  static constexpr Duration microseconds(double v) { return Duration(v / 1e6); }

  constexpr double as_seconds() const { return s_; }
  constexpr double as_milliseconds() const { return s_ * 1e3; }

  constexpr auto operator<=>(const Duration&) const = default;
  constexpr Duration operator+(Duration o) const { return Duration(s_ + o.s_); }
  constexpr Duration operator-(Duration o) const { return Duration(s_ - o.s_); }
  constexpr Duration operator*(double k) const { return Duration(s_ * k); }
  constexpr double operator/(Duration o) const { return s_ / o.s_; }
  constexpr Duration& operator+=(Duration o) { s_ += o.s_; return *this; }

 private:
  constexpr explicit Duration(double s) : s_(s) {}
  double s_ = 0.0;
};

/// Electrical power in watts.
class Power {
 public:
  constexpr Power() = default;
  static constexpr Power watts(double v) { return Power(v); }

  constexpr double as_watts() const { return w_; }

  constexpr auto operator<=>(const Power&) const = default;
  constexpr Power operator+(Power o) const { return Power(w_ + o.w_); }
  constexpr Power operator-(Power o) const { return Power(w_ - o.w_); }
  constexpr Power operator*(double k) const { return Power(w_ * k); }
  constexpr Power& operator+=(Power o) { w_ += o.w_; return *this; }
  constexpr Energy operator*(Duration d) const;

 private:
  constexpr explicit Power(double w) : w_(w) {}
  double w_ = 0.0;
};

/// Energy in joules.
class Energy {
 public:
  constexpr Energy() = default;
  static constexpr Energy joules(double v) { return Energy(v); }

  constexpr double as_joules() const { return j_; }

  constexpr auto operator<=>(const Energy&) const = default;
  constexpr Energy operator+(Energy o) const { return Energy(j_ + o.j_); }
  constexpr Energy& operator+=(Energy o) { j_ += o.j_; return *this; }
  constexpr double operator/(Energy o) const { return j_ / o.j_; }
  /// Average power over a duration.
  constexpr Power operator/(Duration d) const {
    return Power::watts(j_ / d.as_seconds());
  }

 private:
  constexpr explicit Energy(double j) : j_(j) {}
  double j_ = 0.0;
};

constexpr Energy Power::operator*(Duration d) const {
  return Energy::joules(w_ * d.as_seconds());
}

}  // namespace gppm
