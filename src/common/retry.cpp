#include "common/retry.hpp"

#include <algorithm>
#include <cmath>

namespace gppm {

Duration backoff_delay(const RetryPolicy& policy, int retry, Rng& rng) {
  const double initial = std::max(0.0, policy.initial_backoff.as_seconds());
  const double cap = std::max(0.0, policy.max_backoff.as_seconds());
  const double multiplier = std::max(1.0, policy.multiplier);

  // Saturate BEFORE exponentiating.  The naive initial * multiplier^retry
  // overflows double range around retry ~ 1000 (multiplier 2): the power
  // becomes inf, and with initial == 0 the product is 0 * inf == NaN, which
  // then slips through std::min/std::max comparisons and collapses the
  // delay to zero — a hot retry loop exactly when the operation has already
  // failed many times.  Once multiplier^retry would cross cap/initial the
  // exact magnitude is irrelevant, so compare in log space and clamp first.
  double capped = cap;
  if (initial <= 0.0) {
    capped = 0.0;  // a zero initial backoff means "no pacing" at every step
  } else if (initial >= cap || multiplier <= 1.0) {
    capped = std::min(initial, cap);
  } else {
    // retry doublings fit below the cap iff retry < log_m(cap / initial).
    const double saturation_step =
        std::log(cap / initial) / std::log(multiplier);
    const double step = static_cast<double>(std::max(0, retry));
    if (step < saturation_step) {
      capped = std::min(initial * std::pow(multiplier, step), cap);
    }
  }

  // Jitter scales the delay by a factor from [1 - jf, 1 + jf].  A fraction
  // >= 1 would let the draw go negative (clamped to a zero delay — no
  // pacing at all), so the fraction itself saturates below 1: even a
  // misconfigured policy keeps at least 5% of its nominal delay.
  const double jf = std::clamp(policy.jitter_fraction, 0.0, 0.95);
  const double jitter =
      policy.jitter_fraction > 0.0 ? rng.uniform(1.0 - jf, 1.0 + jf) : 1.0;
  return Duration::seconds(std::max(0.0, capped * jitter));
}

}  // namespace gppm
