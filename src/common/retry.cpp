#include "common/retry.hpp"

#include <algorithm>
#include <cmath>

namespace gppm {

Duration backoff_delay(const RetryPolicy& policy, int retry, Rng& rng) {
  const double base = policy.initial_backoff.as_seconds() *
                      std::pow(std::max(1.0, policy.multiplier),
                               static_cast<double>(std::max(0, retry)));
  const double capped = std::min(base, policy.max_backoff.as_seconds());
  const double jitter =
      policy.jitter_fraction > 0.0
          ? rng.uniform(1.0 - policy.jitter_fraction,
                        1.0 + policy.jitter_fraction)
          : 1.0;
  return Duration::seconds(std::max(0.0, capped * jitter));
}

}  // namespace gppm
