#include "common/str.hpp"

#include <cstdio>

namespace gppm {

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string pad_left(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

std::string join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

bool contains(const std::string& s, const std::string& needle) {
  return s.find(needle) != std::string::npos;
}

}  // namespace gppm
