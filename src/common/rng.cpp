#include "common/rng.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace gppm {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  GPPM_CHECK(lo <= hi, "invalid uniform range");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  GPPM_CHECK(n > 0, "uniform_index requires n > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = n * (~0ull / n);
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return v % n;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 is kept away from 0 so log() is finite.
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  GPPM_CHECK(stddev >= 0.0, "negative stddev");
  return mean + stddev * normal();
}

Rng Rng::fork(std::uint64_t stream_id) const {
  // Mix the parent's seed with the stream id through two splitmix rounds;
  // the parent's iteration state intentionally does not matter, so that a
  // fork with a given id is stable no matter how much the parent was used.
  std::uint64_t mix = seed_ ^ (0xd1b54a32d192ed03ull * (stream_id + 1));
  (void)splitmix64(mix);
  return Rng(splitmix64(mix));
}

}  // namespace gppm
