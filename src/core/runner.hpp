// The measurement pipeline: executes a benchmark on a simulated board at an
// operating point and measures it the way the paper does — wall power
// through the WT1600, time through a host timer, with the paper's 500 ms
// kernel-repetition rule applied so every run yields at least 10 power
// samples.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "common/retry.hpp"
#include "common/units.hpp"
#include "core/quality.hpp"
#include "fault/injector.hpp"
#include "gpusim/engine.hpp"
#include "gpusim/system.hpp"
#include "powermeter/wt1600.hpp"
#include "workload/benchmark.hpp"

namespace gppm::core {

/// One measured run.
struct Measurement {
  sim::FrequencyPair pair;
  Duration exec_time;  ///< host-timer reading for the whole run
  Power avg_power;     ///< meter average over the run
  Energy energy;       ///< meter-accumulated energy

  /// The paper's power-efficiency metric: reciprocal of energy.
  double power_efficiency() const { return 1.0 / energy.as_joules(); }
  /// Performance metric: reciprocal of execution time.
  double performance() const { return 1.0 / exec_time.as_seconds(); }
};

/// Runner options.
struct RunnerOptions {
  std::uint64_t seed = 42;
  sim::HostSpec host = sim::default_host();
  meter::MeterConfig meter;
  /// Minimum run length before measuring; shorter runs get their kernels
  /// repeated (paper Section II-D: 500 ms at 50 ms sampling = 10 samples).
  Duration min_run_length = Duration::milliseconds(500.0);
  /// Fault injection for the checked measurement path (non-owning; nullptr
  /// = healthy instruments).  measure() ignores it — the fault-free paper
  /// pipeline stays byte-identical.
  fault::FaultInjector* injector = nullptr;
  /// Retry discipline for transient faults in measure_checked().
  RetryPolicy retry;
  /// Sample validation applied by measure_checked().
  ValidationOptions validation;
};

/// A (benchmark, pair) cell of a resilient sweep: the measurement when one
/// was obtained, and the quality accounting either way.  A cell with no
/// measurement is *missing* — the sweep degrades gracefully instead of
/// aborting.
struct MeasuredCell {
  std::optional<Measurement> measurement;
  QualityReport quality;

  bool covered() const { return measurement.has_value(); }
};

/// Executes and measures benchmark runs on one board.
class MeasurementRunner {
 public:
  explicit MeasurementRunner(sim::GpuModel model, RunnerOptions options = {});

  /// Measure a benchmark at a size and operating point.  The kernel
  /// repetition factor that enforces min_run_length is decided once per
  /// (benchmark, size) at the default pair and reused for every pair, so
  /// energies stay comparable across the sweep.
  Measurement measure(const workload::BenchmarkDef& benchmark,
                      std::size_t size_index, sim::FrequencyPair pair);

  /// Measure an explicit run profile (no repetition-factor caching).
  Measurement measure_profile(const sim::RunProfile& profile,
                              sim::FrequencyPair pair);

  /// The hardened measurement path: measure under the options' fault
  /// injector with bounded retries (exponential backoff, deterministic
  /// jitter, retry budget), sample validation (minimum count, MAD spike
  /// rejection) and automatic re-measurement of invalid runs.  Never
  /// throws for instrument faults — a permanently failed cell comes back
  /// missing, with the reason in its QualityReport.  The meter noise is
  /// keyed on the run identity (not on global call order), so a fault-free
  /// attempt reproduces the fault-free pipeline's samples exactly.
  MeasuredCell measure_checked(const workload::BenchmarkDef& benchmark,
                               std::size_t size_index, sim::FrequencyPair pair);

  /// measure_checked for an explicit profile.
  MeasuredCell measure_profile_checked(const sim::RunProfile& profile,
                                       sim::FrequencyPair pair);

  /// The run profile measure() actually executes: the benchmark's profile
  /// with the 500 ms repetition factor applied.  Profiling and measuring
  /// must see the same run for the counter totals to match the measured
  /// execution time.
  sim::RunProfile prepared_profile(const workload::BenchmarkDef& benchmark,
                                   std::size_t size_index);

  /// Board access for profiling at a chosen operating point.
  sim::Gpu& gpu() { return gpu_; }
  const RunnerOptions& options() const { return options_; }

 private:
  /// Wall-power timeline of a run execution (host + GPU through the PSU).
  std::vector<meter::TimelineSegment> wall_timeline(
      const sim::RunExecution& exec) const;

  double repetition_factor(const workload::BenchmarkDef& benchmark,
                           std::size_t size_index);

  /// Deterministic identity of a (profile, pair) run on this board; keys
  /// the host-timer noise and the checked path's meter stream.
  std::uint64_t run_identity(const sim::RunProfile& profile,
                             sim::FrequencyPair pair) const;

  /// Assemble the Measurement summary from an executed run and the
  /// (validated) meter output.
  Measurement summarize(const sim::RunProfile& profile, sim::FrequencyPair pair,
                        const sim::RunExecution& exec,
                        const meter::Measurement& m) const;

  sim::Gpu gpu_;
  RunnerOptions options_;
  meter::WT1600 meter_;
  std::map<std::string, double> repetition_cache_;
};

}  // namespace gppm::core
