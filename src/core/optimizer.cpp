#include "core/optimizer.hpp"

#include <limits>

#include "common/error.hpp"
#include "dvfs/combos.hpp"

namespace gppm::core {

namespace {
void check_models(const UnifiedModel& power_model,
                  const UnifiedModel& perf_model) {
  GPPM_CHECK(power_model.target() == TargetKind::Power,
             "first model must target power");
  GPPM_CHECK(perf_model.target() == TargetKind::ExecTime,
             "second model must target exectime");
  GPPM_CHECK(power_model.gpu() == perf_model.gpu(),
             "models fitted for different boards");
}
}  // namespace

std::vector<PairPrediction> predict_all_pairs(
    const UnifiedModel& power_model, const UnifiedModel& perf_model,
    const profiler::ProfileResult& counters) {
  check_models(power_model, perf_model);
  std::vector<PairPrediction> out;
  for (sim::FrequencyPair pair : dvfs::configurable_pairs(power_model.gpu())) {
    PairPrediction p;
    p.pair = pair;
    p.predicted_power_watts = power_model.predict(counters, pair);
    p.predicted_time_seconds = perf_model.predict(counters, pair);
    // Linear models can extrapolate into non-physical territory for
    // workloads far from the training distribution; clamp to small
    // positive values so downstream energy ranking stays defined.
    p.predicted_power_watts = std::max(1.0, p.predicted_power_watts);
    p.predicted_time_seconds = std::max(1e-3, p.predicted_time_seconds);
    p.predicted_energy_joules =
        p.predicted_power_watts * p.predicted_time_seconds;
    out.push_back(p);
  }
  return out;
}

sim::FrequencyPair predict_min_energy_pair(
    const UnifiedModel& power_model, const UnifiedModel& perf_model,
    const profiler::ProfileResult& counters) {
  const auto predictions = predict_all_pairs(power_model, perf_model, counters);
  GPPM_CHECK(!predictions.empty(), "no configurable pairs");
  const PairPrediction* best = &predictions.front();
  for (const PairPrediction& p : predictions) {
    if (p.predicted_energy_joules < best->predicted_energy_joules) best = &p;
  }
  return best->pair;
}

sim::FrequencyPair fastest_pair_under_cap(
    const UnifiedModel& power_model, const UnifiedModel& perf_model,
    const profiler::ProfileResult& counters, Power cap) {
  const auto predictions = predict_all_pairs(power_model, perf_model, counters);
  const PairPrediction* best = nullptr;
  for (const PairPrediction& p : predictions) {
    if (p.predicted_power_watts > cap.as_watts()) continue;
    if (!best || p.predicted_time_seconds < best->predicted_time_seconds) {
      best = &p;
    }
  }
  GPPM_CHECK(best != nullptr, "no configurable pair satisfies the power cap");
  return best->pair;
}

}  // namespace gppm::core
