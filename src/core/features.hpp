// Feature construction for the unified models (paper Eqs. 1 and 2).
//
// Every hardware counter is classified core-event or memory-event; its
// value enters the power model multiplied by the matching domain frequency
// (faster clock => more energy per event) and the performance model divided
// by it (faster clock => shorter latency per event).  Per-second counter
// readings feed the power model, run totals feed the performance model —
// exactly the paper's construction, which is what lets a single model cover
// every frequency pair.
#pragma once

#include <string>
#include <vector>

#include "core/dataset.hpp"
#include "linalg/matrix.hpp"

namespace gppm::core {

/// Which dependent variable a table/model targets.
enum class TargetKind { Power, ExecTime };

std::string to_string(TargetKind t);

/// How operating-point information enters the power features.
///
/// The paper's Eq. 1 multiplies each counter by the domain *frequency* only
/// (FrequencyOnly).  Since dynamic power actually follows C V^2 f and the
/// boards scale voltage with frequency, a linear-in-f model systematically
/// under-predicts the power drop of low P-states — which is why a
/// model-driven DVFS governor built on the paper's form keeps choosing the
/// default pair.  VoltageSquaredFrequency scales by V^2 f instead (library
/// extension; see bench_ablation_voltage_scaling).  Time features are
/// unaffected: event latency depends on frequency, not voltage.
enum class FeatureScaling { FrequencyOnly, VoltageSquaredFrequency };

std::string to_string(FeatureScaling s);

/// Provenance of one regression row.
struct RowInfo {
  std::size_t sample_index;
  sim::FrequencyPair pair;
};

/// A fully-materialized regression problem.
struct RegressionTable {
  linalg::Matrix features;  ///< row per (sample, pair); column per counter
  linalg::Vector target;    ///< watts (Power) or seconds (ExecTime)
  std::vector<RowInfo> rows;
  std::vector<std::string> feature_names;  ///< catalog order
};

/// The Eq. 1 / Eq. 2 feature value of one counter reading at a pair.
double feature_value(const profiler::CounterReading& reading,
                     sim::FrequencyPair pair, const sim::DeviceSpec& spec,
                     TargetKind target,
                     FeatureScaling scaling = FeatureScaling::FrequencyOnly);

/// Names of the two baseline pseudo-counters (see build_table).
inline constexpr const char* kBaselineCoreFeature = "baseline_core_domain";
inline constexpr const char* kBaselineMemFeature = "baseline_mem_domain";

/// Name prefix of mix-level pseudo-counters (`gppm::mix` appends them to a
/// member's profile past the catalog: co-runner bandwidth pressure as a
/// memory-event reading, SM-share loss as a core-event reading — see
/// docs/MIX.md).  Model fitting accepts readings under this prefix after
/// the catalog counters; everything else there is rejected.
inline constexpr const char* kMixFeaturePrefix = "mix.";

/// True if `name` is a mix-level pseudo-feature.
bool is_mix_feature(const std::string& name);

/// A pseudo-reading with unit rate/total for a domain's baseline feature.
profiler::CounterReading baseline_reading(profiler::EventClass klass);

/// Build the regression table from a corpus.  `pair_filter` (if non-null)
/// restricts rows to one operating point — the per-pair baseline models of
/// Figs. 9/10 are trained on such restricted tables.
///
/// `include_baseline_terms` (library extension) appends two pseudo-counters
/// with unit rate — one core-event, one memory-event.  Their power features
/// reduce to the domain frequency (or V^2 f) itself, letting the model
/// capture *activity-independent* power that scales with the operating
/// point (clock trees, the GDDR5 interface).  The paper's Eq. 1 lacks such
/// terms, which is the second reason its form cannot value down-clocking
/// correctly (see bench_ablation_voltage_scaling).
RegressionTable build_table(const Dataset& dataset, TargetKind target,
                            const sim::FrequencyPair* pair_filter = nullptr,
                            FeatureScaling scaling = FeatureScaling::FrequencyOnly,
                            bool include_baseline_terms = false);

}  // namespace gppm::core
