// Sample validation and per-run quality accounting for the measurement
// pipeline.
//
// The paper's rig gives every run at least 10 wall-power samples (the
// 500 ms repetition rule); a hardened harness must also notice when the
// acquisition channel thinned or corrupted that stream.  Validation
// applies two classic instrument checks:
//
//   * minimum sample count — a run whose channel dropped too many samples
//     carries too little signal and must be re-measured;
//   * MAD-based spike rejection — readings further than `mad_threshold`
//     robust standard deviations from a running median (scaled MAD over the
//     local residuals) are glitches, not physics; they are rejected.
//
// Rejected and dropped slots are then *imputed* by linear interpolation
// between accepted neighbours on the meter's sampling grid rather than
// deleted: a wall-power trace is bimodal (kernel vs host plateaus), so
// deleting samples shifts the plateau mix and biases the mean, while
// interpolation keeps the cleaned summaries within noise of the unfaulted
// stream — the property the chaos suite's divergence accounting relies on.
//
// Every measured (benchmark, pair) cell carries a QualityReport: attempts,
// faults retried through, samples rejected, virtual backoff spent, and —
// for permanently failed cells — the reason the cell is missing.  Reports
// render byte-stably so chaos runs can be diffed for reproducibility.
#pragma once

#include <cstddef>
#include <string>

#include "common/units.hpp"
#include "powermeter/wt1600.hpp"

namespace gppm::core {

/// Validation thresholds applied to every measured run.
struct ValidationOptions {
  /// Runs with fewer accepted samples than this are invalid (the paper's
  /// repetition rule targets >= 10 raw samples; allow a small loss).
  std::size_t min_samples = 8;
  /// Reject samples deviating from the running median by more than
  /// mad_threshold * scaled MAD of the local residuals.
  double mad_threshold = 8.0;
  /// Invalid when more than this fraction of the sampling grid had to be
  /// imputed (dropped by the channel or spike-rejected).
  double max_rejected_fraction = 0.25;
  /// The meter's sampling grid; zero means infer it from the measurement
  /// (duration / sample count of an unthinned stream).
  Duration sampling_period;
};

/// Per-cell measurement quality: what it took to get a valid run, or why
/// there is none.
struct QualityReport {
  int attempts = 0;                   ///< measurement attempts performed
  int transient_faults = 0;           ///< faults absorbed by retries
  std::size_t samples_delivered = 0;  ///< samples in the accepted run
  std::size_t samples_rejected = 0;   ///< spike-rejected in the accepted run
  std::size_t samples_imputed = 0;    ///< grid slots filled by interpolation
  Duration backoff;                   ///< virtual retry backoff spent
  bool valid = false;
  std::string failure;                ///< empty when valid

  /// Byte-stable one-line rendering (the chaos determinism test compares
  /// these across runs).
  std::string to_string() const;
};

/// Outcome of validating one delivered measurement.
struct ValidatedRun {
  meter::Measurement cleaned;   ///< full grid, rejected/dropped slots imputed
  std::size_t rejected = 0;     ///< samples rejected as spikes
  std::size_t imputed = 0;      ///< grid slots filled by interpolation
  bool ok = false;
  std::string reason;           ///< set when !ok
};

/// Validate a delivered measurement: spike-reject against a running median,
/// enforce the minimum-count and imputed-fraction rules, rebuild the full
/// sampling grid with rejected/dropped slots linearly interpolated from
/// accepted neighbours, and recompute the summaries over the rebuilt grid.
/// An untouched stream is returned bit-identical.
ValidatedRun validate_run(const meter::Measurement& m,
                          const ValidationOptions& options);

}  // namespace gppm::core
