// Analytical performance baseline (Hong & Kim style).
//
// The paper's related work (Section V) contrasts its statistical approach
// with the analytical models of Hong & Kim [7, 8]: models that compute
// execution time from instruction/memory counts and a handful of
// architecture parameters which must be hand-tuned per board — the authors
// report that re-tuning them "was very time-consuming" even between two
// Tesla-generation GPUs.
//
// This module implements a bottleneck-form analytical model so that claim
// can be tested: predicted time is the maximum of a compute term (warp
// instructions at the core clock) and a memory term (DRAM traffic at the
// memory clock), plus launch and fixed overheads.  Its four coefficients
// play the role of Hong & Kim's tuned parameters:
//
//   t = max(alpha_c * insts / f_core, alpha_m * bytes / f_mem)
//       + beta * launches + gamma
//
// `calibrate` fits the coefficients to one board's corpus (the per-board
// tuning step); `bench_baseline_analytical` then scores every
// calibrate-on-X / evaluate-on-Y combination to reproduce the portability
// argument.
#pragma once

#include "core/dataset.hpp"

namespace gppm::core {

/// The tuned architecture parameters of the analytical model.
struct AnalyticalParams {
  double alpha_compute = 1.0;   ///< seconds per (warp-inst / GHz)
  double alpha_memory = 1.0;    ///< seconds per (DRAM byte / GHz)
  double beta_launch = 0.0;     ///< seconds per kernel launch
  double gamma_fixed = 0.0;     ///< fixed host/driver time, seconds
};

/// Counter-derived workload quantities the analytical model consumes.
/// Extraction is architecture-specific (each generation exposes different
/// counters), mirroring the porting effort of real analytical models.
struct AnalyticalInputs {
  double warp_instructions = 0.0;  ///< total warp instructions executed
  double dram_bytes = 0.0;         ///< total DRAM traffic, bytes
  double launches = 0.0;           ///< kernel launches (est. from blocks)
};

/// Derive the model inputs from a profiled run on the given architecture.
AnalyticalInputs analytical_inputs(const profiler::ProfileResult& counters,
                                   sim::Architecture arch);

/// The fitted analytical model for one board.
class AnalyticalPerfModel {
 public:
  /// Tune the parameters on a corpus (alternating bottleneck assignment +
  /// least squares; deterministic).  This is the "expert tuning" step the
  /// paper criticizes — it needs the full measured corpus of the board.
  static AnalyticalPerfModel calibrate(const Dataset& dataset);

  /// Predict execution time in seconds at an operating point.
  double predict_seconds(const profiler::ProfileResult& counters,
                         sim::FrequencyPair pair) const;

  /// Re-target the tuned parameters to a different board without
  /// recalibration (the portability experiment): keeps the coefficients,
  /// swaps the clock tables and counter extraction.
  AnalyticalPerfModel transferred_to(sim::GpuModel other) const;

  const AnalyticalParams& params() const { return params_; }
  sim::GpuModel gpu() const { return gpu_; }

 private:
  AnalyticalParams params_;
  sim::GpuModel gpu_ = sim::GpuModel::GTX480;
};

}  // namespace gppm::core
