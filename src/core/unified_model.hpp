// The paper's unified statistical power and performance models
// (Section IV): multiple linear regression over frequency-scaled counter
// features, with variables chosen by forward selection maximizing adjusted
// R^2 (at most 10 variables by default; Figs. 7/8 sweep 5-20).
#pragma once

#include <string>
#include <vector>

#include "core/features.hpp"
#include "stats/forward_selection.hpp"

namespace gppm::core {

/// Fitting options.
struct ModelOptions {
  std::size_t max_variables = 10;
  /// Power-feature scaling.  FrequencyOnly is the paper's Eq. 1; the
  /// voltage-aware variant is the library's extension (see FeatureScaling).
  FeatureScaling scaling = FeatureScaling::FrequencyOnly;
  /// Offer the per-domain baseline pseudo-features to forward selection
  /// (library extension; see build_table).
  bool include_baseline_terms = false;
  /// Selection engine (results are identical; see stats::SelectionEngine).
  stats::SelectionEngine engine = stats::SelectionEngine::IncrementalGram;
  /// Fan candidate scoring out over the shared compute pool.
  bool parallel = false;
  /// If non-empty, forward selection may only pick features whose name is
  /// in this list (others are zeroed out of the design).  Used to fit a
  /// family on a proven basis — e.g. the mix families restrict candidates
  /// to the solo family's selections plus the mix pseudo-features, which
  /// keeps small interference corpora from chasing noise counters.
  std::vector<std::string> candidate_features;
};

/// One selected explanatory variable of a fitted model.
struct SelectedVariable {
  std::string counter;
  profiler::EventClass klass;
  double coefficient = 0.0;
  /// Adjusted R^2 right after this variable was added (its marginal
  /// contribution is the delta to the previous entry) — the quantity behind
  /// the Fig. 11 influence breakdown.
  double cumulative_adjusted_r2 = 0.0;
};

/// A fitted unified model for one board and one target.
class UnifiedModel {
 public:
  /// Fit on a corpus.  `pair_filter`, if given, restricts training rows to
  /// one operating point (the per-pair baseline of Figs. 9/10).
  static UnifiedModel fit(const Dataset& dataset, TargetKind target,
                          const ModelOptions& options = {},
                          const sim::FrequencyPair* pair_filter = nullptr);

  /// Predict the target (watts or seconds) for a profiled workload at any
  /// operating point of the board.
  double predict(const profiler::ProfileResult& counters,
                 sim::FrequencyPair pair) const;

  TargetKind target() const { return target_; }
  FeatureScaling scaling() const { return scaling_; }
  sim::GpuModel gpu() const { return gpu_; }
  double adjusted_r2() const { return adjusted_r2_; }
  double intercept() const { return intercept_; }
  const std::vector<SelectedVariable>& variables() const { return variables_; }

  /// Raw constituents of a fitted model, for serialization round-trips.
  struct Parts {
    TargetKind target = TargetKind::Power;
    FeatureScaling scaling = FeatureScaling::FrequencyOnly;
    sim::GpuModel gpu = sim::GpuModel::GTX480;
    double intercept = 0.0;
    double adjusted_r2 = 0.0;
    std::vector<SelectedVariable> variables;
    std::vector<std::size_t> counter_indices;  ///< parallel to variables
  };
  Parts parts() const;
  /// Reassemble a model from parts; validates variable/index consistency
  /// against the board's counter catalog.
  static UnifiedModel from_parts(Parts parts);

 private:
  TargetKind target_ = TargetKind::Power;
  FeatureScaling scaling_ = FeatureScaling::FrequencyOnly;
  sim::GpuModel gpu_ = sim::GpuModel::GTX480;
  double intercept_ = 0.0;
  double adjusted_r2_ = 0.0;
  std::vector<SelectedVariable> variables_;
  /// Catalog indices of the selected counters, for fast prediction.
  std::vector<std::size_t> counter_indices_;

  friend class ModelFamily;
};

/// Every prefix model of one forward-selection run.
///
/// Greedy selection is prefix-consistent: the run capped at k variables is
/// exactly the first k steps of the run capped at K >= k.  Fitting a family
/// once at the largest cap therefore yields, for free, the model every
/// smaller cap would produce — prefix k is bit-identical to a direct
/// UnifiedModel::fit with max_variables = k.  The Fig. 7/8 nvars sweeps
/// (5/10/15/20 variables) read one fit per (board, target) this way instead
/// of refitting per variable count.
class ModelFamily {
 public:
  /// Run selection once with options.max_variables as the cap and
  /// materialize every prefix model.
  static ModelFamily fit(const Dataset& dataset, TargetKind target,
                         const ModelOptions& options = {},
                         const sim::FrequencyPair* pair_filter = nullptr);

  /// Number of variables actually selected at the cap.
  std::size_t size() const { return prefixes_.size(); }

  /// The model over the first min(k, size()) selected variables (k >= 1).
  const UnifiedModel& at(std::size_t k) const;

  /// The model at the full cap (== at(size())).
  const UnifiedModel& full() const { return at(prefixes_.size()); }

 private:
  std::vector<UnifiedModel> prefixes_;  ///< index k-1: first k variables
};

}  // namespace gppm::core
