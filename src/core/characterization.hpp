// The paper's Section III characterization: sweep every configurable
// frequency pair for a workload, derive performance / power-efficiency
// curves (Figs. 1-3), the energy-optimal pair (TABLE IV) and the
// improvement over the default pair (Fig. 4).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/runner.hpp"
#include "dvfs/combos.hpp"
#include "fault/plan.hpp"

namespace gppm::core {

/// Measurements at one operating point, with values relative to (H-H).
struct PairResult {
  Measurement measurement;
  double relative_performance = 1.0;     ///< perf / perf(H-H)
  double relative_efficiency = 1.0;      ///< (1/E) / (1/E at H-H)
  /// Measurement quality (meaningful for resilient sweeps; an untouched
  /// default for the plain fault-free path).
  QualityReport quality;
};

/// A (benchmark, pair) cell a resilient sweep could not measure.
struct MissingCell {
  sim::FrequencyPair pair;
  QualityReport quality;  ///< why the cell is missing
};

/// One benchmark x board sweep over all configurable pairs.
struct Sweep {
  std::string benchmark;
  sim::GpuModel gpu;
  std::vector<PairResult> results;  ///< TABLE III row order, covered cells
  /// Cells the resilient sweep recorded as permanently failed (empty for
  /// the plain fault-free sweep, which aborts on the first error instead).
  std::vector<MissingCell> missing;

  /// Result at a pair; throws if the pair was not swept.
  const PairResult& at(sim::FrequencyPair pair) const;

  /// Result at a pair, or nullptr when the cell is missing / not swept.
  const PairResult* find(sim::FrequencyPair pair) const;

  std::size_t total_cells() const { return results.size() + missing.size(); }
  /// Covered fraction; 1.0 for a sweep with no missing cells.
  double coverage() const;

  /// The pair with the best power efficiency (minimum energy).
  sim::FrequencyPair best_pair() const;

  /// Efficiency improvement of the best pair over the default, in percent
  /// (the quantity of Fig. 4; 0 when (H-H) is already optimal).
  double improvement_percent() const;

  /// Performance loss of the best pair relative to (H-H), in percent.
  double performance_loss_percent() const;

  /// The (time, energy) Pareto-optimal operating points: pairs not
  /// dominated by any other pair (strictly worse in neither time nor
  /// energy, strictly better in at least one).  Sorted fastest-first.
  /// Everything a rational DVFS policy would ever pick lies on this front;
  /// the paper's (H-H)-vs-best comparison looks at its two ends.
  std::vector<PairResult> pareto_front() const;
};

/// Measure a benchmark at a size over all configurable pairs of the
/// runner's board.
Sweep sweep_pairs(MeasurementRunner& runner,
                  const workload::BenchmarkDef& benchmark,
                  std::size_t size_index);

/// Resilient sweep through MeasurementRunner::measure_checked: instrument
/// faults are retried, invalid runs re-measured, and a permanently failed
/// (benchmark, pair) cell lands in `missing` instead of aborting the sweep.
/// Relative metrics are computed against (H-H) when that cell is covered
/// and left at 1.0 otherwise.
Sweep sweep_pairs_resilient(MeasurementRunner& runner,
                            const workload::BenchmarkDef& benchmark,
                            std::size_t size_index);

/// TABLE IV row: the best pair of one benchmark on each board.
struct BestPairRow {
  std::string benchmark;
  std::vector<sim::FrequencyPair> best;    ///< one per kAllGpus entry
  std::vector<double> improvement;         ///< percent, same order
};

/// Characterize the whole suite at maximum input size on all four boards.
/// `seed` feeds the runners.  This is the expensive full-suite sweep behind
/// TABLE IV and Fig. 4.
std::vector<BestPairRow> characterize_suite(std::uint64_t seed = 42);

/// One benchmark's outcome in a chaos characterization: the fault-free
/// TABLE IV pick vs. the pick under injected faults, plus that benchmark's
/// cell coverage.
struct ChaosBenchmarkRow {
  std::string benchmark;
  sim::FrequencyPair best_fault_free = sim::kDefaultPair;
  /// True when the chaos sweep covered at least one cell (so it has a best
  /// pair at all).
  bool has_chaos_best = false;
  sim::FrequencyPair best_chaos = sim::kDefaultPair;
  /// True when the fault-free best pair's cell is covered in the chaos
  /// sweep — only then is a best-pair comparison meaningful.
  bool comparable = false;
  /// Comparable and the picks differ: measurement quality, not coverage,
  /// changed TABLE IV.
  bool divergent = false;
  std::size_t covered = 0;
  std::size_t total = 0;
};

/// A (benchmark, pair) cell's quality in a chaos run, in deterministic
/// (suite order x TABLE III pair order) sequence.
struct ChaosCell {
  std::string benchmark;
  sim::FrequencyPair pair;
  bool covered = false;
  QualityReport quality;
};

/// Full-suite characterization under injected faults on one board, paired
/// with the fault-free reference run for divergence accounting.
struct ChaosReport {
  sim::GpuModel gpu = sim::GpuModel::GTX680;
  std::uint64_t seed = 0;
  std::vector<ChaosBenchmarkRow> rows;
  std::vector<ChaosCell> cells;
  std::size_t cells_total = 0;
  std::size_t cells_covered = 0;
  std::uint64_t fault_checks = 0;  ///< injection-site checks performed
  std::uint64_t fault_fires = 0;   ///< faults actually injected

  double coverage() const;
  std::size_t divergent_count() const;
  std::size_t comparable_count() const;

  /// Byte-stable rendering (headline + per-cell QualityReports); two chaos
  /// runs with the same plan and seed must produce identical summaries.
  std::string summary() const;
};

/// Run the suite (truncated to `benchmark_limit` benchmarks when nonzero)
/// at maximum input size on `gpu`, once fault-free and once under `plan`
/// injected with `seed`, and report coverage + divergence.  Both runs go
/// through the checked measurement path, so a chaos cell whose faults all
/// missed reproduces the fault-free measurement bit-for-bit.
ChaosReport chaos_characterization(sim::GpuModel gpu,
                                   const fault::FaultPlan& plan,
                                   std::uint64_t seed = 7,
                                   std::size_t benchmark_limit = 0);

}  // namespace gppm::core
