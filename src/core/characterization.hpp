// The paper's Section III characterization: sweep every configurable
// frequency pair for a workload, derive performance / power-efficiency
// curves (Figs. 1-3), the energy-optimal pair (TABLE IV) and the
// improvement over the default pair (Fig. 4).
#pragma once

#include <string>
#include <vector>

#include "core/runner.hpp"
#include "dvfs/combos.hpp"

namespace gppm::core {

/// Measurements at one operating point, with values relative to (H-H).
struct PairResult {
  Measurement measurement;
  double relative_performance = 1.0;     ///< perf / perf(H-H)
  double relative_efficiency = 1.0;      ///< (1/E) / (1/E at H-H)
};

/// One benchmark x board sweep over all configurable pairs.
struct Sweep {
  std::string benchmark;
  sim::GpuModel gpu;
  std::vector<PairResult> results;  ///< TABLE III row order

  /// Result at a pair; throws if the pair was not swept.
  const PairResult& at(sim::FrequencyPair pair) const;

  /// The pair with the best power efficiency (minimum energy).
  sim::FrequencyPair best_pair() const;

  /// Efficiency improvement of the best pair over the default, in percent
  /// (the quantity of Fig. 4; 0 when (H-H) is already optimal).
  double improvement_percent() const;

  /// Performance loss of the best pair relative to (H-H), in percent.
  double performance_loss_percent() const;

  /// The (time, energy) Pareto-optimal operating points: pairs not
  /// dominated by any other pair (strictly worse in neither time nor
  /// energy, strictly better in at least one).  Sorted fastest-first.
  /// Everything a rational DVFS policy would ever pick lies on this front;
  /// the paper's (H-H)-vs-best comparison looks at its two ends.
  std::vector<PairResult> pareto_front() const;
};

/// Measure a benchmark at a size over all configurable pairs of the
/// runner's board.
Sweep sweep_pairs(MeasurementRunner& runner,
                  const workload::BenchmarkDef& benchmark,
                  std::size_t size_index);

/// TABLE IV row: the best pair of one benchmark on each board.
struct BestPairRow {
  std::string benchmark;
  std::vector<sim::FrequencyPair> best;    ///< one per kAllGpus entry
  std::vector<double> improvement;         ///< percent, same order
};

/// Characterize the whole suite at maximum input size on all four boards.
/// `seed` feeds the runners.  This is the expensive full-suite sweep behind
/// TABLE IV and Fig. 4.
std::vector<BestPairRow> characterize_suite(std::uint64_t seed = 42);

}  // namespace gppm::core
