// Model-driven DVFS decisions — the "dynamic runtime management of power
// and performance" the paper motivates as the use of its unified models.
// Given a workload's counter profile and the fitted power and performance
// models, predict every configurable pair and pick operating points by
// objective (minimum energy, or fastest under a power cap).
#pragma once

#include <vector>

#include "core/unified_model.hpp"

namespace gppm::core {

/// Model predictions for one operating point.
struct PairPrediction {
  sim::FrequencyPair pair;
  double predicted_power_watts = 0.0;
  double predicted_time_seconds = 0.0;
  double predicted_energy_joules = 0.0;  ///< power x time
};

/// Predict all configurable pairs of the models' board.  Both models must
/// be fitted for the same board; power must target Power and perf ExecTime.
std::vector<PairPrediction> predict_all_pairs(
    const UnifiedModel& power_model, const UnifiedModel& perf_model,
    const profiler::ProfileResult& counters);

/// Pair with the minimum predicted energy.
sim::FrequencyPair predict_min_energy_pair(
    const UnifiedModel& power_model, const UnifiedModel& perf_model,
    const profiler::ProfileResult& counters);

/// Fastest pair whose predicted power stays at or under `cap`.
/// Throws gppm::Error if no configurable pair satisfies the cap.
sim::FrequencyPair fastest_pair_under_cap(
    const UnifiedModel& power_model, const UnifiedModel& perf_model,
    const profiler::ProfileResult& counters, Power cap);

}  // namespace gppm::core
