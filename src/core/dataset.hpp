// The modeling corpus builder (paper Section IV-A).
//
// For each profiler-supported benchmark and input size, the builder
// collects the hardware counters once at the default (H-H) pair and
// measures power and execution time at every configurable pair.  Across
// the suite this yields the paper's 114 samples; each sample contributes
// one regression row per configurable pair.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/runner.hpp"
#include "profiler/cuda_profiler.hpp"

namespace gppm::core {

/// One (benchmark, input size) modeling sample.
struct Sample {
  std::string benchmark;
  std::size_t size_index = 0;
  profiler::ProfileResult counters;  ///< collected at (H-H)
  std::vector<Measurement> runs;     ///< one per configurable pair
};

/// The full corpus for one board.
struct Dataset {
  sim::GpuModel model;
  std::vector<Sample> samples;

  /// Total regression rows (sum of per-sample run counts).
  std::size_t row_count() const;
};

/// Options for corpus construction.
struct DatasetOptions {
  std::uint64_t seed = 42;
  RunnerOptions runner;
  double profiler_sampling_sigma = 0.05;
};

/// Build the corpus for one board over the whole benchmark suite,
/// excluding the profiler-unsupported programs.
Dataset build_dataset(sim::GpuModel model, const DatasetOptions& options = {});

}  // namespace gppm::core
