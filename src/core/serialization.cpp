#include "core/serialization.hpp"

#include <cmath>
#include <cstring>
#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "profiler/counters.hpp"

namespace gppm::core {

namespace {

constexpr int kFormatVersion = 1;

std::string gpu_token(sim::GpuModel m) {
  switch (m) {
    case sim::GpuModel::GTX285: return "GTX285";
    case sim::GpuModel::GTX460: return "GTX460";
    case sim::GpuModel::GTX480: return "GTX480";
    case sim::GpuModel::GTX680: return "GTX680";
  }
  throw Error("unknown GPU model");
}

sim::GpuModel parse_gpu(const std::string& token) {
  for (sim::GpuModel m : sim::kAllGpus) {
    if (gpu_token(m) == token) return m;
  }
  throw Error("unknown gpu token: " + token);
}

/// Exact round-trip double formatting: hexfloat assembled from the IEEE-754
/// bits directly.  printf("%a") would produce the same text in the C locale
/// but swaps the radix character under others — a model file must encode
/// identically (and fingerprint identically) no matter the process locale,
/// because fingerprints travel the wire (net/protocol) and gate the cache.
/// Shape matches glibc %a exactly, so files written by earlier versions
/// parse and fingerprint unchanged: lowercase digits, lead digit 1 (0 for
/// zero/subnormals), fraction trimmed of trailing zeros, '.' omitted when
/// the fraction is zero, exponent in decimal with an explicit sign.
std::string fmt(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  const bool negative = (bits >> 63) != 0;
  const int raw_exp = static_cast<int>((bits >> 52) & 0x7ff);
  const std::uint64_t frac = bits & 0xfffffffffffffull;
  GPPM_CHECK(raw_exp != 0x7ff, "cannot serialize a non-finite value");

  std::string out;
  if (negative) out += '-';
  out += "0x";
  int exp = 0;
  if (raw_exp == 0) {
    out += '0';  // zero or subnormal: significand 0.frac
    exp = frac == 0 ? 0 : -1022;
  } else {
    out += '1';  // normal: significand 1.frac
    exp = raw_exp - 1023;
  }
  if (frac != 0) {
    out += '.';
    char digits[13];
    for (int i = 0; i < 13; ++i) {
      digits[i] = "0123456789abcdef"[(frac >> (48 - 4 * i)) & 0xf];
    }
    int n = 13;
    while (n > 0 && digits[n - 1] == '0') --n;
    out.append(digits, static_cast<std::size_t>(n));
  }
  out += 'p';
  out += exp < 0 ? '-' : '+';
  out += std::to_string(exp < 0 ? -exp : exp);
  return out;
}

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

/// Locale-free hexfloat parser, the exact inverse of fmt().  std::stod
/// reads the radix character from the global locale, so a model written on
/// one box could fail to parse on another; this accepts only [+-]0x
/// h[.hhh…]p[+-]dd and reconstructs the value exactly — at most 16
/// significant hex digits fit a uint64_t, and fmt() emits at most 14, so
/// mantissa and ldexp scaling are both exact (no rounding anywhere).
double parse_double(const std::string& token) {
  const char* s = token.c_str();
  const char* const begin = s;
  bool negative = false;
  if (*s == '+' || *s == '-') negative = *s++ == '-';
  GPPM_CHECK(s[0] == '0' && (s[1] == 'x' || s[1] == 'X'),
             "bad number (want hexfloat): " + token);
  s += 2;

  std::uint64_t mantissa = 0;
  int digits = 0, frac_digits = 0;
  bool in_fraction = false;
  while (true) {
    if (*s == '.' && !in_fraction) {
      in_fraction = true;
      ++s;
      continue;
    }
    const int d = hex_digit(*s);
    if (d < 0) break;
    GPPM_CHECK(digits < 16, "too many mantissa digits: " + token);
    mantissa = (mantissa << 4) | static_cast<std::uint64_t>(d);
    ++digits;
    if (in_fraction) ++frac_digits;
    ++s;
  }
  GPPM_CHECK(digits > 0, "bad number: " + token);

  GPPM_CHECK(*s == 'p' || *s == 'P', "bad number (missing exponent): " + token);
  ++s;
  bool exp_negative = false;
  if (*s == '+' || *s == '-') exp_negative = *s++ == '-';
  GPPM_CHECK(*s >= '0' && *s <= '9', "bad exponent: " + token);
  long exponent = 0;
  while (*s >= '0' && *s <= '9') {
    exponent = exponent * 10 + (*s - '0');
    GPPM_CHECK(exponent <= 4096, "exponent out of range: " + token);
    ++s;
  }
  GPPM_CHECK(static_cast<std::size_t>(s - begin) == token.size(),
             "bad number: " + token);
  if (exp_negative) exponent = -exponent;

  const double value = std::ldexp(static_cast<double>(mantissa),
                                  static_cast<int>(exponent) - 4 * frac_digits);
  return negative ? -value : value;
}

std::vector<std::string> split(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) out.push_back(tok);
  return out;
}

}  // namespace

void serialize_model(const UnifiedModel& model, std::ostream& out) {
  const UnifiedModel::Parts p = model.parts();
  out << "gppm-model " << kFormatVersion << "\n";
  out << "gpu " << gpu_token(p.gpu) << "\n";
  out << "target " << (p.target == TargetKind::Power ? "power" : "exectime")
      << "\n";
  out << "scaling "
      << (p.scaling == FeatureScaling::FrequencyOnly ? "f" : "v2f") << "\n";
  out << "intercept " << fmt(p.intercept) << "\n";
  out << "adjusted_r2 " << fmt(p.adjusted_r2) << "\n";
  for (std::size_t i = 0; i < p.variables.size(); ++i) {
    const SelectedVariable& v = p.variables[i];
    out << "var " << v.counter << " "
        << (v.klass == profiler::EventClass::Core ? "core" : "memory") << " "
        << p.counter_indices[i] << " " << fmt(v.coefficient) << " "
        << fmt(v.cumulative_adjusted_r2) << "\n";
  }
  out << "end\n";
}

std::string serialize_model(const UnifiedModel& model) {
  std::ostringstream out;
  serialize_model(model, out);
  return out.str();
}

std::uint64_t model_fingerprint(const UnifiedModel& model) {
  return fnv1a(serialize_model(model));
}

UnifiedModel deserialize_model(std::istream& in) {
  UnifiedModel::Parts p;
  std::string line;
  bool saw_header = false, saw_end = false;

  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> tok = split(line);
    GPPM_CHECK(!tok.empty(), "empty line");
    const std::string& key = tok[0];

    if (!saw_header) {
      GPPM_CHECK(key == "gppm-model" && tok.size() == 2,
                 "missing gppm-model header");
      GPPM_CHECK(std::stoi(tok[1]) == kFormatVersion,
                 "unsupported model format version " + tok[1]);
      saw_header = true;
      continue;
    }
    if (key == "gpu") {
      GPPM_CHECK(tok.size() == 2, "bad gpu line");
      p.gpu = parse_gpu(tok[1]);
    } else if (key == "target") {
      GPPM_CHECK(tok.size() == 2, "bad target line");
      GPPM_CHECK(tok[1] == "power" || tok[1] == "exectime",
                 "bad target: " + tok[1]);
      p.target = tok[1] == "power" ? TargetKind::Power : TargetKind::ExecTime;
    } else if (key == "scaling") {
      GPPM_CHECK(tok.size() == 2, "bad scaling line");
      GPPM_CHECK(tok[1] == "f" || tok[1] == "v2f", "bad scaling: " + tok[1]);
      p.scaling = tok[1] == "f" ? FeatureScaling::FrequencyOnly
                                : FeatureScaling::VoltageSquaredFrequency;
    } else if (key == "intercept") {
      GPPM_CHECK(tok.size() == 2, "bad intercept line");
      p.intercept = parse_double(tok[1]);
    } else if (key == "adjusted_r2") {
      GPPM_CHECK(tok.size() == 2, "bad adjusted_r2 line");
      p.adjusted_r2 = parse_double(tok[1]);
    } else if (key == "var") {
      GPPM_CHECK(tok.size() == 6, "bad var line: " + line);
      SelectedVariable v;
      v.counter = tok[1];
      GPPM_CHECK(tok[2] == "core" || tok[2] == "memory",
                 "bad event class: " + tok[2]);
      v.klass = tok[2] == "core" ? profiler::EventClass::Core
                                 : profiler::EventClass::Memory;
      p.counter_indices.push_back(std::stoul(tok[3]));
      v.coefficient = parse_double(tok[4]);
      v.cumulative_adjusted_r2 = parse_double(tok[5]);
      p.variables.push_back(std::move(v));
    } else if (key == "end") {
      saw_end = true;
      break;
    } else {
      throw Error("unknown model-file field: " + key);
    }
  }
  GPPM_CHECK(saw_header, "not a gppm model file");
  GPPM_CHECK(saw_end, "truncated model file (no 'end')");
  return UnifiedModel::from_parts(std::move(p));
}

UnifiedModel deserialize_model(const std::string& text) {
  std::istringstream in(text);
  return deserialize_model(in);
}

}  // namespace gppm::core
