#include "core/serialization.hpp"

#include <cstdio>
#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "profiler/counters.hpp"

namespace gppm::core {

namespace {

constexpr int kFormatVersion = 1;

std::string gpu_token(sim::GpuModel m) {
  switch (m) {
    case sim::GpuModel::GTX285: return "GTX285";
    case sim::GpuModel::GTX460: return "GTX460";
    case sim::GpuModel::GTX480: return "GTX480";
    case sim::GpuModel::GTX680: return "GTX680";
  }
  throw Error("unknown GPU model");
}

sim::GpuModel parse_gpu(const std::string& token) {
  for (sim::GpuModel m : sim::kAllGpus) {
    if (gpu_token(m) == token) return m;
  }
  throw Error("unknown gpu token: " + token);
}

/// Exact round-trip double formatting (hexfloat).
std::string fmt(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

double parse_double(const std::string& token) {
  std::size_t pos = 0;
  const double v = std::stod(token, &pos);
  GPPM_CHECK(pos == token.size(), "bad number: " + token);
  return v;
}

std::vector<std::string> split(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) out.push_back(tok);
  return out;
}

}  // namespace

void serialize_model(const UnifiedModel& model, std::ostream& out) {
  const UnifiedModel::Parts p = model.parts();
  out << "gppm-model " << kFormatVersion << "\n";
  out << "gpu " << gpu_token(p.gpu) << "\n";
  out << "target " << (p.target == TargetKind::Power ? "power" : "exectime")
      << "\n";
  out << "scaling "
      << (p.scaling == FeatureScaling::FrequencyOnly ? "f" : "v2f") << "\n";
  out << "intercept " << fmt(p.intercept) << "\n";
  out << "adjusted_r2 " << fmt(p.adjusted_r2) << "\n";
  for (std::size_t i = 0; i < p.variables.size(); ++i) {
    const SelectedVariable& v = p.variables[i];
    out << "var " << v.counter << " "
        << (v.klass == profiler::EventClass::Core ? "core" : "memory") << " "
        << p.counter_indices[i] << " " << fmt(v.coefficient) << " "
        << fmt(v.cumulative_adjusted_r2) << "\n";
  }
  out << "end\n";
}

std::string serialize_model(const UnifiedModel& model) {
  std::ostringstream out;
  serialize_model(model, out);
  return out.str();
}

std::uint64_t model_fingerprint(const UnifiedModel& model) {
  return fnv1a(serialize_model(model));
}

UnifiedModel deserialize_model(std::istream& in) {
  UnifiedModel::Parts p;
  std::string line;
  bool saw_header = false, saw_end = false;

  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> tok = split(line);
    GPPM_CHECK(!tok.empty(), "empty line");
    const std::string& key = tok[0];

    if (!saw_header) {
      GPPM_CHECK(key == "gppm-model" && tok.size() == 2,
                 "missing gppm-model header");
      GPPM_CHECK(std::stoi(tok[1]) == kFormatVersion,
                 "unsupported model format version " + tok[1]);
      saw_header = true;
      continue;
    }
    if (key == "gpu") {
      GPPM_CHECK(tok.size() == 2, "bad gpu line");
      p.gpu = parse_gpu(tok[1]);
    } else if (key == "target") {
      GPPM_CHECK(tok.size() == 2, "bad target line");
      GPPM_CHECK(tok[1] == "power" || tok[1] == "exectime",
                 "bad target: " + tok[1]);
      p.target = tok[1] == "power" ? TargetKind::Power : TargetKind::ExecTime;
    } else if (key == "scaling") {
      GPPM_CHECK(tok.size() == 2, "bad scaling line");
      GPPM_CHECK(tok[1] == "f" || tok[1] == "v2f", "bad scaling: " + tok[1]);
      p.scaling = tok[1] == "f" ? FeatureScaling::FrequencyOnly
                                : FeatureScaling::VoltageSquaredFrequency;
    } else if (key == "intercept") {
      GPPM_CHECK(tok.size() == 2, "bad intercept line");
      p.intercept = parse_double(tok[1]);
    } else if (key == "adjusted_r2") {
      GPPM_CHECK(tok.size() == 2, "bad adjusted_r2 line");
      p.adjusted_r2 = parse_double(tok[1]);
    } else if (key == "var") {
      GPPM_CHECK(tok.size() == 6, "bad var line: " + line);
      SelectedVariable v;
      v.counter = tok[1];
      GPPM_CHECK(tok[2] == "core" || tok[2] == "memory",
                 "bad event class: " + tok[2]);
      v.klass = tok[2] == "core" ? profiler::EventClass::Core
                                 : profiler::EventClass::Memory;
      p.counter_indices.push_back(std::stoul(tok[3]));
      v.coefficient = parse_double(tok[4]);
      v.cumulative_adjusted_r2 = parse_double(tok[5]);
      p.variables.push_back(std::move(v));
    } else if (key == "end") {
      saw_end = true;
      break;
    } else {
      throw Error("unknown model-file field: " + key);
    }
  }
  GPPM_CHECK(saw_header, "not a gppm model file");
  GPPM_CHECK(saw_end, "truncated model file (no 'end')");
  return UnifiedModel::from_parts(std::move(p));
}

UnifiedModel deserialize_model(const std::string& text) {
  std::istringstream in(text);
  return deserialize_model(in);
}

}  // namespace gppm::core
