#include "core/evaluation.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/error.hpp"
#include "common/parallel.hpp"

namespace gppm::core {

double RowError::abs_error() const { return std::abs(predicted - actual); }

double RowError::abs_percent_error() const {
  GPPM_CHECK(actual != 0.0, "zero actual value");
  return std::abs(predicted - actual) / std::abs(actual) * 100.0;
}

double Evaluation::mape() const {
  GPPM_CHECK(!rows.empty(), "empty evaluation");
  double acc = 0.0;
  for (const RowError& r : rows) acc += r.abs_percent_error();
  return acc / static_cast<double>(rows.size());
}

double Evaluation::wape() const {
  GPPM_CHECK(!rows.empty(), "empty evaluation");
  double num = 0.0;
  double den = 0.0;
  for (const RowError& r : rows) {
    num += r.abs_error();
    den += r.actual;
  }
  GPPM_CHECK(den > 0.0, "wape needs a positive actual total");
  return 100.0 * num / den;
}

double Evaluation::mean_abs_error() const {
  GPPM_CHECK(!rows.empty(), "empty evaluation");
  double acc = 0.0;
  for (const RowError& r : rows) acc += r.abs_error();
  return acc / static_cast<double>(rows.size());
}

std::vector<double> Evaluation::abs_percent_errors() const {
  std::vector<double> out;
  out.reserve(rows.size());
  for (const RowError& r : rows) out.push_back(r.abs_percent_error());
  return out;
}

stats::FiveNumber Evaluation::error_distribution() const {
  return stats::five_number(abs_percent_errors());
}

Evaluation evaluate(const UnifiedModel& model, const Dataset& dataset,
                    const sim::FrequencyPair* pair_filter) {
  GPPM_CHECK(model.gpu() == dataset.model, "model/dataset board mismatch");
  Evaluation eval;
  for (std::size_t si = 0; si < dataset.samples.size(); ++si) {
    const Sample& s = dataset.samples[si];
    for (const Measurement& m : s.runs) {
      if (pair_filter && !(m.pair == *pair_filter)) continue;
      RowError r;
      r.sample_index = si;
      r.pair = m.pair;
      r.actual = model.target() == TargetKind::Power
                     ? m.avg_power.as_watts()
                     : m.exec_time.as_seconds();
      r.predicted = model.predict(s.counters, m.pair);
      eval.rows.push_back(r);
    }
  }
  GPPM_CHECK(!eval.rows.empty(), "no rows evaluated");
  return eval;
}

Evaluation cross_validate(const Dataset& dataset, TargetKind target,
                          const ModelOptions& options) {
  GPPM_CHECK(dataset.samples.size() >= 2, "corpus too small for CV");

  // Distinct benchmark names, in first-appearance order.
  std::vector<std::string> benchmarks;
  for (const Sample& s : dataset.samples) {
    if (std::find(benchmarks.begin(), benchmarks.end(), s.benchmark) ==
        benchmarks.end()) {
      benchmarks.push_back(s.benchmark);
    }
  }
  GPPM_CHECK(benchmarks.size() >= 2, "CV needs >= 2 benchmarks");

  // The folds are independent refits — fan them out over the compute pool.
  // Each fold writes its own slot and the slots are concatenated in
  // benchmark order, so the result is identical to the serial loop.
  std::vector<std::vector<RowError>> fold_rows(benchmarks.size());
  gppm::parallel_for(benchmarks.size(), [&](std::size_t bi) {
    const std::string& held_out = benchmarks[bi];
    Dataset train;
    train.model = dataset.model;
    for (const Sample& s : dataset.samples) {
      if (s.benchmark != held_out) train.samples.push_back(s);
    }
    const UnifiedModel model = UnifiedModel::fit(train, target, options);

    for (std::size_t si = 0; si < dataset.samples.size(); ++si) {
      const Sample& s = dataset.samples[si];
      if (s.benchmark != held_out) continue;
      for (const Measurement& m : s.runs) {
        RowError r;
        r.sample_index = si;
        r.pair = m.pair;
        r.actual = target == TargetKind::Power ? m.avg_power.as_watts()
                                               : m.exec_time.as_seconds();
        r.predicted = model.predict(s.counters, m.pair);
        fold_rows[bi].push_back(r);
      }
    }
  });

  Evaluation eval;
  for (const std::vector<RowError>& rows : fold_rows) {
    eval.rows.insert(eval.rows.end(), rows.begin(), rows.end());
  }
  GPPM_ASSERT(eval.rows.size() == dataset.row_count());
  return eval;
}

std::vector<BenchmarkError> per_benchmark_errors(const Evaluation& eval,
                                                 const Dataset& dataset) {
  std::map<std::string, std::pair<double, std::size_t>> acc;
  for (const RowError& r : eval.rows) {
    GPPM_CHECK(r.sample_index < dataset.samples.size(), "bad sample index");
    auto& slot = acc[dataset.samples[r.sample_index].benchmark];
    slot.first += r.abs_percent_error();
    slot.second += 1;
  }
  std::vector<BenchmarkError> out;
  out.reserve(acc.size());
  for (const auto& [name, sum_count] : acc) {
    out.push_back({name, sum_count.first / static_cast<double>(sum_count.second)});
  }
  return out;
}

}  // namespace gppm::core
