// A reusable model-driven DVFS governor — the paper's "dynamic runtime
// management of power and performance" future work as a library component.
//
// The governor holds the fitted unified models for one board and, for each
// application phase (identified by its counter profile), decides the
// operating point under a policy.  It is stateful: a hysteresis threshold
// suppresses switches whose predicted benefit is marginal, since every
// switch costs a P-state transition (a full reboot under the paper's BIOS
// method, milliseconds under runtime reclocking).
#pragma once

#include "core/optimizer.hpp"

namespace gppm::core {

/// Objective the governor optimizes per phase.
enum class GovernorPolicy {
  MinimumEnergy,  ///< minimize predicted power x time
  MinimumEdp,     ///< minimize predicted energy-delay product (power x time^2)
  PowerCap,       ///< fastest pair whose predicted power fits under the cap
};

std::string to_string(GovernorPolicy p);

struct GovernorOptions {
  GovernorPolicy policy = GovernorPolicy::MinimumEnergy;
  /// System power budget for the PowerCap policy.
  Power power_cap = Power::watts(200.0);
  /// Hysteresis: switch away from the current pair only if the predicted
  /// objective improves by more than this fraction.
  double switch_threshold = 0.02;
};

/// Phase-level DVFS governor.
class DvfsGovernor {
 public:
  /// Both models must target the same board; power must target Power and
  /// perf ExecTime (validated).
  DvfsGovernor(UnifiedModel power_model, UnifiedModel perf_model,
               GovernorOptions options = {});

  /// Decide the pair for a phase.  Updates the governor's current pair and
  /// switch count.  For PowerCap with no feasible pair, falls back to the
  /// minimum-predicted-power pair.
  sim::FrequencyPair decide(const profiler::ProfileResult& phase_counters);

  /// Predicted objective value of a pair for a phase (exposed for tests
  /// and for callers that want the whole ranking).
  double objective(const PairPrediction& prediction) const;

  sim::FrequencyPair current_pair() const { return current_; }
  int switch_count() const { return switches_; }
  int decision_count() const { return decisions_; }
  const GovernorOptions& options() const { return options_; }

  /// Reset to a starting pair and clear the counters.
  void reset(sim::FrequencyPair start = sim::kDefaultPair);

 private:
  UnifiedModel power_;
  UnifiedModel perf_;
  GovernorOptions options_;
  sim::FrequencyPair current_ = sim::kDefaultPair;
  int switches_ = 0;
  int decisions_ = 0;
};

}  // namespace gppm::core
