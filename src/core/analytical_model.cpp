#include "core/analytical_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "linalg/lstsq.hpp"
#include "profiler/counters.hpp"

namespace gppm::core {

namespace {

double counter_total(const profiler::ProfileResult& counters,
                     sim::Architecture arch, const std::string& name) {
  const std::size_t idx = profiler::counter_index(arch, name);
  GPPM_CHECK(idx < counters.counters.size(), "counter set too small");
  return counters.counters[idx].total;
}

/// Sum the totals of every counter whose name starts with `prefix` and
/// contains `infix`.
double sum_matching(const profiler::ProfileResult& counters,
                    const std::string& prefix, const std::string& infix) {
  double acc = 0.0;
  for (const profiler::CounterReading& r : counters.counters) {
    if (r.name.rfind(prefix, 0) == 0 &&
        r.name.find(infix) != std::string::npos) {
      acc += r.total;
    }
  }
  return acc;
}

}  // namespace

AnalyticalInputs analytical_inputs(const profiler::ProfileResult& counters,
                                   sim::Architecture arch) {
  AnalyticalInputs in;
  switch (arch) {
    case sim::Architecture::Tesla:
      in.warp_instructions = counter_total(counters, arch, "instructions");
      // Tesla exposes only size-binned transaction counts.
      in.dram_bytes =
          32.0 * counter_total(counters, arch, "gld_32b") +
          64.0 * counter_total(counters, arch, "gld_64b") +
          128.0 * counter_total(counters, arch, "gld_128b") +
          32.0 * counter_total(counters, arch, "gst_32b") +
          64.0 * counter_total(counters, arch, "gst_64b") +
          128.0 * counter_total(counters, arch, "gst_128b");
      in.launches = counter_total(counters, arch, "cta_launched");
      break;
    case sim::Architecture::Fermi:
    case sim::Architecture::Kepler:
      in.warp_instructions = counter_total(counters, arch, "inst_executed");
      // Frame-buffer sector counters are the DRAM-traffic ground truth on
      // the cached architectures (32B sectors).
      in.dram_bytes = 32.0 * (sum_matching(counters, "fb_", "read_sectors") +
                              sum_matching(counters, "fb_", "write_sectors"));
      in.launches = counter_total(counters, arch, "sm_cta_launched");
      break;
  }
  return in;
}

AnalyticalPerfModel AnalyticalPerfModel::calibrate(const Dataset& dataset) {
  GPPM_CHECK(!dataset.samples.empty(), "empty dataset");
  const sim::DeviceSpec& spec = sim::device_spec(dataset.model);

  // Materialize per-row terms once.
  struct Row {
    double compute_term;  // insts / f_core(GHz)
    double memory_term;   // bytes / f_mem(GHz)
    double launches;
    double time;
  };
  std::vector<Row> rows;
  for (const Sample& s : dataset.samples) {
    const AnalyticalInputs in =
        analytical_inputs(s.counters, spec.architecture);
    for (const Measurement& m : s.runs) {
      Row r;
      r.compute_term =
          in.warp_instructions /
          spec.core_clock.at(m.pair.core).frequency.as_ghz();
      r.memory_term =
          in.dram_bytes / spec.mem_clock.at(m.pair.mem).frequency.as_ghz();
      r.launches = in.launches;
      r.time = m.exec_time.as_seconds();
      rows.push_back(r);
    }
  }

  // Alternate bottleneck assignment and least squares (EM-style).  Start
  // from a normalized-magnitude split so the first regression sees both
  // regimes.
  double med_c = 0, med_m = 0;
  {
    std::vector<double> cs, ms;
    for (const Row& r : rows) {
      cs.push_back(r.compute_term);
      ms.push_back(r.memory_term);
    }
    std::nth_element(cs.begin(), cs.begin() + cs.size() / 2, cs.end());
    std::nth_element(ms.begin(), ms.begin() + ms.size() / 2, ms.end());
    med_c = std::max(cs[cs.size() / 2], 1e-12);
    med_m = std::max(ms[ms.size() / 2], 1e-12);
  }
  std::vector<bool> compute_bound(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    compute_bound[i] =
        rows[i].compute_term / med_c >= rows[i].memory_term / med_m;
  }

  AnalyticalParams p;
  for (int iter = 0; iter < 12; ++iter) {
    linalg::Matrix design(rows.size(), 4);
    linalg::Vector target(rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      design(i, 0) = compute_bound[i] ? rows[i].compute_term : 0.0;
      design(i, 1) = compute_bound[i] ? 0.0 : rows[i].memory_term;
      design(i, 2) = rows[i].launches;
      design(i, 3) = 1.0;
      target[i] = rows[i].time;
    }
    const linalg::LstsqResult sol = linalg::lstsq(design, target);
    p.alpha_compute = std::max(sol.x[0], 1e-15);
    p.alpha_memory = std::max(sol.x[1], 1e-15);
    p.beta_launch = std::max(sol.x[2], 0.0);
    p.gamma_fixed = std::max(sol.x[3], 0.0);

    bool changed = false;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const bool now = p.alpha_compute * rows[i].compute_term >=
                       p.alpha_memory * rows[i].memory_term;
      if (now != compute_bound[i]) {
        compute_bound[i] = now;
        changed = true;
      }
    }
    if (!changed) break;
  }

  AnalyticalPerfModel model;
  model.params_ = p;
  model.gpu_ = dataset.model;
  return model;
}

double AnalyticalPerfModel::predict_seconds(
    const profiler::ProfileResult& counters, sim::FrequencyPair pair) const {
  const sim::DeviceSpec& spec = sim::device_spec(gpu_);
  const AnalyticalInputs in = analytical_inputs(counters, spec.architecture);
  const double compute = params_.alpha_compute * in.warp_instructions /
                         spec.core_clock.at(pair.core).frequency.as_ghz();
  const double memory = params_.alpha_memory * in.dram_bytes /
                        spec.mem_clock.at(pair.mem).frequency.as_ghz();
  return std::max(1e-6, std::max(compute, memory) +
                            params_.beta_launch * in.launches +
                            params_.gamma_fixed);
}

AnalyticalPerfModel AnalyticalPerfModel::transferred_to(
    sim::GpuModel other) const {
  AnalyticalPerfModel copy = *this;
  copy.gpu_ = other;
  return copy;
}

}  // namespace gppm::core
