#include "core/quality.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/str.hpp"

namespace gppm::core {

namespace {

double median_of(std::vector<double> v) {
  const std::size_t n = v.size();
  const std::size_t mid = n / 2;
  std::nth_element(v.begin(), v.begin() + mid, v.end());
  const double hi = v[mid];
  if (n % 2 == 1) return hi;
  std::nth_element(v.begin(), v.begin() + (mid - 1), v.begin() + mid);
  return 0.5 * (v[mid - 1] + hi);
}

}  // namespace

std::string QualityReport::to_string() const {
  std::string out = valid ? "valid" : "missing";
  out += " attempts=" + std::to_string(attempts);
  out += " faults=" + std::to_string(transient_faults);
  out += " samples=" + std::to_string(samples_delivered);
  out += " rejected=" + std::to_string(samples_rejected);
  out += " imputed=" + std::to_string(samples_imputed);
  out += " backoff_ms=" + format_double(backoff.as_milliseconds(), 3);
  if (!failure.empty()) out += " failure=\"" + failure + "\"";
  return out;
}

ValidatedRun validate_run(const meter::Measurement& m,
                          const ValidationOptions& options) {
  ValidatedRun out;
  std::vector<double> watts;
  watts.reserve(m.samples.size());
  for (const meter::PowerSample& s : m.samples) {
    watts.push_back(s.power.as_watts());
  }

  std::vector<meter::PowerSample> accepted;
  if (watts.empty()) {
    out.reason = "no samples delivered";
    return out;
  }

  // The sampling grid the stream was (supposed to be) delivered on.
  const double period_s =
      options.sampling_period > Duration::seconds(0.0)
          ? options.sampling_period.as_seconds()
          : m.duration.as_seconds() / static_cast<double>(m.samples.size());
  const auto n_slots = static_cast<std::size_t>(
      std::llround(m.duration.as_seconds() / period_s));
  if (n_slots == 0 || n_slots < m.samples.size()) {
    out.reason = "sample stream inconsistent with the sampling grid";
    return out;
  }

  // Spike rejection against a *running* median: a real power trace is
  // bimodal by construction (GPU-kernel plateaus vs. host plateaus), so a
  // global median would nuke the minority mode wholesale.  An injected
  // spike is an isolated sample disagreeing with its neighbours; the
  // 5-wide local median follows the plateau the sample sits on, and the
  // residuals against it are back to unimodal noise that scaled MAD
  // (1.4826 * MAD estimates sigma for gaussian noise) can calibrate.
  // The sigma floor keeps a noiseless constant stream from rejecting
  // legitimate quantization wiggle.
  const std::size_t n = watts.size();
  const double med = median_of(watts);
  std::vector<double> residual;
  residual.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t lo = i >= 2 ? i - 2 : 0;
    const std::size_t hi = std::min(n, lo + 5);
    residual.push_back(std::abs(
        watts[i] -
        median_of(std::vector<double>(watts.begin() + static_cast<long>(lo),
                                      watts.begin() + static_cast<long>(hi)))));
  }
  const double mad = median_of(residual);
  const double sigma =
      std::max({1.4826 * mad, 1e-3 * std::abs(med), 1e-9});
  const double cutoff = options.mad_threshold * sigma;

  accepted.reserve(m.samples.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (residual[i] > cutoff) continue;
    accepted.push_back(m.samples[i]);
  }
  out.rejected = m.samples.size() - accepted.size();
  out.imputed = n_slots - accepted.size();

  const double imputed_fraction = static_cast<double>(out.imputed) /
                                  static_cast<double>(n_slots);
  if (imputed_fraction > options.max_rejected_fraction) {
    out.reason = "imputed fraction " + format_double(imputed_fraction, 3) +
                 " exceeds " + format_double(options.max_rejected_fraction, 3);
    return out;
  }
  if (accepted.size() < options.min_samples) {
    out.reason = "only " + std::to_string(accepted.size()) + " of >= " +
                 std::to_string(options.min_samples) +
                 " required samples survived";
    return out;
  }

  out.ok = true;
  if (out.imputed == 0) {
    out.cleaned = m;  // bit-identical: nothing was removed or rejected
    return out;
  }

  // Rebuild the full grid, filling dropped/rejected slots by linear
  // interpolation between the nearest accepted slots (nearest-value at the
  // edges).  Each delivered sample's slot comes from its own timestamp, so
  // channel-thinned streams land where they were actually taken.
  std::vector<double> grid(n_slots, 0.0);
  std::vector<bool> have(n_slots, false);
  for (const meter::PowerSample& s : accepted) {
    auto slot = static_cast<std::size_t>(
        std::llround(s.timestamp.as_seconds() / period_s) - 1);
    if (slot >= n_slots) slot = n_slots - 1;
    grid[slot] = s.power.as_watts();
    have[slot] = true;
  }
  std::size_t prev = n_slots;  // index of the last accepted slot seen
  for (std::size_t i = 0; i < n_slots; ++i) {
    if (!have[i]) continue;
    if (prev == n_slots) {
      for (std::size_t j = 0; j < i; ++j) grid[j] = grid[i];  // leading edge
    } else {
      const double span = static_cast<double>(i - prev);
      for (std::size_t j = prev + 1; j < i; ++j) {
        const double t = static_cast<double>(j - prev) / span;
        grid[j] = grid[prev] + t * (grid[i] - grid[prev]);
      }
    }
    prev = i;
  }
  if (prev == n_slots) {
    out.ok = false;
    out.reason = "no accepted samples to impute from";
    return out;
  }
  for (std::size_t j = prev + 1; j < n_slots; ++j) {
    grid[j] = grid[prev];  // trailing edge
  }

  out.cleaned.samples.clear();
  out.cleaned.samples.reserve(n_slots);
  double watts_sum = 0.0;
  for (std::size_t i = 0; i < n_slots; ++i) {
    out.cleaned.samples.push_back(
        {Duration::seconds(static_cast<double>(i + 1) * period_s),
         Power::watts(grid[i])});
    watts_sum += grid[i];
  }
  out.cleaned.duration = m.duration;
  out.cleaned.average_power =
      Power::watts(watts_sum / static_cast<double>(n_slots));
  out.cleaned.energy = out.cleaned.average_power * out.cleaned.duration;
  return out;
}

}  // namespace gppm::core
