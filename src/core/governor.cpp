#include "core/governor.hpp"

#include <limits>

#include "common/error.hpp"

namespace gppm::core {

std::string to_string(GovernorPolicy p) {
  switch (p) {
    case GovernorPolicy::MinimumEnergy: return "min-energy";
    case GovernorPolicy::MinimumEdp: return "min-edp";
    case GovernorPolicy::PowerCap: return "power-cap";
  }
  throw Error("unknown governor policy");
}

DvfsGovernor::DvfsGovernor(UnifiedModel power_model, UnifiedModel perf_model,
                           GovernorOptions options)
    : power_(std::move(power_model)),
      perf_(std::move(perf_model)),
      options_(options) {
  GPPM_CHECK(power_.target() == TargetKind::Power,
             "first model must target power");
  GPPM_CHECK(perf_.target() == TargetKind::ExecTime,
             "second model must target exectime");
  GPPM_CHECK(power_.gpu() == perf_.gpu(), "models for different boards");
  GPPM_CHECK(options_.switch_threshold >= 0.0, "negative switch threshold");
}

double DvfsGovernor::objective(const PairPrediction& p) const {
  switch (options_.policy) {
    case GovernorPolicy::MinimumEnergy:
      return p.predicted_energy_joules;
    case GovernorPolicy::MinimumEdp:
      return p.predicted_energy_joules * p.predicted_time_seconds;
    case GovernorPolicy::PowerCap:
      // Feasible pairs rank by time; infeasible ones sort after every
      // feasible pair, then by how far over the cap they are.
      if (p.predicted_power_watts <= options_.power_cap.as_watts()) {
        return p.predicted_time_seconds;
      }
      return 1e12 + p.predicted_power_watts;
  }
  throw Error("unknown governor policy");
}

sim::FrequencyPair DvfsGovernor::decide(
    const profiler::ProfileResult& phase_counters) {
  const std::vector<PairPrediction> predictions =
      predict_all_pairs(power_, perf_, phase_counters);
  GPPM_CHECK(!predictions.empty(), "no configurable pairs");

  const PairPrediction* best = nullptr;
  const PairPrediction* incumbent = nullptr;
  for (const PairPrediction& p : predictions) {
    if (!best || objective(p) < objective(*best)) best = &p;
    if (p.pair == current_) incumbent = &p;
  }
  GPPM_ASSERT(best != nullptr);

  ++decisions_;
  // Hysteresis: stay unless the best pair beats the incumbent by margin.
  if (incumbent != nullptr) {
    const double inc = objective(*incumbent);
    if (objective(*best) >= inc * (1.0 - options_.switch_threshold)) {
      return current_;
    }
  }
  if (!(best->pair == current_)) ++switches_;
  current_ = best->pair;
  return current_;
}

void DvfsGovernor::reset(sim::FrequencyPair start) {
  current_ = start;
  switches_ = 0;
  decisions_ = 0;
}

}  // namespace gppm::core
