// Model evaluation: the error statistics behind TABLEs V-VIII and the
// error-distribution figures (5, 6, 9, 10).
#pragma once

#include <string>
#include <vector>

#include "core/unified_model.hpp"
#include "stats/descriptive.hpp"

namespace gppm::core {

/// Error of one evaluated row.
struct RowError {
  std::size_t sample_index;
  sim::FrequencyPair pair;
  double actual = 0.0;
  double predicted = 0.0;

  double abs_error() const;
  double abs_percent_error() const;
};

/// Full evaluation of a model on a corpus.
struct Evaluation {
  std::vector<RowError> rows;

  /// Mean absolute percentage error (TABLEs VII/VIII "Error[%]").
  double mape() const;
  /// Weighted absolute percentage error: sum |pred - actual| / sum actual
  /// (library extension).  Weights every row by its magnitude, so it reads
  /// as the aggregate misprediction of total target units — robust to the
  /// tiny-denominator rows that dominate mape() on wide-range targets.
  double wape() const;
  /// Mean absolute error in target units (TABLE VII "Error[W]").
  double mean_abs_error() const;
  /// All absolute percentage errors, for distribution plots.
  std::vector<double> abs_percent_errors() const;
  /// Five-number summary of the absolute percentage errors (Figs. 9/10).
  stats::FiveNumber error_distribution() const;
};

/// Per-benchmark mean absolute percentage error (Figs. 5/6 plot these,
/// sorted independently per GPU).
struct BenchmarkError {
  std::string benchmark;
  double mean_abs_percent_error = 0.0;
};

/// Evaluate a model on every row of the corpus (or on one pair's rows if
/// `pair_filter` is given — used to score per-pair baseline models on
/// their own operating point).
Evaluation evaluate(const UnifiedModel& model, const Dataset& dataset,
                    const sim::FrequencyPair* pair_filter = nullptr);

/// Aggregate an evaluation per benchmark.
std::vector<BenchmarkError> per_benchmark_errors(const Evaluation& eval,
                                                 const Dataset& dataset);

/// Leave-one-benchmark-out cross-validation (library extension; the paper
/// reports in-sample error only).  For each benchmark, a model is fitted on
/// every other benchmark's samples and scored on the held-out ones; the
/// returned evaluation holds one out-of-sample prediction per corpus row.
/// This answers the question the paper's deployment story depends on: how
/// well do the models predict workloads they were not trained on?
Evaluation cross_validate(const Dataset& dataset, TargetKind target,
                          const ModelOptions& options = {});

}  // namespace gppm::core
