#include "core/dataset.hpp"

#include "dvfs/combos.hpp"
#include "workload/suite.hpp"

namespace gppm::core {

std::size_t Dataset::row_count() const {
  std::size_t n = 0;
  for (const Sample& s : samples) n += s.runs.size();
  return n;
}

Dataset build_dataset(sim::GpuModel model, const DatasetOptions& options) {
  RunnerOptions ropt = options.runner;
  ropt.seed = options.seed;
  MeasurementRunner runner(model, ropt);
  profiler::CudaProfiler prof(options.seed ^ 0xC0DA);
  prof.set_sampling_sigma(options.profiler_sampling_sigma);

  const auto pairs = dvfs::configurable_pairs(model);

  Dataset ds;
  ds.model = model;
  for (const workload::BenchmarkDef& def : workload::benchmark_suite()) {
    if (!profiler::CudaProfiler::supports(def.name)) continue;
    for (std::size_t size = 0; size < def.size_count; ++size) {
      Sample sample;
      sample.benchmark = def.name;
      sample.size_index = size;

      // Profile at the default pair over the same (repetition-adjusted)
      // run the measurements will execute.
      const sim::RunProfile profile = runner.prepared_profile(def, size);
      runner.gpu().set_frequency_pair(sim::kDefaultPair);
      sample.counters = prof.collect(runner.gpu(), profile);

      for (sim::FrequencyPair pair : pairs) {
        sample.runs.push_back(runner.measure_profile(profile, pair));
      }
      ds.samples.push_back(std::move(sample));
    }
  }
  return ds;
}

}  // namespace gppm::core
