#include "core/runner.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace gppm::core {

MeasurementRunner::MeasurementRunner(sim::GpuModel model, RunnerOptions options)
    : gpu_(model, options.seed),
      options_(options),
      meter_(options.meter, options.seed ^ 0x5741313630300ull /* "WT1600" */) {}

std::vector<meter::TimelineSegment> MeasurementRunner::wall_timeline(
    const sim::RunExecution& exec) const {
  std::vector<meter::TimelineSegment> out;
  out.reserve(exec.timeline.size());
  for (const sim::PowerSegment& seg : exec.timeline) {
    // During GPU kernels the CPU busy-waits on the sync; during host phases
    // it computes.  PSU conversion loss sits on top of the DC total.
    const Power host = seg.kind == sim::SegmentKind::GpuKernel
                           ? options_.host.gpu_wait
                           : options_.host.host_active;
    out.push_back({seg.duration,
                   sim::wall_power(options_.host, host + seg.gpu_power)});
  }
  return out;
}

double MeasurementRunner::repetition_factor(
    const workload::BenchmarkDef& benchmark, std::size_t size_index) {
  const std::string key = benchmark.name + "#" + std::to_string(size_index);
  auto it = repetition_cache_.find(key);
  if (it != repetition_cache_.end()) return it->second;

  // Decide at the default pair: how many times must the kernels repeat so
  // the run reaches min_run_length?  (The paper modifies the source of
  // sub-500 ms programs to loop their computing kernel.)
  const sim::FrequencyPair saved = gpu_.frequency_pair();
  gpu_.set_frequency_pair(sim::kDefaultPair);
  const sim::RunExecution exec = gpu_.run(benchmark.profile(size_index));
  gpu_.set_frequency_pair(saved);

  double factor = 1.0;
  const double t = exec.total_time.as_seconds();
  const double t_min = options_.min_run_length.as_seconds();
  if (t < t_min) factor = std::ceil(t_min / std::max(t, 1e-6));
  repetition_cache_[key] = factor;
  return factor;
}

sim::RunProfile MeasurementRunner::prepared_profile(
    const workload::BenchmarkDef& benchmark, std::size_t size_index) {
  sim::RunProfile profile = benchmark.profile(size_index);
  const double factor = repetition_factor(benchmark, size_index);
  if (factor > 1.0) {
    for (sim::KernelProfile& k : profile.kernels) {
      k.launches = static_cast<std::uint32_t>(
          std::max(1.0, std::round(k.launches * factor)));
    }
  }
  return profile;
}

Measurement MeasurementRunner::measure(const workload::BenchmarkDef& benchmark,
                                       std::size_t size_index,
                                       sim::FrequencyPair pair) {
  return measure_profile(prepared_profile(benchmark, size_index), pair);
}

Measurement MeasurementRunner::measure_profile(const sim::RunProfile& profile,
                                               sim::FrequencyPair pair) {
  gpu_.set_frequency_pair(pair);
  const sim::RunExecution exec = gpu_.run(profile);
  const meter::Measurement m = meter_.measure(wall_timeline(exec));

  // Host timer: accurate to a fraction of a percent, keyed on run identity
  // so repeated measurements are reproducible.
  std::uint64_t key = fnv1a(profile.benchmark_name) ^
                      (fnv1a(sim::to_string(pair)) << 1) ^
                      (static_cast<std::uint64_t>(gpu_.spec().model) << 48);
  for (const sim::KernelProfile& k : profile.kernels) key ^= fnv1a(k.name);
  Rng rng = Rng(options_.seed).fork(key);
  const double timer_noise = 1.0 + rng.normal(0.0, 0.003);

  Measurement out;
  out.pair = pair;
  out.exec_time = Duration::seconds(exec.total_time.as_seconds() * timer_noise);
  out.avg_power = m.average_power;
  // Report energy over the full run: meter energy covers whole sampling
  // windows only; extend the average power over the tail remainder.
  out.energy = m.average_power * out.exec_time;
  return out;
}

}  // namespace gppm::core
