#include "core/runner.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "fault/faulty_meter.hpp"
#include "obs/obs.hpp"

namespace gppm::core {

namespace {

// Quality-path instruments for the checked measurement pipeline; cached so
// the fault-free path pays one branch per record.
struct SweepInstruments {
  obs::Counter& attempts;
  obs::Counter& retries;
  obs::Counter& invalid_runs;
  obs::Counter& samples_rejected;
  obs::Counter& samples_imputed;
  obs::Counter& cells_measured;
  obs::Counter& cells_missing;
  obs::Histogram& backoff_ms;

  static SweepInstruments& instance() {
    static SweepInstruments* in = new SweepInstruments{
        obs::Registry::instance().counter("sweep.attempts"),
        obs::Registry::instance().counter("sweep.retries"),
        obs::Registry::instance().counter("sweep.invalid_runs"),
        obs::Registry::instance().counter("sweep.samples_rejected"),
        obs::Registry::instance().counter("sweep.samples_imputed"),
        obs::Registry::instance().counter("sweep.cells_measured"),
        obs::Registry::instance().counter("sweep.cells_missing"),
        obs::Registry::instance().histogram(
            "sweep.backoff_ms", {1.0, 10.0, 100.0, 1000.0, 10000.0}),
    };
    return *in;
  }
};

}  // namespace

MeasurementRunner::MeasurementRunner(sim::GpuModel model, RunnerOptions options)
    : gpu_(model, options.seed),
      options_(options),
      meter_(options.meter, options.seed ^ 0x5741313630300ull /* "WT1600" */) {
  GPPM_CHECK(options_.min_run_length > Duration::seconds(0.0),
             "min_run_length must be positive");
}

std::vector<meter::TimelineSegment> MeasurementRunner::wall_timeline(
    const sim::RunExecution& exec) const {
  std::vector<meter::TimelineSegment> out;
  out.reserve(exec.timeline.size());
  for (const sim::PowerSegment& seg : exec.timeline) {
    // During GPU kernels the CPU busy-waits on the sync; during host phases
    // it computes.  PSU conversion loss sits on top of the DC total.
    const Power host = seg.kind == sim::SegmentKind::GpuKernel
                           ? options_.host.gpu_wait
                           : options_.host.host_active;
    out.push_back({seg.duration,
                   sim::wall_power(options_.host, host + seg.gpu_power)});
  }
  return out;
}

double MeasurementRunner::repetition_factor(
    const workload::BenchmarkDef& benchmark, std::size_t size_index) {
  const std::string key = benchmark.name + "#" + std::to_string(size_index);
  auto it = repetition_cache_.find(key);
  if (it != repetition_cache_.end()) return it->second;

  // Decide at the default pair: how many times must the kernels repeat so
  // the run reaches min_run_length?  (The paper modifies the source of
  // sub-500 ms programs to loop their computing kernel.)
  const sim::FrequencyPair saved = gpu_.frequency_pair();
  gpu_.set_frequency_pair(sim::kDefaultPair);
  const sim::RunExecution exec = gpu_.run(benchmark.profile(size_index));
  gpu_.set_frequency_pair(saved);

  double factor = 1.0;
  const double t = exec.total_time.as_seconds();
  const double t_min = options_.min_run_length.as_seconds();
  if (t < t_min) factor = std::ceil(t_min / std::max(t, 1e-6));
  repetition_cache_[key] = factor;
  return factor;
}

sim::RunProfile MeasurementRunner::prepared_profile(
    const workload::BenchmarkDef& benchmark, std::size_t size_index) {
  sim::RunProfile profile = benchmark.profile(size_index);
  const double factor = repetition_factor(benchmark, size_index);
  if (factor > 1.0) {
    for (sim::KernelProfile& k : profile.kernels) {
      k.launches = static_cast<std::uint32_t>(
          std::max(1.0, std::round(k.launches * factor)));
    }
  }
  return profile;
}

std::uint64_t MeasurementRunner::run_identity(const sim::RunProfile& profile,
                                              sim::FrequencyPair pair) const {
  std::uint64_t key = fnv1a(profile.benchmark_name) ^
                      (fnv1a(sim::to_string(pair)) << 1) ^
                      (static_cast<std::uint64_t>(gpu_.spec().model) << 48);
  for (const sim::KernelProfile& k : profile.kernels) key ^= fnv1a(k.name);
  return key;
}

Measurement MeasurementRunner::summarize(const sim::RunProfile& profile,
                                         sim::FrequencyPair pair,
                                         const sim::RunExecution& exec,
                                         const meter::Measurement& m) const {
  // Host timer: accurate to a fraction of a percent, keyed on run identity
  // so repeated measurements are reproducible.
  Rng rng = Rng(options_.seed).fork(run_identity(profile, pair));
  const double timer_noise = 1.0 + rng.normal(0.0, 0.003);

  Measurement out;
  out.pair = pair;
  out.exec_time = Duration::seconds(exec.total_time.as_seconds() * timer_noise);
  out.avg_power = m.average_power;
  // Report energy over the full run: meter energy covers whole sampling
  // windows only; extend the average power over the tail remainder.
  out.energy = m.average_power * out.exec_time;
  return out;
}

Measurement MeasurementRunner::measure(const workload::BenchmarkDef& benchmark,
                                       std::size_t size_index,
                                       sim::FrequencyPair pair) {
  return measure_profile(prepared_profile(benchmark, size_index), pair);
}

Measurement MeasurementRunner::measure_profile(const sim::RunProfile& profile,
                                               sim::FrequencyPair pair) {
  // Span only: the fault-free pipeline stays byte-identical (no counters
  // move that the checked path does not already own).
  obs::ObsSpan span("sweep.measure");
  gpu_.set_frequency_pair(pair);
  const sim::RunExecution exec = gpu_.run(profile);
  const meter::Measurement m = meter_.measure(wall_timeline(exec));
  return summarize(profile, pair, exec, m);
}

MeasuredCell MeasurementRunner::measure_checked(
    const workload::BenchmarkDef& benchmark, std::size_t size_index,
    sim::FrequencyPair pair) {
  return measure_profile_checked(prepared_profile(benchmark, size_index), pair);
}

MeasuredCell MeasurementRunner::measure_profile_checked(
    const sim::RunProfile& profile, sim::FrequencyPair pair) {
  obs::ObsSpan span("sweep.measure_checked");
  SweepInstruments& ins = SweepInstruments::instance();
  MeasuredCell cell;
  QualityReport& q = cell.quality;
  const std::uint64_t key = run_identity(profile, pair);
  const RetryPolicy& policy = options_.retry;
  Rng backoff_rng = Rng(options_.seed).fork(key ^ fnv1a("retry.jitter"));
  const int max_attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;

  // Charge one backoff delay against the budget; false ends the cell.
  const auto charge_backoff = [&](int attempt) {
    const Duration delay = backoff_delay(policy, attempt, backoff_rng);
    if (q.backoff + delay > policy.retry_budget) {
      q.failure = "retry budget exhausted";
      return false;
    }
    q.backoff += delay;
    return true;
  };

  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    ++q.attempts;
    ins.attempts.add();
    const bool last = attempt + 1 == max_attempts;

    // P-state transition: the paper's patch + reboot step, which a real
    // board occasionally refuses.  The previous operating point survives
    // a refusal, exactly like dvfs::Controller's transactional set_pair.
    if (options_.injector != nullptr &&
        options_.injector->should_fire(fault::kSiteDvfsSetPair)) {
      ++q.transient_faults;
      ins.retries.add();
      q.failure = "P-state transition to " + sim::to_string(pair) + " failed";
      if (last || !charge_backoff(attempt)) break;
      continue;
    }
    gpu_.set_frequency_pair(pair);
    const sim::RunExecution exec = gpu_.run(profile);

    // The meter stream is keyed on the run identity, not on call order:
    // every attempt (and the fault-free pipeline) sees the same underlying
    // samples, so what the faults change is exactly what the faults broke.
    fault::FaultyMeter fmeter(options_.meter,
                              options_.seed ^ 0x5741313630300ull ^ key,
                              options_.injector);
    meter::Measurement m;
    try {
      m = fmeter.measure(wall_timeline(exec));
    } catch (const TransientError& e) {
      ++q.transient_faults;
      ins.retries.add();
      q.failure = e.what();
      if (last || !charge_backoff(attempt)) break;
      continue;
    }

    ValidationOptions vopt = options_.validation;
    if (!(vopt.sampling_period > Duration::seconds(0.0))) {
      vopt.sampling_period = options_.meter.sampling_period;
    }
    const ValidatedRun v = validate_run(m, vopt);
    if (!v.ok) {
      // An invalid run (thinned below the minimum, or spike-ridden) is
      // re-measured immediately; no instrument backoff applies.
      ins.invalid_runs.add();
      q.failure = "invalid run: " + v.reason;
      continue;
    }

    q.samples_delivered = m.samples.size();
    q.samples_rejected = v.rejected;
    q.samples_imputed = v.imputed;
    ins.samples_rejected.add(v.rejected);
    ins.samples_imputed.add(v.imputed);
    q.valid = true;
    q.failure.clear();
    cell.measurement = summarize(profile, pair, exec, v.cleaned);
    break;
  }

  if (!q.valid && q.failure.empty()) q.failure = "attempts exhausted";
  (q.valid ? ins.cells_measured : ins.cells_missing).add();
  if (obs::enabled() && q.backoff > Duration::seconds(0.0)) {
    ins.backoff_ms.record(q.backoff.as_milliseconds());
  }
  return cell;
}

}  // namespace gppm::core
