#include "core/characterization.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "workload/suite.hpp"

namespace gppm::core {

const PairResult& Sweep::at(sim::FrequencyPair pair) const {
  for (const PairResult& r : results) {
    if (r.measurement.pair == pair) return r;
  }
  throw Error("pair " + sim::to_string(pair) + " not in sweep");
}

sim::FrequencyPair Sweep::best_pair() const {
  GPPM_CHECK(!results.empty(), "empty sweep");
  const PairResult* best = &results.front();
  for (const PairResult& r : results) {
    if (r.measurement.power_efficiency() >
        best->measurement.power_efficiency()) {
      best = &r;
    }
  }
  return best->measurement.pair;
}

double Sweep::improvement_percent() const {
  const PairResult& def = at(sim::kDefaultPair);
  const PairResult& best = at(best_pair());
  return (best.measurement.power_efficiency() /
              def.measurement.power_efficiency() -
          1.0) * 100.0;
}

double Sweep::performance_loss_percent() const {
  const PairResult& best = at(best_pair());
  return (1.0 - best.relative_performance) * 100.0;
}

std::vector<PairResult> Sweep::pareto_front() const {
  GPPM_CHECK(!results.empty(), "empty sweep");
  std::vector<PairResult> front;
  for (const PairResult& candidate : results) {
    bool dominated = false;
    for (const PairResult& other : results) {
      const bool no_worse =
          other.measurement.exec_time <= candidate.measurement.exec_time &&
          other.measurement.energy <= candidate.measurement.energy;
      const bool better =
          other.measurement.exec_time < candidate.measurement.exec_time ||
          other.measurement.energy < candidate.measurement.energy;
      if (no_worse && better) {
        dominated = true;
        break;
      }
    }
    if (!dominated) front.push_back(candidate);
  }
  std::sort(front.begin(), front.end(),
            [](const PairResult& a, const PairResult& b) {
              return a.measurement.exec_time < b.measurement.exec_time;
            });
  return front;
}

Sweep sweep_pairs(MeasurementRunner& runner,
                  const workload::BenchmarkDef& benchmark,
                  std::size_t size_index) {
  Sweep sweep;
  sweep.benchmark = benchmark.name;
  sweep.gpu = runner.gpu().spec().model;

  for (sim::FrequencyPair pair : dvfs::configurable_pairs(sweep.gpu)) {
    PairResult r;
    r.measurement = runner.measure(benchmark, size_index, pair);
    sweep.results.push_back(r);
  }

  const Measurement& def = sweep.at(sim::kDefaultPair).measurement;
  for (PairResult& r : sweep.results) {
    r.relative_performance = r.measurement.performance() / def.performance();
    r.relative_efficiency =
        r.measurement.power_efficiency() / def.power_efficiency();
  }
  return sweep;
}

std::vector<BestPairRow> characterize_suite(std::uint64_t seed) {
  std::vector<BestPairRow> rows;
  std::vector<MeasurementRunner> runners;
  runners.reserve(sim::kAllGpus.size());
  for (sim::GpuModel m : sim::kAllGpus) {
    RunnerOptions opt;
    opt.seed = seed;
    runners.emplace_back(m, opt);
  }

  for (const workload::BenchmarkDef& def : workload::benchmark_suite()) {
    BestPairRow row;
    row.benchmark = def.name;
    for (MeasurementRunner& runner : runners) {
      const Sweep sweep = sweep_pairs(runner, def, def.size_count - 1);
      row.best.push_back(sweep.best_pair());
      row.improvement.push_back(sweep.improvement_percent());
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace gppm::core
