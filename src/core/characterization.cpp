#include "core/characterization.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/str.hpp"
#include "obs/obs.hpp"
#include "workload/suite.hpp"

namespace gppm::core {

const PairResult& Sweep::at(sim::FrequencyPair pair) const {
  const PairResult* r = find(pair);
  if (r == nullptr) {
    throw Error("pair " + sim::to_string(pair) + " not in sweep");
  }
  return *r;
}

const PairResult* Sweep::find(sim::FrequencyPair pair) const {
  for (const PairResult& r : results) {
    if (r.measurement.pair == pair) return &r;
  }
  return nullptr;
}

double Sweep::coverage() const {
  const std::size_t total = total_cells();
  if (total == 0) return 0.0;
  return static_cast<double>(results.size()) / static_cast<double>(total);
}

sim::FrequencyPair Sweep::best_pair() const {
  GPPM_CHECK(!results.empty(), "empty sweep");
  const PairResult* best = &results.front();
  for (const PairResult& r : results) {
    if (r.measurement.power_efficiency() >
        best->measurement.power_efficiency()) {
      best = &r;
    }
  }
  return best->measurement.pair;
}

double Sweep::improvement_percent() const {
  const PairResult& def = at(sim::kDefaultPair);
  const PairResult& best = at(best_pair());
  return (best.measurement.power_efficiency() /
              def.measurement.power_efficiency() -
          1.0) * 100.0;
}

double Sweep::performance_loss_percent() const {
  const PairResult& best = at(best_pair());
  return (1.0 - best.relative_performance) * 100.0;
}

std::vector<PairResult> Sweep::pareto_front() const {
  GPPM_CHECK(!results.empty(), "empty sweep");
  std::vector<PairResult> front;
  for (const PairResult& candidate : results) {
    bool dominated = false;
    for (const PairResult& other : results) {
      const bool no_worse =
          other.measurement.exec_time <= candidate.measurement.exec_time &&
          other.measurement.energy <= candidate.measurement.energy;
      const bool better =
          other.measurement.exec_time < candidate.measurement.exec_time ||
          other.measurement.energy < candidate.measurement.energy;
      if (no_worse && better) {
        dominated = true;
        break;
      }
    }
    if (!dominated) front.push_back(candidate);
  }
  std::sort(front.begin(), front.end(),
            [](const PairResult& a, const PairResult& b) {
              return a.measurement.exec_time < b.measurement.exec_time;
            });
  return front;
}

Sweep sweep_pairs(MeasurementRunner& runner,
                  const workload::BenchmarkDef& benchmark,
                  std::size_t size_index) {
  obs::ObsSpan sweep_span("sweep.pairs");
  Sweep sweep;
  sweep.benchmark = benchmark.name;
  sweep.gpu = runner.gpu().spec().model;

  for (sim::FrequencyPair pair : dvfs::configurable_pairs(sweep.gpu)) {
    obs::ObsSpan cell_span("sweep.cell");
    PairResult r;
    r.measurement = runner.measure(benchmark, size_index, pair);
    sweep.results.push_back(r);
  }

  const Measurement& def = sweep.at(sim::kDefaultPair).measurement;
  for (PairResult& r : sweep.results) {
    r.relative_performance = r.measurement.performance() / def.performance();
    r.relative_efficiency =
        r.measurement.power_efficiency() / def.power_efficiency();
  }
  return sweep;
}

Sweep sweep_pairs_resilient(MeasurementRunner& runner,
                            const workload::BenchmarkDef& benchmark,
                            std::size_t size_index) {
  obs::ObsSpan sweep_span("sweep.resilient");
  Sweep sweep;
  sweep.benchmark = benchmark.name;
  sweep.gpu = runner.gpu().spec().model;

  for (sim::FrequencyPair pair : dvfs::configurable_pairs(sweep.gpu)) {
    obs::ObsSpan cell_span("sweep.cell");
    MeasuredCell cell = runner.measure_checked(benchmark, size_index, pair);
    if (cell.covered()) {
      PairResult r;
      r.measurement = *cell.measurement;
      r.quality = std::move(cell.quality);
      sweep.results.push_back(std::move(r));
    } else {
      sweep.missing.push_back({pair, std::move(cell.quality)});
    }
  }

  if (const PairResult* def = sweep.find(sim::kDefaultPair)) {
    const Measurement m = def->measurement;
    for (PairResult& r : sweep.results) {
      r.relative_performance = r.measurement.performance() / m.performance();
      r.relative_efficiency =
          r.measurement.power_efficiency() / m.power_efficiency();
    }
  }
  return sweep;
}

std::vector<BestPairRow> characterize_suite(std::uint64_t seed) {
  std::vector<BestPairRow> rows;
  std::vector<MeasurementRunner> runners;
  runners.reserve(sim::kAllGpus.size());
  for (sim::GpuModel m : sim::kAllGpus) {
    RunnerOptions opt;
    opt.seed = seed;
    runners.emplace_back(m, opt);
  }

  for (const workload::BenchmarkDef& def : workload::benchmark_suite()) {
    BestPairRow row;
    row.benchmark = def.name;
    for (MeasurementRunner& runner : runners) {
      const Sweep sweep = sweep_pairs(runner, def, def.size_count - 1);
      row.best.push_back(sweep.best_pair());
      row.improvement.push_back(sweep.improvement_percent());
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

double ChaosReport::coverage() const {
  if (cells_total == 0) return 0.0;
  return static_cast<double>(cells_covered) / static_cast<double>(cells_total);
}

std::size_t ChaosReport::divergent_count() const {
  std::size_t n = 0;
  for (const ChaosBenchmarkRow& row : rows) n += row.divergent ? 1 : 0;
  return n;
}

std::size_t ChaosReport::comparable_count() const {
  std::size_t n = 0;
  for (const ChaosBenchmarkRow& row : rows) n += row.comparable ? 1 : 0;
  return n;
}

std::string ChaosReport::summary() const {
  std::string out;
  out += "gpu=" + sim::to_string(gpu) + " seed=" + std::to_string(seed) + "\n";
  out += "coverage=" + std::to_string(cells_covered) + "/" +
         std::to_string(cells_total) + " (" +
         format_double(coverage() * 100.0, 2) + "%)\n";
  out += "divergent=" + std::to_string(divergent_count()) +
         " comparable=" + std::to_string(comparable_count()) + "/" +
         std::to_string(rows.size()) + "\n";
  out += "faults=" + std::to_string(fault_fires) + "/" +
         std::to_string(fault_checks) + " site checks\n";
  for (const ChaosCell& c : cells) {
    out += c.benchmark + " " + sim::to_string(c.pair) + ": " +
           c.quality.to_string() + "\n";
  }
  return out;
}

ChaosReport chaos_characterization(sim::GpuModel gpu,
                                   const fault::FaultPlan& plan,
                                   std::uint64_t seed,
                                   std::size_t benchmark_limit) {
  ChaosReport report;
  report.gpu = gpu;
  report.seed = seed;

  RunnerOptions clean_opt;
  clean_opt.seed = seed;
  MeasurementRunner clean_runner(gpu, clean_opt);

  fault::FaultInjector injector(plan, seed);
  RunnerOptions chaos_opt;
  chaos_opt.seed = seed;
  chaos_opt.injector = &injector;
  MeasurementRunner chaos_runner(gpu, chaos_opt);

  std::size_t count = 0;
  for (const workload::BenchmarkDef& def : workload::benchmark_suite()) {
    if (benchmark_limit != 0 && count++ >= benchmark_limit) break;
    const std::size_t size = def.size_count - 1;
    const Sweep clean = sweep_pairs_resilient(clean_runner, def, size);
    const Sweep chaos = sweep_pairs_resilient(chaos_runner, def, size);
    GPPM_ASSERT(clean.missing.empty());  // healthy instruments always cover

    ChaosBenchmarkRow row;
    row.benchmark = def.name;
    row.best_fault_free = clean.best_pair();
    row.covered = chaos.results.size();
    row.total = chaos.total_cells();
    if (!chaos.results.empty()) {
      row.has_chaos_best = true;
      row.best_chaos = chaos.best_pair();
      row.comparable = chaos.find(row.best_fault_free) != nullptr;
      row.divergent =
          row.comparable && !(row.best_chaos == row.best_fault_free);
    }
    report.cells_total += row.total;
    report.cells_covered += row.covered;

    // Cells in TABLE III pair order, covered and missing interleaved back
    // into deterministic sequence.
    for (sim::FrequencyPair pair : dvfs::configurable_pairs(gpu)) {
      ChaosCell cell;
      cell.benchmark = def.name;
      cell.pair = pair;
      if (const PairResult* r = chaos.find(pair)) {
        cell.covered = true;
        cell.quality = r->quality;
      } else {
        for (const MissingCell& m : chaos.missing) {
          if (m.pair == pair) cell.quality = m.quality;
        }
      }
      report.cells.push_back(std::move(cell));
    }
    report.rows.push_back(std::move(row));
  }

  report.fault_checks = injector.total_checks();
  report.fault_fires = injector.total_fires();
  return report;
}

}  // namespace gppm::core
