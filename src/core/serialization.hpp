// Text serialization of fitted unified models.
//
// The deployment story behind the paper's models is: profile + fit once
// (offline, with the full measurement rig), predict at runtime (no rig).
// That requires moving a fitted model between processes; this module
// defines a stable, human-readable line format:
//
//   gppm-model 1
//   gpu <GTX285|GTX460|GTX480|GTX680>
//   target <power|exectime>
//   scaling <f|v2f>
//   max_variables <n>
//   intercept <value>
//   adjusted_r2 <value>
//   var <counter-name> <core|memory> <index> <coefficient> <cumulative-r2>
//   ...
//   end
//
// Values round-trip exactly (hex float formatting).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "core/unified_model.hpp"

namespace gppm::core {

/// Serialize a fitted model.
std::string serialize_model(const UnifiedModel& model);
void serialize_model(const UnifiedModel& model, std::ostream& out);

/// Stable 64-bit fingerprint of a fitted model: FNV-1a over the serialized
/// text, so two models collide exactly when their serialized forms are
/// byte-identical and the fingerprint survives serialization round-trips.
/// The serving layer keys its prediction cache on this.
std::uint64_t model_fingerprint(const UnifiedModel& model);

/// Parse a serialized model.  Throws gppm::Error on malformed input,
/// unknown fields, version mismatch, or counters that do not exist in the
/// board's catalog.
UnifiedModel deserialize_model(const std::string& text);
UnifiedModel deserialize_model(std::istream& in);

}  // namespace gppm::core
