#include "core/features.hpp"

#include "common/error.hpp"

namespace gppm::core {

std::string to_string(TargetKind t) {
  return t == TargetKind::Power ? "power" : "exectime";
}

std::string to_string(FeatureScaling s) {
  return s == FeatureScaling::FrequencyOnly ? "f" : "V^2*f";
}

double feature_value(const profiler::CounterReading& reading,
                     sim::FrequencyPair pair, const sim::DeviceSpec& spec,
                     TargetKind target, FeatureScaling scaling) {
  const bool is_core = reading.klass == profiler::EventClass::Core;
  const sim::ClockDomainSpec& domain =
      is_core ? spec.core_clock : spec.mem_clock;
  const sim::ClockLevel level = is_core ? pair.core : pair.mem;
  const double freq_ghz = domain.at(level).frequency.as_ghz();
  if (target == TargetKind::Power) {
    // Eq. 1: per-second event rate x frequency — optionally x V^2 (the
    // voltage-aware extension; see FeatureScaling).
    const double vsq = scaling == FeatureScaling::VoltageSquaredFrequency
                           ? domain.voltage_sq_ratio(level)
                           : 1.0;
    return reading.per_second * freq_ghz * vsq;
  }
  // Eq. 2: event total / frequency.  Voltage does not change latency.
  return reading.total / freq_ghz;
}

bool is_mix_feature(const std::string& name) {
  return name.rfind(kMixFeaturePrefix, 0) == 0;
}

profiler::CounterReading baseline_reading(profiler::EventClass klass) {
  profiler::CounterReading r;
  r.name = klass == profiler::EventClass::Core ? kBaselineCoreFeature
                                               : kBaselineMemFeature;
  r.klass = klass;
  r.total = 1.0;
  r.per_second = 1.0;
  return r;
}

RegressionTable build_table(const Dataset& dataset, TargetKind target,
                            const sim::FrequencyPair* pair_filter,
                            FeatureScaling scaling,
                            bool include_baseline_terms) {
  GPPM_CHECK(!dataset.samples.empty(), "empty dataset");
  const sim::DeviceSpec& spec = sim::device_spec(dataset.model);
  const std::size_t n_counters = dataset.samples.front().counters.counters.size();
  GPPM_CHECK(n_counters > 0, "sample without counters");
  const std::size_t n_features =
      n_counters + (include_baseline_terms ? 2 : 0);

  // Count rows first.
  std::size_t n_rows = 0;
  for (const Sample& s : dataset.samples) {
    for (const Measurement& m : s.runs) {
      if (pair_filter && !(m.pair == *pair_filter)) continue;
      ++n_rows;
      (void)m;
    }
  }
  GPPM_CHECK(n_rows > 0, "no rows after pair filter");

  RegressionTable table;
  table.features = linalg::Matrix(n_rows, n_features);
  table.target.resize(n_rows);
  table.rows.reserve(n_rows);
  table.feature_names.reserve(n_features);
  for (const profiler::CounterReading& r :
       dataset.samples.front().counters.counters) {
    table.feature_names.push_back(r.name);
  }
  if (include_baseline_terms) {
    table.feature_names.push_back(kBaselineCoreFeature);
    table.feature_names.push_back(kBaselineMemFeature);
  }

  std::size_t row = 0;
  for (std::size_t si = 0; si < dataset.samples.size(); ++si) {
    const Sample& s = dataset.samples[si];
    GPPM_CHECK(s.counters.counters.size() == n_counters,
               "inconsistent counter count across samples");
    for (const Measurement& m : s.runs) {
      if (pair_filter && !(m.pair == *pair_filter)) continue;
      for (std::size_t c = 0; c < n_counters; ++c) {
        table.features(row, c) =
            feature_value(s.counters.counters[c], m.pair, spec, target,
                          scaling);
      }
      if (include_baseline_terms) {
        table.features(row, n_counters) =
            feature_value(baseline_reading(profiler::EventClass::Core),
                          m.pair, spec, target, scaling);
        table.features(row, n_counters + 1) =
            feature_value(baseline_reading(profiler::EventClass::Memory),
                          m.pair, spec, target, scaling);
      }
      table.target[row] = target == TargetKind::Power
                              ? m.avg_power.as_watts()
                              : m.exec_time.as_seconds();
      table.rows.push_back({si, m.pair});
      ++row;
    }
  }
  GPPM_ASSERT(row == n_rows);
  return table;
}

}  // namespace gppm::core
