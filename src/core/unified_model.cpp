#include "core/unified_model.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "profiler/counters.hpp"

namespace gppm::core {

UnifiedModel UnifiedModel::fit(const Dataset& dataset, TargetKind target,
                               const ModelOptions& options,
                               const sim::FrequencyPair* pair_filter) {
  return ModelFamily::fit(dataset, target, options, pair_filter).full();
}

ModelFamily ModelFamily::fit(const Dataset& dataset, TargetKind target,
                             const ModelOptions& options,
                             const sim::FrequencyPair* pair_filter) {
  RegressionTable table =
      build_table(dataset, target, pair_filter, options.scaling,
                  options.include_baseline_terms);

  if (!options.candidate_features.empty()) {
    // Zero out non-candidate columns; selection skips constant columns, so
    // this restricts the search without perturbing the engine.
    for (std::size_t c = 0; c < table.feature_names.size(); ++c) {
      const bool allowed =
          std::find(options.candidate_features.begin(),
                    options.candidate_features.end(),
                    table.feature_names[c]) != options.candidate_features.end();
      if (allowed) continue;
      for (std::size_t r = 0; r < table.features.rows(); ++r) {
        table.features(r, c) = 0.0;
      }
    }
  }

  stats::SelectionOptions sel;
  sel.max_variables = options.max_variables;
  sel.engine = options.engine;
  sel.parallel = options.parallel;
  const stats::SelectionResult result =
      stats::forward_select(table.features, table.target, sel);

  const auto& catalog =
      profiler::counter_catalog(sim::device_spec(dataset.model).architecture);
  const auto& readings = dataset.samples.front().counters.counters;
  // Samples carry at least the full catalog; anything past it must be a
  // mix-level pseudo-counter (gppm::mix appends those to member profiles).
  GPPM_CHECK(readings.size() >= catalog.size(),
             "sample has fewer counters than the board catalog");
  for (std::size_t c = catalog.size(); c < readings.size(); ++c) {
    GPPM_CHECK(is_mix_feature(readings[c].name),
               "unexpected extra counter past the catalog: " +
                   readings[c].name);
  }
  GPPM_CHECK(readings.size() + (options.include_baseline_terms ? 2u : 0u) ==
                 table.feature_names.size(),
             "catalog/feature mismatch");

  ModelFamily family;
  family.prefixes_.reserve(result.selected.size());
  for (std::size_t k = 1; k <= result.selected.size(); ++k) {
    const stats::OlsFit& prefix = result.prefix_fits[k - 1];
    UnifiedModel model;
    model.target_ = target;
    model.scaling_ = options.scaling;
    model.gpu_ = dataset.model;
    model.intercept_ = prefix.intercept;
    model.adjusted_r2_ = prefix.adjusted_r_squared;
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t col = result.selected[i];
      SelectedVariable var;
      var.counter = table.feature_names[col];
      // Columns map: catalog counters first, then any mix pseudo-counters
      // (klass carried on the reading itself), then the two baseline
      // pseudo-features: core first, mem second.
      var.klass = col < catalog.size()
                      ? catalog[col].klass
                      : (col < readings.size()
                             ? readings[col].klass
                             : (col == readings.size()
                                    ? profiler::EventClass::Core
                                    : profiler::EventClass::Memory));
      var.coefficient = prefix.coefficients[i];
      var.cumulative_adjusted_r2 = result.r2_trace[i];
      model.variables_.push_back(std::move(var));
      model.counter_indices_.push_back(col);
    }
    family.prefixes_.push_back(std::move(model));
  }
  return family;
}

const UnifiedModel& ModelFamily::at(std::size_t k) const {
  GPPM_CHECK(k >= 1, "prefix size must be >= 1");
  GPPM_CHECK(!prefixes_.empty(), "empty model family");
  const std::size_t idx = std::min(k, prefixes_.size()) - 1;
  return prefixes_[idx];
}

UnifiedModel::Parts UnifiedModel::parts() const {
  Parts p;
  p.target = target_;
  p.scaling = scaling_;
  p.gpu = gpu_;
  p.intercept = intercept_;
  p.adjusted_r2 = adjusted_r2_;
  p.variables = variables_;
  p.counter_indices = counter_indices_;
  return p;
}

UnifiedModel UnifiedModel::from_parts(Parts parts) {
  GPPM_CHECK(parts.variables.size() == parts.counter_indices.size(),
             "variables/indices size mismatch");
  const auto& catalog =
      profiler::counter_catalog(sim::device_spec(parts.gpu).architecture);
  for (std::size_t i = 0; i < parts.variables.size(); ++i) {
    const std::size_t idx = parts.counter_indices[i];
    // Catalog counters must match by name; indices past the catalog are
    // either mix pseudo-counters (validated by prefix — their position
    // depends on how many the fitting profile carried) or the two baseline
    // pseudo-features.
    if (idx < catalog.size()) {
      GPPM_CHECK(catalog[idx].name == parts.variables[i].counter,
                 "counter/index mismatch: " + parts.variables[i].counter);
    } else {
      const std::string& name = parts.variables[i].counter;
      GPPM_CHECK(is_mix_feature(name) || name == kBaselineCoreFeature ||
                     name == kBaselineMemFeature,
                 "feature index past catalog with unrecognized name: " + name);
    }
  }
  UnifiedModel model;
  model.target_ = parts.target;
  model.scaling_ = parts.scaling;
  model.gpu_ = parts.gpu;
  model.intercept_ = parts.intercept;
  model.adjusted_r2_ = parts.adjusted_r2;
  model.variables_ = std::move(parts.variables);
  model.counter_indices_ = std::move(parts.counter_indices);
  return model;
}

double UnifiedModel::predict(const profiler::ProfileResult& counters,
                             sim::FrequencyPair pair) const {
  const sim::DeviceSpec& spec = sim::device_spec(gpu_);
  double acc = intercept_;
  for (std::size_t i = 0; i < variables_.size(); ++i) {
    const std::size_t idx = counter_indices_[i];
    profiler::CounterReading reading;
    if (idx < counters.counters.size()) {
      reading = counters.counters[idx];
      GPPM_CHECK(reading.name == variables_[i].counter,
                 "counter order mismatch: expected " + variables_[i].counter);
    } else {
      // A mix-term model cannot be driven by a profile that lacks the mix
      // pseudo-counters — that would silently substitute a unit baseline.
      GPPM_CHECK(!is_mix_feature(variables_[i].counter),
                 "profile lacks mix pseudo-counter " + variables_[i].counter);
      // Baseline pseudo-feature (extension): unit-rate reading.
      reading = baseline_reading(variables_[i].klass);
    }
    acc += variables_[i].coefficient *
           feature_value(reading, pair, spec, target_, scaling_);
  }
  return acc;
}

}  // namespace gppm::core
