// Per-architecture hardware-counter catalogs.
//
// The paper's modeling uses the CUDA Profiler's counters: 32 on the Tesla
// board, 74 on the Fermi boards, 108 on the Kepler board (Section IV-A).
// Each catalog entry derives its value from the engine's ground-truth
// events and carries the paper's core-event / memory-event classification
// ("core-events are the events which happen within the core where
// memory-events are un-core events such as memory accesses").
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "gpusim/arch.hpp"
#include "gpusim/events.hpp"

namespace gppm::profiler {

/// The paper's two-way counter classification used by Eq. 1 / Eq. 2.
enum class EventClass { Core, Memory };

std::string to_string(EventClass c);

/// One hardware counter exposed by an architecture's profiler.
struct CounterDef {
  std::string name;
  EventClass klass;
  /// Derive the counter value from ground-truth events.  Deterministic;
  /// the profiler layer adds the observation artifacts on top.
  std::function<double(const sim::HardwareEvents&)> extract;
};

/// The counter catalog of an architecture.  Sizes match the paper exactly:
/// Tesla 32, Fermi 74, Kepler 108.  Built once per process.
const std::vector<CounterDef>& counter_catalog(sim::Architecture arch);

/// Index of a counter by name; throws on unknown names.
std::size_t counter_index(sim::Architecture arch, const std::string& name);

}  // namespace gppm::profiler
