#include "profiler/cuda_profiler.hpp"

#include <cmath>

#include "common/rng.hpp"

namespace gppm::profiler {

CudaProfiler::CudaProfiler(std::uint64_t seed) : seed_(seed) {}

void CudaProfiler::set_sampling_sigma(double sigma) {
  GPPM_CHECK(sigma >= 0.0, "negative sampling sigma");
  sampling_sigma_ = sigma;
}

const std::vector<std::string>& CudaProfiler::unsupported_benchmarks() {
  // The paper: "All the benchmark programs ... except for three (mummergpu,
  // backprop and pathfinder) from Rodinia and one (bfs) ... failed to be
  // analyzed by the CUDA Profiler".
  static const std::vector<std::string> list = {"mummergpu", "backprop",
                                                "pathfinder", "bfs"};
  return list;
}

bool CudaProfiler::supports(const std::string& benchmark_name) {
  for (const std::string& n : unsupported_benchmarks()) {
    if (n == benchmark_name) return false;
  }
  return true;
}

ProfileResult CudaProfiler::collect_events(sim::Architecture arch,
                                           const sim::HardwareEvents& events,
                                           Duration run_time,
                                           std::uint64_t run_key) const {
  const auto& catalog = counter_catalog(arch);

  ProfileResult out;
  out.run_time = run_time;
  out.counters.reserve(catalog.size());
  const double run_seconds = run_time.as_seconds();
  GPPM_CHECK(run_seconds > 0.0, "zero-length profiled run");

  for (const CounterDef& def : catalog) {
    const double truth = def.extract(events);
    // SM-sampling extrapolation: the profiler counts on one SM/TPC and
    // multiplies up; workload imbalance turns into a systematic relative
    // error that is stable for a given (counter, workload) pair.
    Rng rng = Rng(seed_).fork(fnv1a(def.name) ^ run_key);
    double observed = truth * (1.0 + rng.normal(0.0, sampling_sigma_));
    observed = std::max(0.0, std::round(observed));  // counters are integers

    CounterReading r;
    r.name = def.name;
    r.klass = def.klass;
    r.total = observed;
    r.per_second = observed / run_seconds;
    out.counters.push_back(std::move(r));
  }
  return out;
}

ProfileResult CudaProfiler::collect(const sim::Gpu& gpu,
                                    const sim::RunProfile& profile) const {
  if (!supports(profile.benchmark_name)) {
    throw ProfilerUnsupported(profile.benchmark_name);
  }

  const sim::RunExecution exec = gpu.run(profile);

  // A stable key for this run's identity: the set of kernels profiled.
  std::uint64_t run_key = fnv1a(profile.benchmark_name);
  for (const sim::KernelProfile& k : profile.kernels) run_key ^= fnv1a(k.name);

  return collect_events(gpu.spec().architecture, exec.events, exec.total_time,
                        run_key);
}

}  // namespace gppm::profiler
