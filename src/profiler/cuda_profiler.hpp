// CUDA-Profiler-like counter collection.
//
// Reproduces the observational properties of the paper's CUDA Profiler
// v2.01 workflow:
//   * counters are collected once per (benchmark, input size) at a chosen
//     operating point (the paper profiles at the default (H-H));
//   * values are extrapolated from a sampled subset of SMs, so readings
//     carry a systematic per-counter, per-workload error;
//   * a handful of programs cannot be analyzed at all and raise
//     ProfilerUnsupported (the paper drops mummergpu, backprop, pathfinder
//     and bfs for this reason, leaving 114 modeling samples);
//   * each counter is reported both as a run total (used by the paper's
//     performance model) and per second of run time (used by the power
//     model, "in order to predict the average W of the program").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/units.hpp"
#include "gpusim/engine.hpp"
#include "profiler/counters.hpp"

namespace gppm::profiler {

/// Raised when the profiler cannot analyze a program.
class ProfilerUnsupported : public Error {
 public:
  explicit ProfilerUnsupported(const std::string& benchmark)
      : Error("CUDA profiler cannot analyze benchmark: " + benchmark) {}
};

/// One collected counter.
struct CounterReading {
  std::string name;
  EventClass klass;
  double total = 0.0;       ///< run-total value
  double per_second = 0.0;  ///< total / run time
};

/// Result of profiling one run.
struct ProfileResult {
  std::vector<CounterReading> counters;  ///< catalog order
  Duration run_time;                     ///< run time during profiling
};

/// The profiler.  Deterministic given its seed; observation errors are
/// keyed on (counter, kernel set), not on call order.
class CudaProfiler {
 public:
  explicit CudaProfiler(std::uint64_t seed = 11);

  /// True if the profiler can analyze the benchmark (by name).
  static bool supports(const std::string& benchmark_name);

  /// Names of the unsupported programs (paper Section IV-A).
  static const std::vector<std::string>& unsupported_benchmarks();

  /// Collect counters for `profile` executed on `gpu` at its current
  /// operating point.  Throws ProfilerUnsupported for the unsupported set.
  ProfileResult collect(const sim::Gpu& gpu,
                        const sim::RunProfile& profile) const;

  /// Collect counters directly from an already-synthesized event record —
  /// the observation layer of `collect` without the execution step.  This
  /// is what the mix engine uses to profile *blended* events from
  /// co-scheduled kernels: the same catalog, the same SM-sampling error
  /// model, keyed on `run_key` (the caller's stable identity for the run,
  /// e.g. an fnv1a over the co-scheduled kernel names).
  ProfileResult collect_events(sim::Architecture arch,
                               const sim::HardwareEvents& events,
                               Duration run_time, std::uint64_t run_key) const;

  /// Relative stddev of the SM-sampling extrapolation error.
  double sampling_sigma() const { return sampling_sigma_; }
  void set_sampling_sigma(double sigma);

 private:
  std::uint64_t seed_;
  double sampling_sigma_ = 0.05;
};

}  // namespace gppm::profiler
