#include "profiler/counters.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace gppm::profiler {

namespace {

using sim::HardwareEvents;
using Extract = std::function<double(const HardwareEvents&)>;

/// Catalog under construction, with helpers that keep subpartition splits
/// deterministic and slightly imbalanced, like real uncore counters.
class CatalogBuilder {
 public:
  void add(std::string name, EventClass klass, Extract fn) {
    catalog_.push_back({std::move(name), klass, std::move(fn)});
  }

  /// Add `parts` counters named base_subp<i>_..., splitting `fn`'s value
  /// with a small deterministic imbalance between partitions.
  void add_split(const std::string& prefix, const std::string& suffix,
                 EventClass klass, int parts, Extract fn) {
    for (int i = 0; i < parts; ++i) {
      // +/-4% alternating imbalance, zero-sum across partitions.
      const double imbalance =
          (parts > 1) ? ((i % 2 == 0) ? 0.04 : -0.04) : 0.0;
      const double share = (1.0 + imbalance) / static_cast<double>(parts);
      add(prefix + "_subp" + std::to_string(i) + "_" + suffix, klass,
          [fn, share](const HardwareEvents& e) { return fn(e) * share; });
    }
  }

  /// prof_trigger counters: user triggers, always zero in normal runs.
  void add_prof_triggers(int n) {
    for (int i = 0; i < n; ++i) {
      add("prof_trigger_0" + std::to_string(i), EventClass::Core,
          [](const HardwareEvents&) { return 0.0; });
    }
  }

  std::vector<CounterDef> take(std::size_t expected_size) {
    GPPM_CHECK(catalog_.size() == expected_size,
               "catalog size mismatch: built " +
                   std::to_string(catalog_.size()) + ", expected " +
                   std::to_string(expected_size));
    return std::move(catalog_);
  }

 private:
  std::vector<CounterDef> catalog_;
};

// Shorthand extractors.
double coalesced_ld(const HardwareEvents& e) {
  // Fully coalesced requests produce 4 transactions of 32B per warp; the
  // excess over that is the "incoherent" share.
  return std::min(e.gld_transactions, e.gld_requests * 4.0);
}
double incoherent_ld(const HardwareEvents& e) {
  return std::max(0.0, e.gld_transactions - e.gld_requests * 4.0);
}
double coalesced_st(const HardwareEvents& e) {
  return std::min(e.gst_transactions, e.gst_requests * 4.0);
}
double incoherent_st(const HardwareEvents& e) {
  return std::max(0.0, e.gst_transactions - e.gst_requests * 4.0);
}

// ---------------------------------------------------------------------
// Tesla (GT200): 32 counters.  No L1/L2 hierarchy — the only memory-side
// visibility is the coarse TPC-level transaction size bins, which is part
// of why the paper's Tesla models predict worst.
std::vector<CounterDef> build_tesla() {
  CatalogBuilder b;
  b.add("instructions", EventClass::Core,
        [](const HardwareEvents& e) { return e.insts_executed; });
  b.add("branch", EventClass::Core,
        [](const HardwareEvents& e) { return e.branches; });
  b.add("divergent_branch", EventClass::Core,
        [](const HardwareEvents& e) { return e.divergent_branches; });
  b.add("warp_serialize", EventClass::Core, [](const HardwareEvents& e) {
    return e.shared_bank_conflicts / 32.0 + e.divergent_branches;
  });
  b.add("gld_coherent", EventClass::Memory, coalesced_ld);
  b.add("gld_incoherent", EventClass::Memory, incoherent_ld);
  b.add("gst_coherent", EventClass::Memory, coalesced_st);
  b.add("gst_incoherent", EventClass::Memory, incoherent_st);
  // Transaction size bins (50/30/20% split over 32/64/128-byte segments).
  b.add("gld_32b", EventClass::Memory,
        [](const HardwareEvents& e) { return e.gld_transactions * 0.5; });
  b.add("gld_64b", EventClass::Memory,
        [](const HardwareEvents& e) { return e.gld_transactions * 0.3 / 2.0; });
  b.add("gld_128b", EventClass::Memory,
        [](const HardwareEvents& e) { return e.gld_transactions * 0.2 / 4.0; });
  b.add("gst_32b", EventClass::Memory,
        [](const HardwareEvents& e) { return e.gst_transactions * 0.5; });
  b.add("gst_64b", EventClass::Memory,
        [](const HardwareEvents& e) { return e.gst_transactions * 0.3 / 2.0; });
  b.add("gst_128b", EventClass::Memory,
        [](const HardwareEvents& e) { return e.gst_transactions * 0.2 / 4.0; });
  b.add("local_load", EventClass::Core,
        [](const HardwareEvents& e) { return e.insts_executed * 0.001; });
  b.add("local_store", EventClass::Core,
        [](const HardwareEvents& e) { return e.insts_executed * 0.0005; });
  b.add("shared_load", EventClass::Core,
        [](const HardwareEvents& e) { return e.shared_loads / 32.0; });
  b.add("shared_store", EventClass::Core,
        [](const HardwareEvents& e) { return e.shared_stores / 32.0; });
  b.add("tex_cache_hit", EventClass::Core,
        [](const HardwareEvents& e) { return e.tex_hits; });
  b.add("tex_cache_miss", EventClass::Memory,
        [](const HardwareEvents& e) { return e.tex_requests - e.tex_hits; });
  b.add("cta_launched", EventClass::Core,
        [](const HardwareEvents& e) { return e.blocks_launched; });
  b.add("sm_cta_launched", EventClass::Core,
        [](const HardwareEvents& e) { return e.blocks_launched / 30.0; });
  b.add("tlb_hit", EventClass::Memory, [](const HardwareEvents& e) {
    return (e.dram_reads + e.dram_writes) * 0.92;
  });
  b.add("tlb_miss", EventClass::Memory, [](const HardwareEvents& e) {
    return (e.dram_reads + e.dram_writes) * 0.08;
  });
  b.add_prof_triggers(8);
  return b.take(32);
}

// ---------------------------------------------------------------------
// Fermi (GF100/GF104): 74 counters.  L1/L2/FB visibility with two L2/FB
// subpartitions.
std::vector<CounterDef> build_fermi() {
  CatalogBuilder b;
  // SM-side (core) counters.
  b.add("inst_issued", EventClass::Core,
        [](const HardwareEvents& e) { return e.insts_issued; });
  b.add("inst_executed", EventClass::Core,
        [](const HardwareEvents& e) { return e.insts_executed; });
  for (int i = 0; i < 4; ++i) {
    const double share = 0.25;
    b.add("thread_inst_executed_" + std::to_string(i), EventClass::Core,
          [share](const HardwareEvents& e) {
            return e.insts_executed * 32.0 * share;
          });
  }
  for (int sm = 0; sm < 2; ++sm) {
    b.add("inst_issued1_" + std::to_string(sm), EventClass::Core,
          [](const HardwareEvents& e) { return e.insts_issued * 0.35; });
    b.add("inst_issued2_" + std::to_string(sm), EventClass::Core,
          [](const HardwareEvents& e) { return e.insts_issued * 0.325; });
  }
  b.add("branch", EventClass::Core,
        [](const HardwareEvents& e) { return e.branches; });
  b.add("divergent_branch", EventClass::Core,
        [](const HardwareEvents& e) { return e.divergent_branches; });
  b.add("warps_launched", EventClass::Core,
        [](const HardwareEvents& e) { return e.warps_launched; });
  b.add("threads_launched", EventClass::Core,
        [](const HardwareEvents& e) { return e.threads_launched; });
  b.add("sm_cta_launched", EventClass::Core,
        [](const HardwareEvents& e) { return e.blocks_launched; });
  b.add("active_cycles", EventClass::Core,
        [](const HardwareEvents& e) { return e.active_cycles; });
  b.add("active_warps", EventClass::Core,
        [](const HardwareEvents& e) { return e.active_warps; });
  b.add("shared_load", EventClass::Core,
        [](const HardwareEvents& e) { return e.shared_loads / 32.0; });
  b.add("shared_store", EventClass::Core,
        [](const HardwareEvents& e) { return e.shared_stores / 32.0; });
  b.add("l1_shared_bank_conflict", EventClass::Core,
        [](const HardwareEvents& e) { return e.shared_bank_conflicts; });
  b.add("local_load", EventClass::Core,
        [](const HardwareEvents& e) { return e.insts_executed * 0.001; });
  b.add("local_store", EventClass::Core,
        [](const HardwareEvents& e) { return e.insts_executed * 0.0005; });
  b.add("l1_global_load_hit", EventClass::Core,
        [](const HardwareEvents& e) { return e.l1_hits; });
  b.add("l1_global_load_miss", EventClass::Core,
        [](const HardwareEvents& e) { return e.l1_misses; });
  b.add("l1_local_load_hit", EventClass::Core,
        [](const HardwareEvents& e) { return e.insts_executed * 0.0008; });
  b.add("l1_local_load_miss", EventClass::Core,
        [](const HardwareEvents& e) { return e.insts_executed * 0.0002; });
  b.add("gld_request", EventClass::Core,
        [](const HardwareEvents& e) { return e.gld_requests; });
  b.add("gst_request", EventClass::Core,
        [](const HardwareEvents& e) { return e.gst_requests; });
  b.add_prof_triggers(8);
  // Un-core (memory) counters.
  b.add("uncached_global_load_transaction", EventClass::Memory,
        [](const HardwareEvents& e) { return e.gld_transactions * 0.1; });
  b.add("global_store_transaction", EventClass::Memory,
        [](const HardwareEvents& e) { return e.gst_transactions; });
  b.add_split("l2", "read_requests", EventClass::Memory, 2,
              [](const HardwareEvents& e) { return e.l2_reads; });
  b.add_split("l2", "write_requests", EventClass::Memory, 2,
              [](const HardwareEvents& e) { return e.l2_writes; });
  b.add_split("l2", "read_misses", EventClass::Memory, 2,
              [](const HardwareEvents& e) { return e.dram_reads; });
  b.add_split("l2", "write_misses", EventClass::Memory, 2,
              [](const HardwareEvents& e) { return e.dram_writes; });
  b.add_split("l2", "read_sector_queries", EventClass::Memory, 2,
              [](const HardwareEvents& e) { return e.l2_reads; });
  b.add_split("l2", "write_sector_queries", EventClass::Memory, 2,
              [](const HardwareEvents& e) { return e.l2_writes; });
  b.add_split("l2", "read_hit_sectors", EventClass::Memory, 2,
              [](const HardwareEvents& e) {
                return std::max(0.0, e.l2_reads - e.dram_reads);
              });
  b.add_split("l2", "write_hit_sectors", EventClass::Memory, 2,
              [](const HardwareEvents& e) {
                return std::max(0.0, e.l2_writes - e.dram_writes);
              });
  b.add_split("l2", "read_sysmem_sector_queries", EventClass::Memory, 2,
              [](const HardwareEvents& e) { return e.l2_reads * 0.01; });
  b.add_split("l2", "write_sysmem_sector_queries", EventClass::Memory, 2,
              [](const HardwareEvents& e) { return e.l2_writes * 0.01; });
  b.add_split("fb", "read_sectors", EventClass::Memory, 2,
              [](const HardwareEvents& e) { return e.dram_reads; });
  b.add_split("fb", "write_sectors", EventClass::Memory, 2,
              [](const HardwareEvents& e) { return e.dram_writes; });
  b.add_split("fb", "read_partial_sectors", EventClass::Memory, 2,
              [](const HardwareEvents& e) { return e.dram_reads * 0.05; });
  b.add_split("fb", "write_partial_sectors", EventClass::Memory, 2,
              [](const HardwareEvents& e) { return e.dram_writes * 0.05; });
  for (int t = 0; t < 2; ++t) {
    b.add("tex" + std::to_string(t) + "_cache_sector_queries",
          EventClass::Memory,
          [](const HardwareEvents& e) { return e.tex_requests / 2.0; });
    b.add("tex" + std::to_string(t) + "_cache_sector_misses",
          EventClass::Memory, [](const HardwareEvents& e) {
            return (e.tex_requests - e.tex_hits) / 2.0;
          });
  }
  b.add("elapsed_cycles_sm", EventClass::Core,
        [](const HardwareEvents& e) { return e.elapsed_cycles; });
  b.add("global_load_transaction", EventClass::Memory,
        [](const HardwareEvents& e) { return e.gld_transactions; });
  b.add_split("l2", "total_sector_queries", EventClass::Memory, 2,
              [](const HardwareEvents& e) { return e.l2_reads + e.l2_writes; });
  return b.take(74);
}

// ---------------------------------------------------------------------
// Kepler (GK104): 108 counters.  Everything Fermi exposes plus replay,
// atomic and scheduler-level visibility, and four L2/FB subpartitions —
// the richer view the paper credits for Kepler's better predictability.
std::vector<CounterDef> build_kepler() {
  CatalogBuilder b;
  b.add("inst_issued", EventClass::Core,
        [](const HardwareEvents& e) { return e.insts_issued; });
  b.add("inst_executed", EventClass::Core,
        [](const HardwareEvents& e) { return e.insts_executed; });
  b.add("thread_inst_executed", EventClass::Core,
        [](const HardwareEvents& e) { return e.insts_executed * 32.0; });
  b.add("not_predicated_off_thread_inst_executed", EventClass::Core,
        [](const HardwareEvents& e) { return e.insts_executed * 30.0; });
  for (int s = 0; s < 4; ++s) {
    b.add("inst_issued1_sched" + std::to_string(s), EventClass::Core,
          [](const HardwareEvents& e) { return e.insts_issued * 0.175; });
    b.add("inst_issued2_sched" + std::to_string(s), EventClass::Core,
          [](const HardwareEvents& e) { return e.insts_issued * 0.075; });
  }
  b.add("branch", EventClass::Core,
        [](const HardwareEvents& e) { return e.branches; });
  b.add("divergent_branch", EventClass::Core,
        [](const HardwareEvents& e) { return e.divergent_branches; });
  b.add("warps_launched", EventClass::Core,
        [](const HardwareEvents& e) { return e.warps_launched; });
  b.add("threads_launched", EventClass::Core,
        [](const HardwareEvents& e) { return e.threads_launched; });
  b.add("sm_cta_launched", EventClass::Core,
        [](const HardwareEvents& e) { return e.blocks_launched; });
  b.add("active_cycles", EventClass::Core,
        [](const HardwareEvents& e) { return e.active_cycles; });
  b.add("active_warps", EventClass::Core,
        [](const HardwareEvents& e) { return e.active_warps; });
  b.add("shared_load", EventClass::Core,
        [](const HardwareEvents& e) { return e.shared_loads / 32.0; });
  b.add("shared_store", EventClass::Core,
        [](const HardwareEvents& e) { return e.shared_stores / 32.0; });
  b.add("shared_load_replay", EventClass::Core,
        [](const HardwareEvents& e) { return e.shared_bank_conflicts * 0.6; });
  b.add("shared_store_replay", EventClass::Core,
        [](const HardwareEvents& e) { return e.shared_bank_conflicts * 0.4; });
  b.add("local_load", EventClass::Core,
        [](const HardwareEvents& e) { return e.insts_executed * 0.001; });
  b.add("local_store", EventClass::Core,
        [](const HardwareEvents& e) { return e.insts_executed * 0.0005; });
  b.add("l1_global_load_hit", EventClass::Core,
        [](const HardwareEvents& e) { return e.l1_hits; });
  b.add("l1_global_load_miss", EventClass::Core,
        [](const HardwareEvents& e) { return e.l1_misses; });
  b.add("l1_local_load_hit", EventClass::Core,
        [](const HardwareEvents& e) { return e.insts_executed * 0.0008; });
  b.add("l1_local_load_miss", EventClass::Core,
        [](const HardwareEvents& e) { return e.insts_executed * 0.0002; });
  b.add("l1_shared_bank_conflict", EventClass::Core,
        [](const HardwareEvents& e) { return e.shared_bank_conflicts; });
  b.add("gld_request", EventClass::Core,
        [](const HardwareEvents& e) { return e.gld_requests; });
  b.add("gst_request", EventClass::Core,
        [](const HardwareEvents& e) { return e.gst_requests; });
  b.add("global_ld_mem_divergence_replays", EventClass::Core, incoherent_ld);
  b.add("global_st_mem_divergence_replays", EventClass::Core, incoherent_st);
  b.add("atom_count", EventClass::Core,
        [](const HardwareEvents& e) { return e.shared_stores * 0.05; });
  b.add("gred_count", EventClass::Core,
        [](const HardwareEvents& e) { return e.shared_stores * 0.02; });
  b.add("barrier_syncs", EventClass::Core,
        [](const HardwareEvents& e) { return e.barrier_syncs; });
  b.add_prof_triggers(8);
  // Un-core: four L2 / FB subpartitions on GK104.
  b.add("gld_transactions", EventClass::Memory,
        [](const HardwareEvents& e) { return e.gld_transactions; });
  b.add("gst_transactions", EventClass::Memory,
        [](const HardwareEvents& e) { return e.gst_transactions; });
  b.add_split("l2", "read_requests", EventClass::Memory, 4,
              [](const HardwareEvents& e) { return e.l2_reads; });
  b.add_split("l2", "write_requests", EventClass::Memory, 4,
              [](const HardwareEvents& e) { return e.l2_writes; });
  b.add_split("l2", "read_misses", EventClass::Memory, 4,
              [](const HardwareEvents& e) { return e.dram_reads; });
  b.add_split("l2", "write_misses", EventClass::Memory, 4,
              [](const HardwareEvents& e) { return e.dram_writes; });
  b.add_split("l2", "read_hit_sectors", EventClass::Memory, 4,
              [](const HardwareEvents& e) {
                return std::max(0.0, e.l2_reads - e.dram_reads);
              });
  b.add_split("l2", "write_hit_sectors", EventClass::Memory, 4,
              [](const HardwareEvents& e) {
                return std::max(0.0, e.l2_writes - e.dram_writes);
              });
  b.add_split("fb", "read_sectors", EventClass::Memory, 4,
              [](const HardwareEvents& e) { return e.dram_reads; });
  b.add_split("fb", "write_sectors", EventClass::Memory, 4,
              [](const HardwareEvents& e) { return e.dram_writes; });
  for (int t = 0; t < 4; ++t) {
    b.add("tex" + std::to_string(t) + "_cache_sector_queries",
          EventClass::Memory,
          [](const HardwareEvents& e) { return e.tex_requests / 4.0; });
    b.add("tex" + std::to_string(t) + "_cache_sector_misses",
          EventClass::Memory, [](const HardwareEvents& e) {
            return (e.tex_requests - e.tex_hits) / 4.0;
          });
  }
  b.add("elapsed_cycles_sm", EventClass::Core,
        [](const HardwareEvents& e) { return e.elapsed_cycles; });
  b.add_split("l2", "read_sysmem_sector_queries", EventClass::Memory, 4,
              [](const HardwareEvents& e) { return e.l2_reads * 0.01; });
  b.add_split("l2", "write_sysmem_sector_queries", EventClass::Memory, 4,
              [](const HardwareEvents& e) { return e.l2_writes * 0.01; });
  b.add_split("fb", "read_partial_sectors", EventClass::Memory, 4,
              [](const HardwareEvents& e) { return e.dram_reads * 0.05; });
  b.add_split("fb", "write_partial_sectors", EventClass::Memory, 4,
              [](const HardwareEvents& e) { return e.dram_writes * 0.05; });
  b.add_split("l2", "atomic_queries", EventClass::Memory, 4,
              [](const HardwareEvents& e) { return e.shared_stores * 0.07; });
  return b.take(108);
}

}  // namespace

std::string to_string(EventClass c) {
  return c == EventClass::Core ? "core" : "memory";
}

const std::vector<CounterDef>& counter_catalog(sim::Architecture arch) {
  static const std::vector<CounterDef> tesla = build_tesla();
  static const std::vector<CounterDef> fermi = build_fermi();
  static const std::vector<CounterDef> kepler = build_kepler();
  switch (arch) {
    case sim::Architecture::Tesla: return tesla;
    case sim::Architecture::Fermi: return fermi;
    case sim::Architecture::Kepler: return kepler;
  }
  throw Error("unknown architecture");
}

std::size_t counter_index(sim::Architecture arch, const std::string& name) {
  const auto& catalog = counter_catalog(arch);
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    if (catalog[i].name == name) return i;
  }
  throw Error("unknown counter: " + name);
}

}  // namespace gppm::profiler
