// Length-prefixed, versioned, checksummed framing for the gppm RPC layer.
//
// Every message on a gppm connection is one frame:
//
//   offset  size  field
//        0     4  magic "GPPM"
//        4     1  protocol version (kProtocolVersion)
//        5     1  frame type (FrameType)
//        6     2  flags (LE u16, reserved — must be zero)
//        8     4  payload size (LE u32)
//       12     4  payload CRC-32 (LE u32, IEEE)
//       16     8  deadline in microseconds (LE u64, 0 = none)
//       24     …  payload
//
// The deadline rides in the frame header, not the payload, so the server
// can stamp it onto the bridged serve::Request before the payload codec
// runs — request frames carry the client's service deadline, every other
// frame carries 0.
//
// FrameDecoder reassembles frames from an arbitrary chunking of the byte
// stream (TCP segmentation, injected short reads).  Header validation runs
// as soon as the 24 header bytes are buffered — a frame announcing more
// than `max_payload` bytes is rejected *before* any allocation for it, so
// a malicious length field cannot trigger an unbounded alloc.  All
// failures throw ProtocolError; the caller drops the connection.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/wire.hpp"

namespace gppm::net {

inline constexpr std::array<std::uint8_t, 4> kFrameMagic = {'G', 'P', 'P',
                                                            'M'};
/// Highest protocol version this build speaks.  Version 2 added the
/// health frame pair (HealthRequest/HealthResponse); version 3 added the
/// optional tenant-id trailer on PredictRequest payloads (tenant-0
/// requests keep the version-1 byte layout, so legacy peers interoperate
/// untouched until a nonzero tenant actually rides the wire).
inline constexpr std::uint8_t kProtocolVersion = 3;
/// The original wire version.  Every pre-health frame type is still
/// emitted at this version so a v1-only peer interoperates untouched on
/// the predict path; only the newer frame kinds ride a v2 header, which a
/// v1 peer rejects cleanly (ProtocolError -> typed ErrorReply + drop)
/// instead of mis-parsing.
inline constexpr std::uint8_t kBaseProtocolVersion = 1;
inline constexpr std::size_t kFrameHeaderSize = 24;
/// Default per-frame payload cap.  A full Kepler counter vector with names
/// is ~5 KiB; 1 MiB leaves two orders of magnitude of headroom while
/// bounding what one frame can make a peer buffer.
inline constexpr std::size_t kDefaultMaxPayload = 1u << 20;

/// Message kinds understood by this protocol version.
enum class FrameType : std::uint8_t {
  Ping = 1,             ///< u64 token, echoed back in a Pong
  Pong = 2,             ///< u64 token
  InfoRequest = 3,      ///< empty payload
  InfoResponse = 4,     ///< boards + model fingerprints (protocol.hpp)
  PredictRequest = 5,   ///< request id + serve::Request
  PredictResponse = 6,  ///< request id + serve::Response
  ErrorReply = 7,       ///< u16 code + message; sent before dropping a peer
  HealthRequest = 8,    ///< v2: u64 token; answered off the predict path
  HealthResponse = 9,   ///< v2: token + HealthStatus (protocol.hpp)
};

/// True for the type values the given protocol version defines.
bool frame_type_known(std::uint8_t raw,
                      std::uint8_t version = kProtocolVersion);

/// The lowest protocol version that defines `type` — the version a frame
/// of that type is stamped with on the wire.
std::uint8_t frame_min_version(FrameType type);

std::string to_string(FrameType type);

struct FrameHeader {
  FrameType type = FrameType::Ping;
  std::uint8_t version = kBaseProtocolVersion;
  std::uint16_t flags = 0;
  std::uint32_t payload_size = 0;
  std::uint32_t payload_crc = 0;
  std::uint64_t deadline_micros = 0;
};

struct Frame {
  FrameHeader header;
  std::vector<std::uint8_t> payload;
};

/// A decoded frame whose payload is a *view* into the decoder's internal
/// buffer — no copy.  The view stays valid until the next feed() on the
/// decoder that produced it (feed may compact or reallocate the buffer);
/// consumers that must hold payload bytes across a read call copy them
/// (or use next(), which does exactly that).
struct FrameView {
  FrameHeader header;
  std::span<const std::uint8_t> payload;
};

/// Serialize one frame onto the end of `out` (header computed from the
/// payload).  `version` 0 stamps frame_min_version(type), so legacy
/// traffic stays v1 on the wire; codecs whose payload uses a newer layout
/// (a tenant-carrying PredictRequest) pass the version that layout
/// requires.  Appending lets a writer batch several frames into one
/// buffer and one socket write.
void encode_frame_into(std::vector<std::uint8_t>& out, FrameType type,
                       std::span<const std::uint8_t> payload,
                       std::uint64_t deadline_micros = 0,
                       std::uint8_t version = 0);

/// Serialize one frame into a fresh buffer (wraps encode_frame_into).
std::vector<std::uint8_t> encode_frame(FrameType type,
                                       std::span<const std::uint8_t> payload,
                                       std::uint64_t deadline_micros = 0,
                                       std::uint8_t version = 0);
/// Convenience overload so braced payload literals ({0x01, 0x02}, {})
/// keep working; vectors go through the span overload.
inline std::vector<std::uint8_t> encode_frame(
    FrameType type, std::initializer_list<std::uint8_t> payload,
    std::uint64_t deadline_micros = 0, std::uint8_t version = 0) {
  return encode_frame(
      type, std::span<const std::uint8_t>(payload.begin(), payload.size()),
      deadline_micros, version);
}

/// Incremental frame reassembler over an arbitrarily chunked byte stream.
class FrameDecoder {
 public:
  /// `max_version` caps the protocol versions this decoder accepts
  /// (inclusive; the floor is kBaseProtocolVersion).  The default speaks
  /// everything this build knows; passing kBaseProtocolVersion simulates a
  /// v1-only peer, which the version-gating tests use to prove newer frame
  /// kinds are rejected cleanly rather than mis-parsed.
  explicit FrameDecoder(std::size_t max_payload = kDefaultMaxPayload,
                        std::uint8_t max_version = kProtocolVersion)
      : max_payload_(max_payload), max_version_(max_version) {}

  /// Buffer `size` more stream bytes.
  void feed(const std::uint8_t* data, std::size_t size);

  /// Next complete frame with its payload copied out, or nullopt while one
  /// is still partial.  Throws ProtocolError on bad magic / version / flags
  /// / oversized declaration / CRC mismatch; the decoder is unusable
  /// afterwards and the connection should be dropped.
  std::optional<Frame> next();

  /// Zero-copy variant of next(): the returned payload is a span into this
  /// decoder's buffer, valid only until the next feed().  The CRC check
  /// runs in place over the buffered bytes, so a valid frame is surfaced
  /// without a single payload copy.
  std::optional<FrameView> next_view();

  /// Bytes buffered but not yet returned as frames (nonzero at connection
  /// close = the peer died mid-frame).
  std::size_t buffered() const { return buffer_.size() - consumed_; }

  /// Capacity of the internal stream buffer — observability hook for the
  /// steady-state no-allocation tests.
  std::size_t buffer_capacity() const { return buffer_.capacity(); }

 private:
  /// Validate and parse the header at the front of the unconsumed region.
  /// nullopt while the header or declared payload is still partial; throws
  /// ProtocolError on any malformed field.
  std::optional<FrameHeader> parse_ready_header() const;

  std::size_t max_payload_;
  std::uint8_t max_version_ = kProtocolVersion;
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;
};

}  // namespace gppm::net
