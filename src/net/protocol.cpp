#include "net/protocol.hpp"

#include <cmath>

namespace gppm::net {

namespace {

/// Decode a wire enum byte, rejecting values outside [0, count).
template <typename E>
E checked_enum(std::uint8_t raw, std::uint8_t count, const char* what) {
  if (raw >= count) {
    throw ProtocolError(std::string("out-of-range ") + what + " value " +
                        std::to_string(raw));
  }
  return static_cast<E>(raw);
}

void encode_pair(WireWriter& w, sim::FrequencyPair pair) {
  w.u8(static_cast<std::uint8_t>(sim::level_index(pair.core)));
  w.u8(static_cast<std::uint8_t>(sim::level_index(pair.mem)));
}

sim::FrequencyPair decode_pair(WireReader& r) {
  sim::FrequencyPair pair;
  pair.core = checked_enum<sim::ClockLevel>(r.u8(), 3, "core clock level");
  pair.mem = checked_enum<sim::ClockLevel>(r.u8(), 3, "memory clock level");
  return pair;
}

void encode_counters(WireWriter& w, const profiler::ProfileResult& counters) {
  GPPM_CHECK(counters.counters.size() <= 0xffff, "too many counters");
  w.u16(static_cast<std::uint16_t>(counters.counters.size()));
  for (const profiler::CounterReading& c : counters.counters) {
    w.str(c.name);
    w.u8(static_cast<std::uint8_t>(c.klass));
    w.f64(c.total);
    w.f64(c.per_second);
  }
  w.f64(counters.run_time.as_seconds());
}

profiler::ProfileResult decode_counters(WireReader& r) {
  profiler::ProfileResult result;
  const std::size_t count = r.u16();
  // Each reading is at least 19 bytes (empty name); a count the remaining
  // bytes cannot possibly hold is rejected before reserving for it.
  if (count * 19 > r.remaining()) {
    throw ProtocolError("counter count " + std::to_string(count) +
                        " exceeds payload");
  }
  result.counters.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    profiler::CounterReading reading;
    reading.name = r.str();
    reading.klass =
        checked_enum<profiler::EventClass>(r.u8(), 2, "event class");
    reading.total = r.f64();
    reading.per_second = r.f64();
    result.counters.push_back(std::move(reading));
  }
  result.run_time = Duration::seconds(r.f64());
  return result;
}

}  // namespace

std::uint64_t deadline_to_micros(Duration deadline) {
  const double seconds = deadline.as_seconds();
  if (!(seconds > 0.0)) return 0;
  return static_cast<std::uint64_t>(std::ceil(seconds * 1e6));
}

Duration deadline_from_micros(std::uint64_t micros) {
  return Duration::microseconds(static_cast<double>(micros));
}

std::vector<std::uint8_t> encode_predict_request(
    std::uint64_t request_id, const serve::Request& request) {
  WireWriter w;
  w.u64(request_id);
  w.u8(static_cast<std::uint8_t>(request.kind));
  w.u8(static_cast<std::uint8_t>(request.gpu));
  w.u8(static_cast<std::uint8_t>(request.policy));
  encode_pair(w, request.pair);
  encode_counters(w, request.counters);
  // Tenant trailer (v3): only a nonzero tenant changes the byte layout, so
  // tenant-0 traffic stays bit-identical to what a v1 peer expects.
  if (request.tenant != 0) w.u32(request.tenant);
  return w.take();
}

std::uint8_t predict_request_version(const serve::Request& request) {
  return request.tenant != 0 ? 3 : kBaseProtocolVersion;
}

DecodedRequest decode_predict_request(std::span<const std::uint8_t> payload,
                                      std::uint64_t deadline_micros) {
  WireReader r(payload);
  DecodedRequest decoded;
  decoded.request_id = r.u64();
  decoded.request.kind = checked_enum<serve::RequestKind>(
      r.u8(), serve::kRequestKindCount, "request kind");
  decoded.request.gpu = checked_enum<sim::GpuModel>(
      r.u8(), static_cast<std::uint8_t>(sim::kAllGpus.size()), "gpu model");
  decoded.request.policy =
      checked_enum<core::GovernorPolicy>(r.u8(), 3, "governor policy");
  decoded.request.pair = decode_pair(r);
  decoded.request.counters = decode_counters(r);
  decoded.request.deadline = deadline_from_micros(deadline_micros);
  if (r.remaining() == 4) {
    decoded.request.tenant = r.u32();
    // The trailer exists precisely because the tenant is nonzero; a zero
    // here means the encoder and decoder disagree about the layout.
    if (decoded.request.tenant == 0) {
      throw ProtocolError("tenant trailer carries tenant 0");
    }
  }
  r.expect_done("predict-request");
  return decoded;
}

void encode_predict_response_into(WireWriter& w, std::uint64_t request_id,
                                  const serve::Response& response) {
  w.u64(request_id);
  w.u8(static_cast<std::uint8_t>(response.kind));
  w.u8(static_cast<std::uint8_t>(response.status));
  encode_pair(w, response.pair);
  w.f64(response.power_watts);
  w.f64(response.time_seconds);
  w.f64(response.energy_joules);
  w.u8(response.cache_hit ? 1 : 0);
  w.f64(response.latency.as_seconds());
  w.str(response.error);
}

std::vector<std::uint8_t> encode_predict_response(
    std::uint64_t request_id, const serve::Response& response) {
  WireWriter w;
  encode_predict_response_into(w, request_id, response);
  return w.take();
}

DecodedResponse decode_predict_response(
    std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  DecodedResponse decoded;
  decoded.request_id = r.u64();
  decoded.response.kind = checked_enum<serve::RequestKind>(
      r.u8(), serve::kRequestKindCount, "response kind");
  decoded.response.status =
      checked_enum<serve::ResponseStatus>(r.u8(), 5, "response status");
  decoded.response.pair = decode_pair(r);
  decoded.response.power_watts = r.f64();
  decoded.response.time_seconds = r.f64();
  decoded.response.energy_joules = r.f64();
  const std::uint8_t hit = r.u8();
  if (hit > 1) throw ProtocolError("bad cache-hit flag");
  decoded.response.cache_hit = hit != 0;
  decoded.response.latency = Duration::seconds(r.f64());
  decoded.response.error = r.str();
  r.expect_done("predict-response");
  return decoded;
}

std::vector<std::uint8_t> encode_server_info(const ServerInfo& info) {
  WireWriter w;
  w.u8(info.protocol_version);
  GPPM_CHECK(info.boards.size() <= 0xff, "too many boards");
  w.u8(static_cast<std::uint8_t>(info.boards.size()));
  for (const ModelInfo& board : info.boards) {
    w.u8(static_cast<std::uint8_t>(board.gpu));
    w.u64(board.power_fingerprint);
    w.u64(board.perf_fingerprint);
  }
  return w.take();
}

ServerInfo decode_server_info(std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  ServerInfo info;
  info.protocol_version = r.u8();
  const std::size_t count = r.u8();
  info.boards.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    ModelInfo board;
    board.gpu = checked_enum<sim::GpuModel>(
        r.u8(), static_cast<std::uint8_t>(sim::kAllGpus.size()), "gpu model");
    board.power_fingerprint = r.u64();
    board.perf_fingerprint = r.u64();
    info.boards.push_back(board);
  }
  r.expect_done("info-response");
  return info;
}

std::vector<std::uint8_t> encode_ping(std::uint64_t token) {
  WireWriter w;
  w.u64(token);
  return w.take();
}

std::uint64_t decode_ping(std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  const std::uint64_t token = r.u64();
  r.expect_done("ping");
  return token;
}

std::vector<std::uint8_t> encode_health_request(std::uint64_t token) {
  WireWriter w;
  w.u64(token);
  return w.take();
}

std::uint64_t decode_health_request(std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  const std::uint64_t token = r.u64();
  r.expect_done("health-request");
  return token;
}

std::vector<std::uint8_t> encode_health_response(std::uint64_t token,
                                                 const HealthStatus& status) {
  WireWriter w;
  w.u64(token);
  w.u8(status.protocol_version);
  w.u8(status.accepting ? 1 : 0);
  w.u16(status.boards);
  w.u32(status.queue_depth);
  w.u32(status.queue_capacity);
  w.u32(status.workers);
  return w.take();
}

DecodedHealth decode_health_response(std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  DecodedHealth decoded;
  decoded.token = r.u64();
  decoded.status.protocol_version = r.u8();
  const std::uint8_t accepting = r.u8();
  if (accepting > 1) throw ProtocolError("bad health accepting flag");
  decoded.status.accepting = accepting != 0;
  decoded.status.boards = r.u16();
  decoded.status.queue_depth = r.u32();
  decoded.status.queue_capacity = r.u32();
  decoded.status.workers = r.u32();
  r.expect_done("health-response");
  return decoded;
}

std::vector<std::uint8_t> encode_wire_error(const WireError& error) {
  WireWriter w;
  w.u16(static_cast<std::uint16_t>(error.code));
  w.str(error.message);
  return w.take();
}

WireError decode_wire_error(std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  WireError error;
  const std::uint16_t code = r.u16();
  if (code < 1 || code > 3) {
    throw ProtocolError("unknown wire error code " + std::to_string(code));
  }
  error.code = static_cast<WireErrorCode>(code);
  error.message = r.str();
  r.expect_done("error-reply");
  return error;
}

}  // namespace gppm::net
