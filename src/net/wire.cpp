#include "net/wire.hpp"

#include <array>
#include <cstring>

namespace gppm::net {

namespace {

/// Slicing tables: table[0] is the classic byte-at-a-time table, and
/// table[k][b] is the CRC of byte b followed by k zero bytes, which lets
/// the main loop fold 8 input bytes with 8 independent lookups instead of
/// 8 serial table steps.  Built at compile time (constexpr), so there is
/// no init-order or threading question.
struct CrcTables {
  std::uint32_t t[8][256];
};

constexpr CrcTables build_crc_tables() {
  CrcTables tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    tables.t[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = tables.t[0][i];
    for (int k = 1; k < 8; ++k) {
      c = tables.t[0][c & 0xffu] ^ (c >> 8);
      tables.t[k][i] = c;
    }
  }
  return tables;
}

constexpr CrcTables kCrc = build_crc_tables();

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t size) {
  std::uint32_t crc = 0xffffffffu;
  // Slice-by-8 main loop.  The four low bytes fold through the running
  // CRC; the four high bytes only need their zero-padded tables.  Byte
  // composition (not a word load) keeps it endian-independent — the
  // compiler fuses it into one load on little-endian hosts.
  while (size >= 8) {
    const std::uint32_t low = crc ^ (static_cast<std::uint32_t>(data[0]) |
                                     static_cast<std::uint32_t>(data[1]) << 8 |
                                     static_cast<std::uint32_t>(data[2]) << 16 |
                                     static_cast<std::uint32_t>(data[3]) << 24);
    crc = kCrc.t[7][low & 0xffu] ^ kCrc.t[6][(low >> 8) & 0xffu] ^
          kCrc.t[5][(low >> 16) & 0xffu] ^ kCrc.t[4][low >> 24] ^
          kCrc.t[3][data[4]] ^ kCrc.t[2][data[5]] ^ kCrc.t[1][data[6]] ^
          kCrc.t[0][data[7]];
    data += 8;
    size -= 8;
  }
  for (std::size_t i = 0; i < size; ++i) {
    crc = kCrc.t[0][(crc ^ data[i]) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

std::uint32_t crc32_reference(const std::uint8_t* data, std::size_t size) {
  std::uint32_t crc = 0xffffffffu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = kCrc.t[0][(crc ^ data[i]) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

void WireWriter::u16(std::uint16_t v) {
  const std::uint8_t b[2] = {static_cast<std::uint8_t>(v & 0xff),
                             static_cast<std::uint8_t>(v >> 8)};
  buffer_.insert(buffer_.end(), b, b + 2);
}

void WireWriter::u32(std::uint32_t v) {
  std::uint8_t b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
  buffer_.insert(buffer_.end(), b, b + 4);
}

void WireWriter::u64(std::uint64_t v) {
  std::uint8_t b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
  buffer_.insert(buffer_.end(), b, b + 8);
}

void WireWriter::f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void WireWriter::str(std::string_view s) {
  GPPM_CHECK(s.size() <= kMaxWireString, "wire string too long");
  u16(static_cast<std::uint16_t>(s.size()));
  bytes(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

void WireWriter::bytes(const std::uint8_t* data, std::size_t size) {
  buffer_.insert(buffer_.end(), data, data + size);
}

const std::uint8_t* WireReader::need(std::size_t n, const char* what) {
  if (size_ - pos_ < n) {
    throw ProtocolError(std::string("payload truncated reading ") + what);
  }
  const std::uint8_t* at = data_ + pos_;
  pos_ += n;
  return at;
}

std::uint8_t WireReader::u8() { return *need(1, "u8"); }

std::uint16_t WireReader::u16() {
  const std::uint8_t* p = need(2, "u16");
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t WireReader::u32() {
  const std::uint8_t* p = need(4, "u32");
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t WireReader::u64() {
  const std::uint8_t* p = need(8, "u64");
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

double WireReader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string WireReader::str() {
  const std::size_t n = u16();
  const std::uint8_t* p = need(n, "string body");
  return std::string(reinterpret_cast<const char*>(p), n);
}

void WireReader::expect_done(const char* what) const {
  if (!done()) {
    throw ProtocolError(std::string(what) + ": " + std::to_string(remaining()) +
                        " trailing bytes");
  }
}

}  // namespace gppm::net
