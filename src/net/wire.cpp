#include "net/wire.hpp"

#include <array>
#include <cstring>

namespace gppm::net {

namespace {

std::array<std::uint32_t, 256> build_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t size) {
  static const std::array<std::uint32_t, 256> table = build_crc_table();
  std::uint32_t crc = 0xffffffffu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ data[i]) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

void WireWriter::u16(std::uint16_t v) {
  buffer_.push_back(static_cast<std::uint8_t>(v & 0xff));
  buffer_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void WireWriter::u32(std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    buffer_.push_back(static_cast<std::uint8_t>((v >> shift) & 0xff));
  }
}

void WireWriter::u64(std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    buffer_.push_back(static_cast<std::uint8_t>((v >> shift) & 0xff));
  }
}

void WireWriter::f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void WireWriter::str(std::string_view s) {
  GPPM_CHECK(s.size() <= kMaxWireString, "wire string too long");
  u16(static_cast<std::uint16_t>(s.size()));
  bytes(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

void WireWriter::bytes(const std::uint8_t* data, std::size_t size) {
  buffer_.insert(buffer_.end(), data, data + size);
}

const std::uint8_t* WireReader::need(std::size_t n, const char* what) {
  if (size_ - pos_ < n) {
    throw ProtocolError(std::string("payload truncated reading ") + what);
  }
  const std::uint8_t* at = data_ + pos_;
  pos_ += n;
  return at;
}

std::uint8_t WireReader::u8() { return *need(1, "u8"); }

std::uint16_t WireReader::u16() {
  const std::uint8_t* p = need(2, "u16");
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t WireReader::u32() {
  const std::uint8_t* p = need(4, "u32");
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t WireReader::u64() {
  const std::uint8_t* p = need(8, "u64");
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

double WireReader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string WireReader::str() {
  const std::size_t n = u16();
  const std::uint8_t* p = need(n, "string body");
  return std::string(reinterpret_cast<const char*>(p), n);
}

void WireReader::expect_done(const char* what) const {
  if (!done()) {
    throw ProtocolError(std::string(what) + ": " + std::to_string(remaining()) +
                        " trailing bytes");
  }
}

}  // namespace gppm::net
