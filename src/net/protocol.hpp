// Payload codecs: serve:: request/response vocabulary <-> frame payloads.
//
// The RPC surface mirrors the in-process PredictionServer exactly — a
// PredictRequest frame carries one serve::Request (kind, board, counter
// profile, pair, policy), a PredictResponse carries the serve::Response
// verbatim including the typed ResponseStatus — so a client cannot tell a
// wire prediction from an in-process one (the loopback integration test
// asserts bit-identity).  The service deadline is NOT part of these
// payloads: it rides in the frame header (frame.hpp) so the transport can
// stamp it onto the bridged request without running the payload codec.
//
// Every decoder validates enum ranges and exact payload consumption and
// throws ProtocolError on anything out of contract.  Model metadata
// (fingerprints) reuses core::model_fingerprint, i.e. the pinned
// core/serialization byte format.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "net/frame.hpp"
#include "serve/request.hpp"

namespace gppm::net {

/// One served board as announced by InfoResponse.
struct ModelInfo {
  sim::GpuModel gpu = sim::GpuModel::GTX680;
  std::uint64_t power_fingerprint = 0;
  std::uint64_t perf_fingerprint = 0;
};

/// Server self-description (InfoResponse payload).
struct ServerInfo {
  std::uint8_t protocol_version = kProtocolVersion;
  std::vector<ModelInfo> boards;
};

/// Error codes carried by ErrorReply frames (u16 on the wire, so the
/// taxonomy can grow without a version bump).
enum class WireErrorCode : std::uint16_t {
  Malformed = 1,     ///< the peer's frame failed to decode
  ShuttingDown = 2,  ///< the backend rejected the request: shutdown
  Internal = 3,      ///< unexpected server-side failure
};

struct WireError {
  WireErrorCode code = WireErrorCode::Internal;
  std::string message;
};

/// A PredictRequest payload, decoded.  The request's deadline has already
/// been stamped from the frame header by decode_predict_request.
struct DecodedRequest {
  std::uint64_t request_id = 0;
  serve::Request request;
};

struct DecodedResponse {
  std::uint64_t request_id = 0;
  serve::Response response;
};

// Decoders take spans so the server's zero-copy path can hand them a view
// straight into the connection's stream buffer (FrameView::payload); a
// std::vector payload converts implicitly, so copy-holding callers (the
// client, the tests) are untouched.

// --- PredictRequest -------------------------------------------------------
/// Tenant-0 requests encode to the original (v1) byte layout; a nonzero
/// tenant appends a u32 tenant-id trailer, and the frame carrying the
/// payload must be stamped with predict_request_version(request) so a
/// pre-v3 peer rejects it cleanly instead of mis-parsing the trailer.
std::vector<std::uint8_t> encode_predict_request(std::uint64_t request_id,
                                                 const serve::Request& request);
DecodedRequest decode_predict_request(std::span<const std::uint8_t> payload,
                                      std::uint64_t deadline_micros);
/// The frame version a PredictRequest payload requires: the base version
/// for tenant 0, version 3 once a tenant trailer rides along.
std::uint8_t predict_request_version(const serve::Request& request);

// --- PredictResponse ------------------------------------------------------
std::vector<std::uint8_t> encode_predict_response(
    std::uint64_t request_id, const serve::Response& response);
/// Arena variant: append the payload to `w` (not cleared first) so a
/// per-connection scratch writer can cycle through responses without
/// reallocating at steady state.
void encode_predict_response_into(WireWriter& w, std::uint64_t request_id,
                                  const serve::Response& response);
DecodedResponse decode_predict_response(std::span<const std::uint8_t> payload);

// --- Info -----------------------------------------------------------------
std::vector<std::uint8_t> encode_server_info(const ServerInfo& info);
ServerInfo decode_server_info(std::span<const std::uint8_t> payload);

// --- Ping / Pong ----------------------------------------------------------
std::vector<std::uint8_t> encode_ping(std::uint64_t token);
std::uint64_t decode_ping(std::span<const std::uint8_t> payload);

// --- Health (protocol v2) -------------------------------------------------

/// Liveness + load snapshot carried by a HealthResponse.  Deliberately
/// small and answered inline by the transport (never bridged through the
/// prediction queue), so a health probe observes queue pressure instead of
/// adding to it.
struct HealthStatus {
  std::uint8_t protocol_version = kProtocolVersion;
  bool accepting = true;            ///< false once shutdown has begun
  std::uint16_t boards = 0;         ///< served model pairs
  std::uint32_t queue_depth = 0;    ///< requests waiting in the serve queue
  std::uint32_t queue_capacity = 0; ///< serve queue bound
  std::uint32_t workers = 0;        ///< prediction worker threads
};

struct DecodedHealth {
  std::uint64_t token = 0;  ///< echo of the request token
  HealthStatus status;
};

std::vector<std::uint8_t> encode_health_request(std::uint64_t token);
std::uint64_t decode_health_request(std::span<const std::uint8_t> payload);
std::vector<std::uint8_t> encode_health_response(std::uint64_t token,
                                                 const HealthStatus& status);
DecodedHealth decode_health_response(std::span<const std::uint8_t> payload);

// --- ErrorReply -----------------------------------------------------------
std::vector<std::uint8_t> encode_wire_error(const WireError& error);
WireError decode_wire_error(std::span<const std::uint8_t> payload);

/// Deadline header field <-> serve deadline (Duration; 0 = none).
std::uint64_t deadline_to_micros(Duration deadline);
Duration deadline_from_micros(std::uint64_t micros);

}  // namespace gppm::net
