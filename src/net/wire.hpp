// Endian-safe binary wire primitives for the gppm RPC layer.
//
// Everything that crosses a socket goes through these two helpers: a
// WireWriter that appends fixed-width little-endian fields to a byte
// buffer, and a bounds-checked WireReader that refuses to read past the
// payload it was given.  Doubles travel as their IEEE-754 bit patterns
// (little-endian u64), so values round-trip bit-exactly between any two
// hosts regardless of locale or native byte order — the property the
// "wire predictions are bit-identical to in-process predictions"
// acceptance test pins down.
//
// Malformed input is a *typed* error, never a crash: every decode failure
// throws ProtocolError (permanent — resending the same bytes cannot
// succeed), as opposed to ConnectionError (transient, see socket.hpp)
// which the client retry path absorbs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"

namespace gppm::net {

/// Base of the networking error taxonomy.  Subsystems catch NetError when
/// they do not care whether the failure was the bytes or the transport.
class NetError : public Error {
 public:
  explicit NetError(const std::string& what) : Error(what) {}
};

/// The bytes themselves are wrong (bad magic, bad CRC, truncated payload,
/// out-of-range enum, oversized frame).  Permanent: retrying the same
/// bytes cannot help, so the connection is dropped instead.
class ProtocolError : public NetError {
 public:
  explicit ProtocolError(const std::string& what)
      : NetError("protocol error: " + what) {}
};

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over a byte range.  Used as
/// the per-frame payload checksum.  Computed slice-by-8 (eight table
/// lookups per 8 input bytes) — integer-only, so the result is identical
/// on every host and unaffected by GPPM_SIMD.
std::uint32_t crc32(const std::uint8_t* data, std::size_t size);
inline std::uint32_t crc32(std::span<const std::uint8_t> data) {
  return crc32(data.data(), data.size());
}

/// Byte-at-a-time reference CRC-32.  Kept solely so the `simd`-labeled
/// parity suite can pin the slice-by-8 fast path against the textbook
/// loop; production code always uses crc32().
std::uint32_t crc32_reference(const std::uint8_t* data, std::size_t size);

/// Longest string the wire format can carry (u16 length prefix).
inline constexpr std::size_t kMaxWireString = 0xffff;

/// Append-only little-endian field writer.  Multi-byte fields are staged
/// in a stack buffer and appended with one bulk insert (a single unaligned
/// store after optimization), not byte-by-byte push_backs.
class WireWriter {
 public:
  WireWriter() = default;
  /// Adopt `reuse`'s storage (cleared, capacity kept) — the arena path:
  /// a per-connection buffer cycles through encode/take without ever
  /// reallocating at steady state.
  explicit WireWriter(std::vector<std::uint8_t>&& reuse)
      : buffer_(std::move(reuse)) {
    buffer_.clear();
  }

  void u8(std::uint8_t v) { buffer_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// IEEE-754 bit pattern as LE u64; NaNs round-trip bit-exactly too.
  void f64(double v);
  /// u16 length prefix + raw bytes.  Throws gppm::Error on oversized input
  /// (an encode-side bug, not a protocol error).
  void str(std::string_view s);
  void bytes(const std::uint8_t* data, std::size_t size);

  const std::vector<std::uint8_t>& data() const { return buffer_; }
  std::vector<std::uint8_t> take() { return std::move(buffer_); }
  std::size_t size() const { return buffer_.size(); }
  std::size_t capacity() const { return buffer_.capacity(); }
  /// Drop content, keep capacity (arena reuse between requests).
  void clear() { buffer_.clear(); }
  void reserve(std::size_t n) { buffer_.reserve(n); }

 private:
  std::vector<std::uint8_t> buffer_;
};

/// Bounds-checked little-endian field reader over a borrowed byte range.
/// Every overrun throws ProtocolError; `done()` distinguishes an exactly
/// consumed payload from one with trailing garbage.
class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  /// Borrow any contiguous byte range — a decoded frame's payload view
  /// (zero-copy path) or a std::vector (both convert to the span).
  explicit WireReader(std::span<const std::uint8_t> payload)
      : WireReader(payload.data(), payload.size()) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  std::string str();

  std::size_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ == size_; }
  /// Throws ProtocolError unless the payload was consumed exactly.
  void expect_done(const char* what) const;

 private:
  const std::uint8_t* need(std::size_t n, const char* what);

  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t pos_ = 0;
};

}  // namespace gppm::net
