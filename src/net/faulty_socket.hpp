// A TCP socket behind an injected-fault channel — the network sibling of
// FaultyMeter / FaultyNvmlSession.
//
// Real serving deployments see exactly three transport failure shapes, all
// reproduced here deterministically under FaultInjector control (sites
// declared in fault/plan.hpp):
//
//   * net.connect    — the dial is refused before any packet leaves
//                      (ConnectionError, nothing established);
//   * net.short_read — a read returns a single byte, exercising every
//                      stream-reassembly path above (benign: framing must
//                      reassemble, and the frame fuzz suite proves it does);
//   * net.reset      — the link dies mid-frame: a write delivers only half
//                      its bytes (the peer sees a truncated frame and an
//                      EOF), or a read fails outright; either way the
//                      socket is shut down and ConnectionError thrown.
//
// With a null injector every call forwards untouched to net::Socket, so
// the healthy path pays one branch — the same contract as the instrument
// wrappers.  Both net::Server and net::Client route all socket I/O through
// this wrapper; the chaos suite drives the client side and asserts the
// retry path converges with zero divergent predictions.
#pragma once

#include <cstdint>
#include <string>

#include "fault/injector.hpp"
#include "net/socket.hpp"

namespace gppm::fault {

/// A net::Socket whose connect/read/write pass through injected faults.
class FaultySocket {
 public:
  /// Wrap an established socket.  `injector` may be nullptr (healthy).
  explicit FaultySocket(net::Socket socket, FaultInjector* injector = nullptr)
      : socket_(std::move(socket)), injector_(injector) {}
  FaultySocket() = default;

  /// Dial `host:port`.  Consults net.connect before dialing: a fired site
  /// throws net::ConnectionError without touching the network (the
  /// deterministic stand-in for a refused or timed-out connect).
  static FaultySocket connect(const std::string& host, std::uint16_t port,
                              FaultInjector* injector = nullptr);

  /// read_some with net.short_read (truncate to 1 byte) and net.reset
  /// (shut down + throw) applied, in that order of severity.
  std::size_t read_some(std::uint8_t* buffer, std::size_t size);

  /// write_all with net.reset applied: a fired reset delivers only the
  /// first half of the buffer, then shuts the socket down and throws —
  /// the peer observes a mid-frame truncation.
  void write_all(const std::uint8_t* buffer, std::size_t size);

  bool wait_readable(int timeout_ms) {
    return socket_.wait_readable(timeout_ms);
  }
  void shutdown_both() noexcept { socket_.shutdown_both(); }
  void close() noexcept { socket_.close(); }
  bool valid() const { return socket_.valid(); }

  net::Socket& socket() { return socket_; }

 private:
  net::Socket socket_;
  FaultInjector* injector_ = nullptr;
};

}  // namespace gppm::fault
