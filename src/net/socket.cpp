#include "net/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <utility>

namespace gppm::net {

namespace {

std::string errno_text(const char* op) {
  return std::string(op) + ": " + std::strerror(errno);
}

sockaddr_in make_address(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw ConnectionError("bad IPv4 address '" + host + "'");
  }
  return addr;
}

/// A dead peer must surface as ConnectionError, not SIGPIPE.  Installed
/// once, before the first socket write.
void ignore_sigpipe() {
  static const bool done = [] {
    std::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)done;
}

}  // namespace

Socket::Socket(Socket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

Socket Socket::connect(const std::string& host, std::uint16_t port) {
  ignore_sigpipe();
  const sockaddr_in addr = make_address(host, port);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw ConnectionError(errno_text("socket"));
  Socket socket(fd);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    throw ConnectionError("connect to " + host + ":" + std::to_string(port) +
                          " failed: " + std::strerror(errno));
  }
  // Frames are written whole; Nagle only adds latency on the reply path.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return socket;
}

std::size_t Socket::read_some(std::uint8_t* buffer, std::size_t size) {
  if (fd_ < 0) throw ConnectionError("read on closed socket");
  ssize_t n;
  do {
    n = ::recv(fd_, buffer, size, 0);
  } while (n < 0 && errno == EINTR);
  if (n < 0) throw ConnectionError(errno_text("recv"));
  return static_cast<std::size_t>(n);
}

void Socket::write_all(const std::uint8_t* buffer, std::size_t size) {
  ignore_sigpipe();
  std::size_t sent = 0;
  while (sent < size) {
    if (fd_ < 0) throw ConnectionError("write on closed socket");
    ssize_t n;
    do {
      n = ::send(fd_, buffer + sent, size - sent, 0);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) throw ConnectionError(errno_text("send"));
    sent += static_cast<std::size_t>(n);
  }
}

bool Socket::wait_readable(int timeout_ms) {
  if (fd_ < 0) throw ConnectionError("poll on closed socket");
  pollfd pfd{};
  pfd.fd = fd_;
  pfd.events = POLLIN;
  int rc;
  do {
    rc = ::poll(&pfd, 1, timeout_ms);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) throw ConnectionError(errno_text("poll"));
  return rc > 0;
}

void Socket::shutdown_both() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Listener::Listener(const std::string& address, std::uint16_t port,
                   int backlog) {
  const sockaddr_in addr = make_address(address, port);
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw ConnectionError(errno_text("socket"));
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string text =
        "bind " + address + ":" + std::to_string(port) + ": " +
        std::strerror(errno);
    close();
    throw ConnectionError(text);
  }
  if (::listen(fd_, backlog) < 0) {
    const std::string text = errno_text("listen");
    close();
    throw ConnectionError(text);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    const std::string text = errno_text("getsockname");
    close();
    throw ConnectionError(text);
  }
  port_ = ntohs(bound.sin_port);
}

Socket Listener::accept() {
  if (fd_ < 0) return Socket();
  int fd;
  do {
    fd = ::accept(fd_, nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    // shutdown() surfaces as EINVAL (Linux) / ECONNABORTED; both mean the
    // listener is done, which accept() reports as an invalid Socket.
    if (errno == EINVAL || errno == ECONNABORTED || errno == EBADF) {
      return Socket();
    }
    throw ConnectionError(errno_text("accept"));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Socket(fd);
}

void Listener::shutdown() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Listener::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace gppm::net
