// net::Client — blocking RPC client for the gppm prediction protocol.
//
// One Client owns a small pool of TCP connections to one server; RPCs are
// assigned round-robin and each connection serves one RPC at a time (the
// server answers FIFO per connection, so request/response matching is a
// single id check).  The failure story follows the repo's retry taxonomy:
//
//   * ConnectionError (a TransientError) — refused dial, reset, timeout,
//     unexpected EOF.  The client drops the connection, sleeps a
//     common/retry backoff delay (real wall-clock sleep — this is a live
//     transport, not the simulator), reconnects and resends, up to
//     RetryPolicy::max_attempts.
//   * ProtocolError (permanent) — the server sent bytes out of contract.
//     The connection is dropped and the error propagates immediately;
//     resending cannot help.
//   * RpcError (permanent) — the server answered with a typed ErrorReply
//     (malformed request, shutting down, internal failure).  Note that a
//     request the *backend* cannot serve is not an error at this layer:
//     it comes back as a normal serve::Response with a non-Ok status,
//     exactly as the in-process PredictionServer answers it.
//
// Instrumented under net.client.*: RPC counter, reconnects, transport
// errors, bytes/frames in both directions, an RTT histogram, and an
// ObsSpan per RPC.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/retry.hpp"
#include "common/rng.hpp"
#include "net/faulty_socket.hpp"
#include "net/frame.hpp"
#include "net/protocol.hpp"

namespace gppm::net {

/// The server answered an RPC with a typed ErrorReply.  Permanent: the
/// request as sent will not succeed against this server.
class RpcError : public NetError {
 public:
  RpcError(WireErrorCode code, const std::string& message)
      : NetError("server error " + std::to_string(static_cast<int>(code)) +
                 ": " + message),
        code_(code) {}
  WireErrorCode code() const { return code_; }

 private:
  WireErrorCode code_;
};

struct ClientOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Pooled connections; RPCs are assigned round-robin, so this bounds the
  /// caller's useful concurrency against one server.
  std::size_t pool_size = 1;
  std::size_t max_frame_payload = kDefaultMaxPayload;
  /// Reconnect/resend discipline for transport failures.  Backoff delays
  /// are slept for real.
  RetryPolicy retry;
  /// Seed for the backoff jitter stream.
  std::uint64_t seed = 0x6770706d'6e657431ull;
  /// How long one RPC waits for its response frame before the connection
  /// is declared dead (ConnectionError, hence retried).
  int response_timeout_ms = 30000;
  /// Pooled connections idle longer than this are closed and redialed on
  /// next use instead of trusting a socket the server may long since have
  /// dropped.  0 disables the idle check (the pre-send liveness probe
  /// still runs).
  int idle_timeout_ms = 0;
};

struct ClientStats {
  std::uint64_t rpcs = 0;
  std::uint64_t connects = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t transport_retries = 0;
  /// Pooled connections found dead/stale *before* a send (EOF or stray
  /// bytes while idle, half-frame leftovers, idle timeout) and replaced
  /// silently — the redial does not burn a retry attempt and no error
  /// surfaces to the caller.
  std::uint64_t stale_evictions = 0;
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
};

/// Blocking pooled client.  Thread-safe: concurrent RPCs proceed in
/// parallel up to pool_size, then serialize per connection.
class Client {
 public:
  /// Connections are dialed lazily, on first use per pool slot.
  /// `injector` may be nullptr; when set, all socket I/O consults the
  /// net.* fault sites (the chaos suite drives this).
  explicit Client(ClientOptions options,
                  fault::FaultInjector* injector = nullptr);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// One prediction RPC.  request.deadline rides the frame header and is
  /// enforced by the server's admission queue; a non-Ok ResponseStatus is
  /// a normal return, not an exception.
  serve::Response predict(const serve::Request& request);

  /// Pipelined predictions: every request is written back-to-back on one
  /// pooled connection in a single send, then the responses are read in
  /// request order (the server answers FIFO per connection).  Amortizes
  /// syscalls and thread handoffs roughly batch-fold over predict() —
  /// this is the throughput path.  Transport failures resend the whole
  /// batch on a fresh connection (predictions are pure, so the resend is
  /// idempotent); the returned vector always matches `requests` 1:1.
  std::vector<serve::Response> predict_batch(
      const std::vector<serve::Request>& requests);

  /// Server self-description: protocol version, boards, fingerprints.
  ServerInfo info();

  /// Round-trip liveness probe.  Throws on transport/protocol failure.
  void ping();

  /// Liveness + load snapshot (protocol v2).  The server answers inline on
  /// its reader thread, so this observes prediction-queue pressure instead
  /// of queuing behind it.  A v1 peer rejects the frame with a typed
  /// ErrorReply, which surfaces here as RpcError.
  HealthStatus health();

  /// Drop every pooled connection (an in-flight RPC on another thread
  /// finishes its attempt first; subsequent RPCs redial).
  void close();

  ClientStats stats() const;
  const ClientOptions& options() const { return options_; }

 private:
  struct Conn {
    std::mutex mutex;
    fault::FaultySocket socket;
    FrameDecoder decoder;
    bool connected = false;
    Rng rng{0};
    std::chrono::steady_clock::time_point last_used{};
  };

  /// Send `payload` as a `type` frame and read the next frame back,
  /// reconnecting and resending on transport failure per options_.retry.
  Frame call(FrameType type, const std::vector<std::uint8_t>& payload,
             std::uint64_t deadline_micros, std::uint8_t version = 0);
  Frame attempt(Conn& conn, const std::vector<std::uint8_t>& bytes);
  /// Block until the next whole frame arrives on `conn`.
  Frame read_frame(Conn& conn);
  void ensure_connected(Conn& conn);
  /// True when a nominally connected pool slot cannot be trusted for the
  /// next RPC: idle past the timeout, half a frame buffered from an
  /// aborted exchange, or readable while no response is owed (EOF after a
  /// server restart, or stray bytes).
  bool is_stale(Conn& conn) const;
  /// ErrorReply handling shared by all RPCs: decode and throw RpcError.
  [[noreturn]] static void raise_error_reply(const Frame& frame);

  ClientOptions options_;
  fault::FaultInjector* injector_;
  std::vector<std::unique_ptr<Conn>> pool_;
  std::atomic<std::uint64_t> next_conn_{0};
  std::atomic<std::uint64_t> next_request_id_{1};

  std::atomic<std::uint64_t> rpcs_{0};
  std::atomic<std::uint64_t> connects_{0};
  std::atomic<std::uint64_t> reconnects_{0};
  std::atomic<std::uint64_t> transport_retries_{0};
  std::atomic<std::uint64_t> stale_evictions_{0};
  std::atomic<std::uint64_t> frames_sent_{0};
  std::atomic<std::uint64_t> frames_received_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> bytes_received_{0};
};

}  // namespace gppm::net
