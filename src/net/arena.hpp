// Per-connection response-assembly arena.
//
// The writer loop assembles every outgoing batch into the same two
// buffers: a WireWriter for the current reply's payload bytes and a frame
// buffer the encoded frames are appended to (one socket write per batch).
// reset()/clear() drop content but keep capacity, so after the first few
// requests warm the buffers to the connection's working-set size the
// steady-state reply path performs zero heap allocations — the property
// the `simd`-labeled no-allocation regression test pins down.
//
// Not a general-purpose allocator: exactly two buffers, no alignment or
// lifetime bookkeeping, single-threaded use by the owning writer loop.
#pragma once

#include <cstdint>
#include <vector>

#include "net/wire.hpp"

namespace gppm::net {

class Arena {
 public:
  /// Scratch writer for the payload of the reply currently being encoded.
  /// Callers clear() it between replies; the storage is reused.
  WireWriter& payload() { return payload_; }

  /// Accumulates encoded frames for the current batch (via
  /// encode_frame_into); written to the socket in one call.
  std::vector<std::uint8_t>& frames() { return frames_; }

  /// Drop batch content, keep both buffers' capacity.
  void reset() {
    payload_.clear();
    frames_.clear();
  }

  /// Total bytes of backing storage currently held (observability hook for
  /// the steady-state tests: must stop growing once the connection warms).
  std::size_t capacity_bytes() const {
    return payload_.capacity() + frames_.capacity();
  }

 private:
  WireWriter payload_;
  std::vector<std::uint8_t> frames_;
};

}  // namespace gppm::net
