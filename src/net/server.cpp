#include "net/server.hpp"

#include <exception>
#include <utility>

#include "obs/obs.hpp"

namespace gppm::net {

namespace {

/// Registry lookups once per process; every hot-path record after that is
/// one relaxed atomic op on a cached reference.
struct ServerObs {
  obs::Counter& bytes_rx;
  obs::Counter& bytes_tx;
  obs::Counter& frames_rx;
  obs::Counter& frames_tx;
  obs::Counter& connections;
  obs::Counter& protocol_errors;
  obs::Histogram& write_queue_depth;
};

ServerObs& server_obs() {
  obs::Registry& reg = obs::Registry::instance();
  static ServerObs instruments{
      reg.counter("net.server.bytes_rx"),
      reg.counter("net.server.bytes_tx"),
      reg.counter("net.server.frames_rx"),
      reg.counter("net.server.frames_tx"),
      reg.counter("net.server.connections"),
      reg.counter("net.server.protocol_errors"),
      reg.histogram("net.server.write_queue_depth",
                    {1, 2, 4, 8, 16, 32, 64, 128, 256}),
  };
  return instruments;
}

}  // namespace

ServeBridge bridge_prediction_server(serve::PredictionServer& backend) {
  ServeBridge bridge;
  bridge.submit = [&backend](serve::Request request) {
    return backend.submit(std::move(request));
  };
  bridge.loaded_models = [&backend] { return backend.loaded_models(); };
  bridge.health = [&backend] {
    HealthStatus status;
    status.accepting = backend.running();
    status.boards = static_cast<std::uint16_t>(backend.loaded_models().size());
    status.queue_depth = static_cast<std::uint32_t>(backend.queue_depth());
    status.queue_capacity =
        static_cast<std::uint32_t>(backend.options().queue_capacity);
    status.workers =
        static_cast<std::uint32_t>(backend.options().worker_threads);
    return status;
  };
  return bridge;
}

Server::Server(serve::PredictionServer& backend, ServerOptions options,
               fault::FaultInjector* injector)
    : Server(bridge_prediction_server(backend), std::move(options), injector) {}

Server::Server(ServeBridge bridge, ServerOptions options,
               fault::FaultInjector* injector)
    : bridge_(std::move(bridge)),
      options_(std::move(options)),
      injector_(injector),
      listener_(options_.bind_address, options_.port, options_.backlog) {
  GPPM_CHECK(bridge_.submit && bridge_.loaded_models && bridge_.health,
             "ServeBridge requires submit, loaded_models and health");
  acceptor_ = std::thread([this] { accept_loop(); });
}

Server::~Server() { stop(); }

void Server::stop() {
  stopped_.store(true, std::memory_order_release);
  listener_.shutdown();
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (const std::shared_ptr<Connection>& conn : connections_) {
      conn->replies.close();
      conn->socket.shutdown_both();
    }
  }
  std::lock_guard<std::mutex> lock(shutdown_mutex_);
  if (acceptor_.joinable()) acceptor_.join();
  reap(/*all=*/true);
  // Close (not just shut down) the listener so later dials are refused
  // outright; port() still reports the bound port.
  listener_.close();
}

ServerStats Server::stats() const {
  ServerStats s;
  s.connections_accepted = connections_accepted_.load();
  s.connections_refused = connections_refused_.load();
  s.frames_received = frames_received_.load();
  s.frames_sent = frames_sent_.load();
  s.bytes_received = bytes_received_.load();
  s.bytes_sent = bytes_sent_.load();
  s.protocol_errors = protocol_errors_.load();
  s.requests_bridged = requests_bridged_.load();
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    s.connections_active = connections_.size();
  }
  return s;
}

ServerInfo Server::build_info() const {
  ServerInfo info;
  for (const serve::PredictionServer::LoadedModel& m :
       bridge_.loaded_models()) {
    info.boards.push_back({m.gpu, m.power_fingerprint, m.perf_fingerprint});
  }
  return info;
}

void Server::reap(bool all) {
  std::list<std::shared_ptr<Connection>> dead;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (auto it = connections_.begin(); it != connections_.end();) {
      if (all || (*it)->exited.load(std::memory_order_acquire) == 2) {
        dead.push_back(std::move(*it));
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const std::shared_ptr<Connection>& conn : dead) {
    if (conn->reader.joinable()) conn->reader.join();
    if (conn->writer.joinable()) conn->writer.join();
  }
}

void Server::accept_loop() {
  while (!stopped_.load(std::memory_order_acquire)) {
    Socket raw;
    try {
      raw = listener_.accept();
    } catch (const ConnectionError&) {
      break;
    }
    if (!raw.valid()) break;  // listener shut down
    reap(/*all=*/false);

    std::size_t active = 0;
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      active = connections_.size();
    }
    if (active >= options_.max_connections) {
      // Typed refusal instead of a silent close: the peer reads one
      // ErrorReply frame, then EOF.
      connections_refused_.fetch_add(1);
      const std::vector<std::uint8_t> bytes = encode_frame(
          FrameType::ErrorReply,
          encode_wire_error({WireErrorCode::ShuttingDown,
                             "connection limit reached (" +
                                 std::to_string(options_.max_connections) +
                                 ")"}));
      try {
        raw.write_all(bytes.data(), bytes.size());
      } catch (const ConnectionError&) {
      }
      continue;
    }

    connections_accepted_.fetch_add(1);
    server_obs().connections.add();
    auto conn = std::make_shared<Connection>(options_.write_queue_capacity);
    conn->socket = fault::FaultySocket(std::move(raw), injector_);
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      connections_.push_back(conn);
    }
    // The threads hold a shared_ptr so the Connection outlives its list
    // entry even if a reap races the spawn.
    conn->reader = std::thread([this, conn] { reader_loop(*conn); });
    conn->writer = std::thread([this, conn] { writer_loop(*conn); });
  }
}

void Server::reader_loop(Connection& conn) {
  FrameDecoder decoder(options_.max_frame_payload);
  bool open = true;
  while (open && !stopped_.load(std::memory_order_acquire)) {
    try {
      if (!conn.socket.wait_readable(options_.poll_interval_ms)) continue;
      const std::size_t n =
          conn.socket.read_some(conn.read_buf.data(), conn.read_buf.size());
      if (n == 0) break;  // orderly EOF
      bytes_received_.fetch_add(n);
      server_obs().bytes_rx.add(n);
      decoder.feed(conn.read_buf.data(), n);
      // next_view() surfaces each frame's payload as a view into the
      // decoder's buffer; dispatch decodes straight from it, so request
      // bytes are copied exactly once (socket -> stream buffer) on this
      // path.  The views die before the next feed(), as required.
      while (std::optional<FrameView> frame = decoder.next_view()) {
        frames_received_.fetch_add(1);
        server_obs().frames_rx.add();
        if (!dispatch(conn, *frame)) {
          open = false;
          break;
        }
      }
    } catch (const ProtocolError& e) {
      // Bad bytes are not retryable: tell the peer why, then drop it.
      protocol_errors_.fetch_add(1);
      server_obs().protocol_errors.add();
      PendingReply reply;
      reply.type = FrameType::ErrorReply;
      reply.payload = encode_wire_error({WireErrorCode::Malformed, e.what()});
      conn.replies.push(std::move(reply));
      break;
    } catch (const ConnectionError&) {
      break;
    }
  }
  // Let the writer drain everything already owed, then die; a reader that
  // stops consuming also stops admitting.
  conn.replies.close();
  conn.exited.fetch_add(1, std::memory_order_release);
}

bool Server::dispatch(Connection& conn, const FrameView& frame) {
  obs::ObsSpan span("net.server.dispatch");
  PendingReply reply;
  switch (frame.header.type) {
    case FrameType::Ping:
      reply.type = FrameType::Pong;
      reply.payload = encode_ping(decode_ping(frame.payload));
      break;
    case FrameType::InfoRequest:
      if (!frame.payload.empty()) {
        throw ProtocolError("InfoRequest carries a payload");
      }
      reply.type = FrameType::InfoResponse;
      reply.payload = encode_server_info(build_info());
      break;
    case FrameType::HealthRequest:
      // Answered right here on the reader thread, never bridged through
      // the prediction queue: a probe of a saturated backend must observe
      // the pressure, not queue behind it.
      reply.type = FrameType::HealthResponse;
      reply.payload = encode_health_response(decode_health_request(
                                                 frame.payload),
                                             bridge_.health());
      break;
    case FrameType::PredictRequest: {
      DecodedRequest decoded = decode_predict_request(
          frame.payload, frame.header.deadline_micros);
      reply.type = FrameType::PredictResponse;
      reply.request_id = decoded.request_id;
      try {
        reply.future = bridge_.submit(std::move(decoded.request));
        requests_bridged_.fetch_add(1);
      } catch (const Error& e) {
        // Backend rejected (shutdown): answer typed, then drop the peer —
        // nothing further can be served on this process.
        reply.future.reset();
        reply.type = FrameType::ErrorReply;
        reply.payload =
            encode_wire_error({WireErrorCode::ShuttingDown, e.what()});
        conn.replies.push(std::move(reply));
        return false;
      }
      break;
    }
    default:
      // Server-bound traffic is Ping / InfoRequest / HealthRequest /
      // PredictRequest only.
      throw ProtocolError("unexpected " + to_string(frame.header.type) +
                          " frame on the server side");
  }
  server_obs().write_queue_depth.record(
      static_cast<double>(conn.replies.size()));
  // push() blocking while the write queue is full is the per-connection
  // back-pressure: a peer that stops reading stalls only its own reader.
  return conn.replies.push(std::move(reply));
}

void Server::writer_loop(Connection& conn) {
  bool open = true;
  while (open) {
    std::vector<PendingReply> batch = conn.replies.pop_batch(16);
    if (batch.empty()) break;  // closed and drained
    // Encode the whole drained batch into the connection arena and send it
    // with one write: a pipelining peer gets its responses in a single
    // segment, the syscall cost amortizes over the batch, and once the
    // arena has warmed to the working-set size the predict reply path
    // allocates nothing.  FIFO order is preserved because futures resolve
    // in dispatch order.
    conn.arena.reset();
    std::vector<std::uint8_t>& out = conn.arena.frames();
    for (PendingReply& reply : batch) {
      FrameType type = reply.type;
      if (reply.future.has_value()) {
        WireWriter& payload = conn.arena.payload();
        payload.clear();
        try {
          encode_predict_response_into(payload, reply.request_id,
                                       reply.future->get());
        } catch (const std::exception& e) {
          type = FrameType::ErrorReply;
          payload.clear();
          const std::vector<std::uint8_t> err =
              encode_wire_error({WireErrorCode::Internal, e.what()});
          payload.bytes(err.data(), err.size());
        }
        encode_frame_into(out, type, payload.data());
      } else {
        encode_frame_into(out, type, reply.payload);
      }
    }
    try {
      conn.socket.write_all(out.data(), out.size());
    } catch (const ConnectionError&) {
      open = false;
      continue;
    }
    frames_sent_.fetch_add(batch.size());
    server_obs().frames_tx.add(batch.size());
    bytes_sent_.fetch_add(out.size());
    server_obs().bytes_tx.add(out.size());
  }
  // Close first so a reader blocked in push() wakes; shut the socket so
  // the peer sees EOF and a reader blocked in poll/read wakes too.
  conn.replies.close();
  conn.socket.shutdown_both();
  conn.exited.fetch_add(1, std::memory_order_release);
}

}  // namespace gppm::net
