// net::Server — the prediction server on the wire.
//
// Bridges decoded PredictRequest frames into an existing
// serve::PredictionServer, preserving every in-process serving property:
// dynamic micro-batching (frames from many connections land in the same
// BoundedQueue the in-process submit path uses), the sharded prediction
// cache, load shedding, typed ResponseStatus answers, and per-request
// deadlines (stamped from the frame header's deadline field before the
// request enters the queue).
//
// Thread shape, front to back:
//
//   accept thread ──▶ per-connection reader ──▶ backend.submit()
//                          │ poll() + FrameDecoder        │ future
//                          ▼                              ▼
//                     bounded write queue ──▶ per-connection writer
//                     (serve::BoundedQueue,       (waits the future,
//                      back-pressure when the      encodes, write_all)
//                      peer stops reading)
//
// The reader enqueues a pending reply per frame *in arrival order* and the
// writer resolves them in that order, so responses on one connection are
// FIFO even though the backend answers out of order across the worker
// pool.  The write queue is bounded: a peer that stops draining responses
// eventually blocks its own reader (back-pressure per connection), never
// the server.  stop() is idempotent: it shuts the listener and every
// connection socket down, which unblocks all threads, then joins them.
//
// All socket I/O runs through fault::FaultySocket, so the chaos suite can
// inject short reads and mid-frame resets server-side too; gppm::obs
// counters (net.server.*) account bytes, frames, connections and protocol
// errors, and a histogram tracks write-queue depth.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "net/arena.hpp"
#include "net/faulty_socket.hpp"
#include "net/frame.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "serve/queue.hpp"
#include "serve/server.hpp"

namespace gppm::net {

struct ServerOptions {
  /// IPv4 address to bind; loopback by default (the deployment shape is a
  /// node-local sidecar the cluster governor talks to).
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port, readable via Server::port().
  std::uint16_t port = 0;
  int backlog = 64;
  /// Connections beyond this are accepted and immediately closed with an
  /// ErrorReply, so a client sees a typed refusal instead of a hang.
  std::size_t max_connections = 64;
  std::size_t max_frame_payload = kDefaultMaxPayload;
  /// Pending-response bound per connection (back-pressure on the reader
  /// once the peer stops draining).
  std::size_t write_queue_capacity = 256;
  /// Reader poll tick; bounds how fast stop() is observed when idle.
  int poll_interval_ms = 100;
};

/// Point-in-time transport counters (process-wide obs counters mirror
/// these under net.server.*).
struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_refused = 0;
  std::uint64_t connections_active = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t frames_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t requests_bridged = 0;
};

/// What the transport needs from whatever answers requests.  The classic
/// shape binds a serve::PredictionServer directly; the cluster router
/// binds its own submit path so a whole fleet can sit behind one port.
/// `health` is answered inline on the reader thread — it must be cheap and
/// must never block on the prediction queue.
struct ServeBridge {
  std::function<std::future<serve::Response>(serve::Request)> submit;
  std::function<std::vector<serve::PredictionServer::LoadedModel>()>
      loaded_models;
  std::function<HealthStatus()> health;
};

/// Build the bridge for the single-node shape.  `backend` must outlive
/// every use of the returned functions.
ServeBridge bridge_prediction_server(serve::PredictionServer& backend);

/// TCP front-end over a ServeBridge (a PredictionServer or a cluster
/// router).
class Server {
 public:
  /// Binds and starts serving immediately.  `backend` must outlive the
  /// Server.  `injector` may be nullptr; when set, server-side socket I/O
  /// consults the net.* fault sites.
  Server(serve::PredictionServer& backend, ServerOptions options = {},
         fault::FaultInjector* injector = nullptr);
  /// Same, fronting an arbitrary bridge (all three functions required).
  Server(ServeBridge bridge, ServerOptions options = {},
         fault::FaultInjector* injector = nullptr);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound port (the chosen one when options.port was 0).
  std::uint16_t port() const { return listener_.port(); }
  const std::string& address() const { return options_.bind_address; }

  /// Shut the listener and every connection down, join all threads.
  /// Idempotent and safe to call concurrently.
  void stop();
  bool running() const { return !stopped_.load(std::memory_order_acquire); }

  ServerStats stats() const;

 private:
  /// One reply owed to a peer, in arrival order.  Either an already
  /// encoded control payload (pong, info, error) or a pending backend
  /// future still to be encoded.
  struct PendingReply {
    FrameType type = FrameType::Pong;
    std::vector<std::uint8_t> payload;
    std::uint64_t request_id = 0;
    std::optional<std::future<serve::Response>> future;
  };

  struct Connection {
    explicit Connection(std::size_t write_queue_capacity)
        : replies(write_queue_capacity), read_buf(64 * 1024) {}
    fault::FaultySocket socket;
    serve::BoundedQueue<PendingReply> replies;
    /// Socket read scratch, allocated once per connection (not per loop
    /// iteration) — part of the steady-state zero-allocation contract.
    std::vector<std::uint8_t> read_buf;
    /// Response-assembly buffers for the writer loop, reused per batch.
    Arena arena;
    std::thread reader;
    std::thread writer;
    /// Loop-exit count; 2 = both threads done, safe to reap without
    /// blocking the accept loop on a live connection's join.
    std::atomic<int> exited{0};
  };

  void accept_loop();
  void reader_loop(Connection& conn);
  void writer_loop(Connection& conn);
  /// Decode + dispatch one frame; pushes the owed reply.  The frame's
  /// payload is a view into the connection decoder's buffer (zero-copy);
  /// dispatch must finish with it before the next socket read.  Returns
  /// false when the connection should close (backend shut down).
  bool dispatch(Connection& conn, const FrameView& frame);
  ServerInfo build_info() const;
  /// Reap finished connections (joins their threads).  Called from the
  /// accept loop; stop() reaps everything.
  void reap(bool all);

  ServeBridge bridge_;
  ServerOptions options_;
  fault::FaultInjector* injector_;
  Listener listener_;
  std::thread acceptor_;
  std::atomic<bool> stopped_{false};
  std::mutex shutdown_mutex_;

  mutable std::mutex connections_mutex_;
  std::list<std::shared_ptr<Connection>> connections_;

  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> connections_refused_{0};
  std::atomic<std::uint64_t> frames_received_{0};
  std::atomic<std::uint64_t> frames_sent_{0};
  std::atomic<std::uint64_t> bytes_received_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> requests_bridged_{0};
};

}  // namespace gppm::net
