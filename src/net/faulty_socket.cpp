#include "net/faulty_socket.hpp"

#include "fault/plan.hpp"

namespace gppm::fault {

FaultySocket FaultySocket::connect(const std::string& host, std::uint16_t port,
                                   FaultInjector* injector) {
  if (injector != nullptr && injector->should_fire(kSiteNetConnect)) {
    throw net::ConnectionError("injected connect refusal to " + host + ":" +
                               std::to_string(port));
  }
  return FaultySocket(net::Socket::connect(host, port), injector);
}

std::size_t FaultySocket::read_some(std::uint8_t* buffer, std::size_t size) {
  if (injector_ != nullptr) {
    if (injector_->should_fire(kSiteNetReset)) {
      socket_.shutdown_both();
      throw net::ConnectionError("injected connection reset (read)");
    }
    if (size > 1 && injector_->should_fire(kSiteNetShortRead)) size = 1;
  }
  return socket_.read_some(buffer, size);
}

void FaultySocket::write_all(const std::uint8_t* buffer, std::size_t size) {
  if (injector_ != nullptr && injector_->should_fire(kSiteNetReset)) {
    // Deliver half the buffer so the peer sees a mid-frame truncation,
    // then kill the link.
    socket_.write_all(buffer, size / 2);
    socket_.shutdown_both();
    throw net::ConnectionError("injected connection reset (write)");
  }
  socket_.write_all(buffer, size);
}

}  // namespace gppm::fault
