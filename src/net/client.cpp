#include "net/client.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "obs/obs.hpp"

namespace gppm::net {

namespace {

struct ClientObs {
  obs::Counter& rpcs;
  obs::Counter& reconnects;
  obs::Counter& transport_retries;
  obs::Counter& stale_evictions;
  obs::Counter& bytes_tx;
  obs::Counter& bytes_rx;
  obs::Histogram& rtt_us;
};

ClientObs& client_obs() {
  obs::Registry& reg = obs::Registry::instance();
  static ClientObs instruments{
      reg.counter("net.client.rpcs"),
      reg.counter("net.client.reconnects"),
      reg.counter("net.client.transport_retries"),
      reg.counter("net.client.stale_evictions"),
      reg.counter("net.client.bytes_tx"),
      reg.counter("net.client.bytes_rx"),
      reg.histogram("net.client.rtt_us",
                    {50, 100, 250, 500, 1000, 2500, 5000, 10000, 50000,
                     250000}),
  };
  return instruments;
}

}  // namespace

Client::Client(ClientOptions options, fault::FaultInjector* injector)
    : options_(std::move(options)), injector_(injector) {
  if (options_.pool_size == 0) options_.pool_size = 1;
  const Rng root(options_.seed);
  pool_.reserve(options_.pool_size);
  for (std::size_t i = 0; i < options_.pool_size; ++i) {
    auto conn = std::make_unique<Conn>();
    conn->decoder = FrameDecoder(options_.max_frame_payload);
    conn->rng = root.fork(i);
    pool_.push_back(std::move(conn));
  }
}

Client::~Client() { close(); }

void Client::close() {
  for (const std::unique_ptr<Conn>& conn : pool_) {
    std::lock_guard<std::mutex> lock(conn->mutex);
    conn->socket.close();
    conn->connected = false;
  }
}

ClientStats Client::stats() const {
  ClientStats s;
  s.rpcs = rpcs_.load();
  s.connects = connects_.load();
  s.reconnects = reconnects_.load();
  s.transport_retries = transport_retries_.load();
  s.stale_evictions = stale_evictions_.load();
  s.frames_sent = frames_sent_.load();
  s.frames_received = frames_received_.load();
  s.bytes_sent = bytes_sent_.load();
  s.bytes_received = bytes_received_.load();
  return s;
}

bool Client::is_stale(Conn& conn) const {
  // Half a frame buffered from an aborted exchange: the stream position
  // is unknown and the next response would mis-frame.
  if (conn.decoder.buffered() > 0) return true;
  if (options_.idle_timeout_ms > 0 &&
      std::chrono::steady_clock::now() - conn.last_used >
          std::chrono::milliseconds(options_.idle_timeout_ms)) {
    return true;
  }
  // Between RPCs the server owes this connection nothing, so a readable
  // socket means EOF (the server died or restarted) or stray bytes; both
  // make the FD unusable.  This is the probe that lets a killed-and-
  // restarted backend be re-adopted without a stale-FD error burning a
  // retry attempt, let alone surfacing to the caller.
  try {
    return conn.socket.wait_readable(0);
  } catch (const std::exception&) {
    return true;
  }
}

void Client::ensure_connected(Conn& conn) {
  if (conn.connected) {
    if (!is_stale(conn)) return;
    conn.socket.close();
    conn.connected = false;
    stale_evictions_.fetch_add(1);
    client_obs().stale_evictions.add();
  }
  conn.socket =
      fault::FaultySocket::connect(options_.host, options_.port, injector_);
  // A fresh connection carries no stale half-frame from the last one.
  conn.decoder = FrameDecoder(options_.max_frame_payload);
  conn.connected = true;
  conn.last_used = std::chrono::steady_clock::now();
  if (connects_.fetch_add(1) >= pool_.size()) {
    reconnects_.fetch_add(1);
    client_obs().reconnects.add();
  }
}

Frame Client::attempt(Conn& conn, const std::vector<std::uint8_t>& bytes) {
  ensure_connected(conn);
  conn.socket.write_all(bytes.data(), bytes.size());
  frames_sent_.fetch_add(1);
  bytes_sent_.fetch_add(bytes.size());
  client_obs().bytes_tx.add(bytes.size());
  return read_frame(conn);
}

Frame Client::read_frame(Conn& conn) {
  std::uint8_t buf[16 * 1024];
  while (true) {
    if (std::optional<Frame> frame = conn.decoder.next()) {
      frames_received_.fetch_add(1);
      conn.last_used = std::chrono::steady_clock::now();
      return std::move(*frame);
    }
    if (!conn.socket.wait_readable(options_.response_timeout_ms)) {
      throw ConnectionError("timed out after " +
                            std::to_string(options_.response_timeout_ms) +
                            " ms waiting for a response");
    }
    const std::size_t n = conn.socket.read_some(buf, sizeof(buf));
    if (n == 0) throw ConnectionError("server closed the connection");
    bytes_received_.fetch_add(n);
    client_obs().bytes_rx.add(n);
    conn.decoder.feed(buf, n);
  }
}

void Client::raise_error_reply(const Frame& frame) {
  const WireError error = decode_wire_error(frame.payload);
  throw RpcError(error.code, error.message);
}

Frame Client::call(FrameType type, const std::vector<std::uint8_t>& payload,
                   std::uint64_t deadline_micros, std::uint8_t version) {
  obs::ObsSpan span("net.client.rpc");
  const auto start = std::chrono::steady_clock::now();
  Conn& conn =
      *pool_[next_conn_.fetch_add(1, std::memory_order_relaxed) %
             pool_.size()];
  std::lock_guard<std::mutex> lock(conn.mutex);
  const std::vector<std::uint8_t> bytes =
      encode_frame(type, payload, deadline_micros, version);

  // Manual retry loop rather than retry_call: backoff here is real sleep
  // on a live transport, not the acquisition layer's virtual time.  The
  // delay schedule and budget semantics are the same (backoff_delay).
  const int attempts = std::max(1, options_.retry.max_attempts);
  Duration slept;
  for (int retry = 0;; ++retry) {
    try {
      Frame frame = attempt(conn, bytes);
      rpcs_.fetch_add(1);
      client_obs().rpcs.add();
      client_obs().rtt_us.record(
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - start)
              .count());
      if (frame.header.type == FrameType::ErrorReply) {
        raise_error_reply(frame);
      }
      return frame;
    } catch (const ProtocolError&) {
      // Bad bytes: resending cannot help, and the stream position is
      // unknown — drop the connection and propagate.
      conn.socket.close();
      conn.connected = false;
      throw;
    } catch (const ConnectionError&) {
      conn.socket.close();
      conn.connected = false;
      transport_retries_.fetch_add(1);
      client_obs().transport_retries.add();
      if (retry + 1 >= attempts) throw;
      const Duration delay = backoff_delay(options_.retry, retry, conn.rng);
      if (slept + delay > options_.retry.retry_budget) throw;
      slept += delay;
      std::this_thread::sleep_for(
          std::chrono::duration<double>(delay.as_seconds()));
    }
  }
}

std::vector<serve::Response> Client::predict_batch(
    const std::vector<serve::Request>& requests) {
  std::vector<serve::Response> responses;
  if (requests.empty()) return responses;
  obs::ObsSpan span("net.client.rpc_batch");
  const auto start = std::chrono::steady_clock::now();

  const std::uint64_t base = next_request_id_.fetch_add(
      requests.size(), std::memory_order_relaxed);
  std::vector<std::uint8_t> bytes;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const std::vector<std::uint8_t> one = encode_frame(
        FrameType::PredictRequest, encode_predict_request(base + i, requests[i]),
        deadline_to_micros(requests[i].deadline),
        predict_request_version(requests[i]));
    bytes.insert(bytes.end(), one.begin(), one.end());
  }

  Conn& conn =
      *pool_[next_conn_.fetch_add(1, std::memory_order_relaxed) %
             pool_.size()];
  std::lock_guard<std::mutex> lock(conn.mutex);
  const int attempts = std::max(1, options_.retry.max_attempts);
  Duration slept;
  for (int retry = 0;; ++retry) {
    responses.clear();
    try {
      ensure_connected(conn);
      conn.socket.write_all(bytes.data(), bytes.size());
      frames_sent_.fetch_add(requests.size());
      bytes_sent_.fetch_add(bytes.size());
      client_obs().bytes_tx.add(bytes.size());
      for (std::size_t i = 0; i < requests.size(); ++i) {
        Frame frame = read_frame(conn);
        if (frame.header.type == FrameType::ErrorReply) {
          // The remainder of the pipeline is in an unknown state; drop the
          // connection before propagating the typed server error.
          conn.socket.close();
          conn.connected = false;
          raise_error_reply(frame);
        }
        if (frame.header.type != FrameType::PredictResponse) {
          throw ProtocolError("expected PredictResponse, got " +
                              to_string(frame.header.type));
        }
        DecodedResponse decoded = decode_predict_response(frame.payload);
        if (decoded.request_id != base + i) {
          throw ProtocolError(
              "pipelined response id " + std::to_string(decoded.request_id) +
              " does not match expected id " + std::to_string(base + i));
        }
        responses.push_back(std::move(decoded.response));
      }
      rpcs_.fetch_add(requests.size());
      client_obs().rpcs.add(requests.size());
      client_obs().rtt_us.record(
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - start)
              .count());
      return responses;
    } catch (const ProtocolError&) {
      conn.socket.close();
      conn.connected = false;
      throw;
    } catch (const ConnectionError&) {
      conn.socket.close();
      conn.connected = false;
      transport_retries_.fetch_add(1);
      client_obs().transport_retries.add();
      if (retry + 1 >= attempts) throw;
      const Duration delay = backoff_delay(options_.retry, retry, conn.rng);
      if (slept + delay > options_.retry.retry_budget) throw;
      slept += delay;
      std::this_thread::sleep_for(
          std::chrono::duration<double>(delay.as_seconds()));
    }
  }
}

serve::Response Client::predict(const serve::Request& request) {
  const std::uint64_t id =
      next_request_id_.fetch_add(1, std::memory_order_relaxed);
  const Frame frame =
      call(FrameType::PredictRequest, encode_predict_request(id, request),
           deadline_to_micros(request.deadline),
           predict_request_version(request));
  if (frame.header.type != FrameType::PredictResponse) {
    throw ProtocolError("expected PredictResponse, got " +
                        to_string(frame.header.type));
  }
  DecodedResponse decoded = decode_predict_response(frame.payload);
  if (decoded.request_id != id) {
    throw ProtocolError("response id " + std::to_string(decoded.request_id) +
                        " does not match request id " + std::to_string(id));
  }
  return std::move(decoded.response);
}

ServerInfo Client::info() {
  const Frame frame = call(FrameType::InfoRequest, {}, 0);
  if (frame.header.type != FrameType::InfoResponse) {
    throw ProtocolError("expected InfoResponse, got " +
                        to_string(frame.header.type));
  }
  return decode_server_info(frame.payload);
}

void Client::ping() {
  const std::uint64_t token =
      next_request_id_.fetch_add(1, std::memory_order_relaxed);
  const Frame frame = call(FrameType::Ping, encode_ping(token), 0);
  if (frame.header.type != FrameType::Pong) {
    throw ProtocolError("expected Pong, got " + to_string(frame.header.type));
  }
  if (decode_ping(frame.payload) != token) {
    throw ProtocolError("pong token does not match ping");
  }
}

HealthStatus Client::health() {
  const std::uint64_t token =
      next_request_id_.fetch_add(1, std::memory_order_relaxed);
  const Frame frame =
      call(FrameType::HealthRequest, encode_health_request(token), 0);
  if (frame.header.type != FrameType::HealthResponse) {
    throw ProtocolError("expected HealthResponse, got " +
                        to_string(frame.header.type));
  }
  DecodedHealth decoded = decode_health_response(frame.payload);
  if (decoded.token != token) {
    throw ProtocolError("health token does not match request");
  }
  return decoded.status;
}

}  // namespace gppm::net
