#include "net/frame.hpp"

#include <algorithm>

namespace gppm::net {

bool frame_type_known(std::uint8_t raw, std::uint8_t version) {
  const std::uint8_t last =
      version >= 2 ? static_cast<std::uint8_t>(FrameType::HealthResponse)
                   : static_cast<std::uint8_t>(FrameType::ErrorReply);
  return raw >= static_cast<std::uint8_t>(FrameType::Ping) && raw <= last;
}

std::uint8_t frame_min_version(FrameType type) {
  switch (type) {
    case FrameType::HealthRequest:
    case FrameType::HealthResponse:
      return 2;
    default:
      return kBaseProtocolVersion;
  }
}

std::string to_string(FrameType type) {
  switch (type) {
    case FrameType::Ping: return "ping";
    case FrameType::Pong: return "pong";
    case FrameType::InfoRequest: return "info-request";
    case FrameType::InfoResponse: return "info-response";
    case FrameType::PredictRequest: return "predict-request";
    case FrameType::PredictResponse: return "predict-response";
    case FrameType::ErrorReply: return "error-reply";
    case FrameType::HealthRequest: return "health-request";
    case FrameType::HealthResponse: return "health-response";
  }
  return "unknown";
}

void encode_frame_into(std::vector<std::uint8_t>& out, FrameType type,
                       std::span<const std::uint8_t> payload,
                       std::uint64_t deadline_micros, std::uint8_t version) {
  GPPM_CHECK(payload.size() <= 0xffffffffull, "frame payload too large");
  if (version == 0) version = frame_min_version(type);
  GPPM_CHECK(version >= frame_min_version(type) && version <= kProtocolVersion,
             "frame version outside this build's range");
  // Stage the full header in a stack array and append it with one insert —
  // two bulk inserts per frame instead of a dozen field-sized pushes.
  std::array<std::uint8_t, kFrameHeaderSize> head;
  std::copy(kFrameMagic.begin(), kFrameMagic.end(), head.begin());
  head[4] = version;
  head[5] = static_cast<std::uint8_t>(type);
  head[6] = 0;  // flags, reserved
  head[7] = 0;
  const auto u32_at = [&head](std::size_t at, std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
      head[at + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(v >> (8 * i));
  };
  u32_at(8, static_cast<std::uint32_t>(payload.size()));
  u32_at(12, crc32(payload));
  for (int i = 0; i < 8; ++i) {
    head[16 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(deadline_micros >> (8 * i));
  }
  out.reserve(out.size() + kFrameHeaderSize + payload.size());
  out.insert(out.end(), head.begin(), head.end());
  out.insert(out.end(), payload.begin(), payload.end());
}

std::vector<std::uint8_t> encode_frame(FrameType type,
                                       std::span<const std::uint8_t> payload,
                                       std::uint64_t deadline_micros,
                                       std::uint8_t version) {
  std::vector<std::uint8_t> out;
  encode_frame_into(out, type, payload, deadline_micros, version);
  return out;
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t size) {
  // Reclaim fully consumed prefix before growing, so a long-lived
  // connection's buffer stays proportional to one frame, not to traffic.
  if (consumed_ > 0 && consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  } else if (consumed_ >= (1u << 16)) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + size);
}

std::optional<FrameHeader> FrameDecoder::parse_ready_header() const {
  if (buffered() < kFrameHeaderSize) return std::nullopt;
  const std::uint8_t* head = buffer_.data() + consumed_;

  WireReader reader(head, kFrameHeaderSize);
  std::array<std::uint8_t, 4> magic;
  for (std::uint8_t& b : magic) b = reader.u8();
  if (magic != kFrameMagic) throw ProtocolError("bad frame magic");
  const std::uint8_t version = reader.u8();
  if (version < kBaseProtocolVersion || version > max_version_) {
    throw ProtocolError("unsupported protocol version " +
                        std::to_string(version));
  }
  const std::uint8_t raw_type = reader.u8();
  if (!frame_type_known(raw_type, version)) {
    throw ProtocolError("unknown frame type " + std::to_string(raw_type) +
                        " for protocol version " + std::to_string(version));
  }
  FrameHeader header;
  header.type = static_cast<FrameType>(raw_type);
  header.version = version;
  if (frame_min_version(header.type) > version) {
    throw ProtocolError(to_string(header.type) +
                        " frame stamped with pre-dating version " +
                        std::to_string(version));
  }
  header.flags = reader.u16();
  if (header.flags != 0) {
    throw ProtocolError("nonzero reserved flags " +
                        std::to_string(header.flags));
  }
  header.payload_size = reader.u32();
  header.payload_crc = reader.u32();
  header.deadline_micros = reader.u64();

  // Reject an oversized declaration before buffering (or allocating) any
  // of the announced payload.
  if (header.payload_size > max_payload_) {
    throw ProtocolError("declared payload of " +
                        std::to_string(header.payload_size) +
                        " bytes exceeds the " + std::to_string(max_payload_) +
                        "-byte cap");
  }
  if (buffered() < kFrameHeaderSize + header.payload_size) return std::nullopt;
  return header;
}

std::optional<FrameView> FrameDecoder::next_view() {
  const std::optional<FrameHeader> header = parse_ready_header();
  if (!header) return std::nullopt;

  // CRC runs in place over the buffered bytes — the payload is never
  // copied on this path.
  const std::span<const std::uint8_t> body(
      buffer_.data() + consumed_ + kFrameHeaderSize, header->payload_size);
  if (crc32(body) != header->payload_crc) {
    throw ProtocolError("payload CRC mismatch on " + to_string(header->type) +
                        " frame");
  }
  consumed_ += kFrameHeaderSize + header->payload_size;
  return FrameView{*header, body};
}

std::optional<Frame> FrameDecoder::next() {
  const std::optional<FrameView> view = next_view();
  if (!view) return std::nullopt;
  Frame frame;
  frame.header = view->header;
  frame.payload.assign(view->payload.begin(), view->payload.end());
  return frame;
}

}  // namespace gppm::net
