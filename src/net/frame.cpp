#include "net/frame.hpp"

#include <algorithm>

namespace gppm::net {

bool frame_type_known(std::uint8_t raw, std::uint8_t version) {
  const std::uint8_t last =
      version >= 2 ? static_cast<std::uint8_t>(FrameType::HealthResponse)
                   : static_cast<std::uint8_t>(FrameType::ErrorReply);
  return raw >= static_cast<std::uint8_t>(FrameType::Ping) && raw <= last;
}

std::uint8_t frame_min_version(FrameType type) {
  switch (type) {
    case FrameType::HealthRequest:
    case FrameType::HealthResponse:
      return 2;
    default:
      return kBaseProtocolVersion;
  }
}

std::string to_string(FrameType type) {
  switch (type) {
    case FrameType::Ping: return "ping";
    case FrameType::Pong: return "pong";
    case FrameType::InfoRequest: return "info-request";
    case FrameType::InfoResponse: return "info-response";
    case FrameType::PredictRequest: return "predict-request";
    case FrameType::PredictResponse: return "predict-response";
    case FrameType::ErrorReply: return "error-reply";
    case FrameType::HealthRequest: return "health-request";
    case FrameType::HealthResponse: return "health-response";
  }
  return "unknown";
}

std::vector<std::uint8_t> encode_frame(FrameType type,
                                       const std::vector<std::uint8_t>& payload,
                                       std::uint64_t deadline_micros) {
  GPPM_CHECK(payload.size() <= 0xffffffffull, "frame payload too large");
  WireWriter w;
  w.bytes(kFrameMagic.data(), kFrameMagic.size());
  w.u8(frame_min_version(type));
  w.u8(static_cast<std::uint8_t>(type));
  w.u16(0);  // flags, reserved
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u32(crc32(payload));
  w.u64(deadline_micros);
  w.bytes(payload.data(), payload.size());
  return w.take();
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t size) {
  // Reclaim fully consumed prefix before growing, so a long-lived
  // connection's buffer stays proportional to one frame, not to traffic.
  if (consumed_ > 0 && consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  } else if (consumed_ >= (1u << 16)) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + size);
}

std::optional<Frame> FrameDecoder::next() {
  if (buffered() < kFrameHeaderSize) return std::nullopt;
  const std::uint8_t* head = buffer_.data() + consumed_;

  WireReader reader(head, kFrameHeaderSize);
  std::array<std::uint8_t, 4> magic;
  for (std::uint8_t& b : magic) b = reader.u8();
  if (magic != kFrameMagic) throw ProtocolError("bad frame magic");
  const std::uint8_t version = reader.u8();
  if (version < kBaseProtocolVersion || version > max_version_) {
    throw ProtocolError("unsupported protocol version " +
                        std::to_string(version));
  }
  const std::uint8_t raw_type = reader.u8();
  if (!frame_type_known(raw_type, version)) {
    throw ProtocolError("unknown frame type " + std::to_string(raw_type) +
                        " for protocol version " + std::to_string(version));
  }
  FrameHeader header;
  header.type = static_cast<FrameType>(raw_type);
  header.version = version;
  if (frame_min_version(header.type) > version) {
    throw ProtocolError(to_string(header.type) +
                        " frame stamped with pre-dating version " +
                        std::to_string(version));
  }
  header.flags = reader.u16();
  if (header.flags != 0) {
    throw ProtocolError("nonzero reserved flags " +
                        std::to_string(header.flags));
  }
  header.payload_size = reader.u32();
  header.payload_crc = reader.u32();
  header.deadline_micros = reader.u64();

  // Reject an oversized declaration before buffering (or allocating) any
  // of the announced payload.
  if (header.payload_size > max_payload_) {
    throw ProtocolError("declared payload of " +
                        std::to_string(header.payload_size) +
                        " bytes exceeds the " + std::to_string(max_payload_) +
                        "-byte cap");
  }
  if (buffered() < kFrameHeaderSize + header.payload_size) return std::nullopt;

  Frame frame;
  frame.header = header;
  const std::uint8_t* body = head + kFrameHeaderSize;
  frame.payload.assign(body, body + header.payload_size);
  if (crc32(frame.payload) != header.payload_crc) {
    throw ProtocolError("payload CRC mismatch on " +
                        to_string(header.type) + " frame");
  }
  consumed_ += kFrameHeaderSize + header.payload_size;
  return frame;
}

}  // namespace gppm::net
