// Thin RAII layer over POSIX TCP sockets — the only file in the repo that
// talks to the BSD socket API.
//
// Scope is deliberately narrow: IPv4 TCP with blocking I/O, because the
// serving deployment shape is "cluster-level governor queries a prediction
// service over loopback / rack-local links" and the concurrency story
// lives a layer up (net::Server owns the threads, not the sockets).  Two
// properties matter here:
//
//   * every descriptor is owned by exactly one Socket/Listener (move-only,
//     closed on destruction), so no code path can leak or double-close;
//   * transport failures throw ConnectionError, which *is* a
//     gppm::TransientError — the client's reconnect path and the generic
//     retry taxonomy (common/retry.hpp) treat a dropped connection exactly
//     like a dropped instrument sample: retryable.
//
// shutdown_both() is the cross-thread wakeup primitive: shutting a socket
// down makes a peer blocked in read()/poll() return immediately (EOF),
// which is how Server::stop() unblocks its connection threads without
// races on the descriptor itself.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/error.hpp"

namespace gppm::net {

/// The transport failed (refused connect, reset, unexpected EOF).  Derives
/// from TransientError: reconnect-and-retry is the expected reaction.
class ConnectionError : public TransientError {
 public:
  explicit ConnectionError(const std::string& what)
      : TransientError("connection error: " + what) {}
};

/// Owns one connected TCP socket descriptor.
class Socket {
 public:
  Socket() = default;
  /// Takes ownership of `fd`.
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Blocking IPv4 connect.  Throws ConnectionError on failure.
  static Socket connect(const std::string& host, std::uint16_t port);

  /// Read up to `size` bytes.  Returns 0 on orderly EOF; throws
  /// ConnectionError on transport errors.
  std::size_t read_some(std::uint8_t* buffer, std::size_t size);

  /// Write the whole buffer (looping over partial writes).  Throws
  /// ConnectionError if the peer goes away mid-write.
  void write_all(const std::uint8_t* buffer, std::size_t size);

  /// poll() for readability.  True when a read would not block (data or
  /// EOF), false on timeout.  Throws ConnectionError on poll errors.
  bool wait_readable(int timeout_ms);

  /// Disallow further sends and receives; wakes peers and threads blocked
  /// on this socket.  Safe to call from another thread and repeatedly.
  void shutdown_both() noexcept;

  void close() noexcept;
  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

 private:
  int fd_ = -1;
};

/// Owns one listening TCP socket.
class Listener {
 public:
  /// Bind + listen on `address:port`; port 0 picks an ephemeral port (the
  /// chosen one is readable via port()).  Throws ConnectionError.
  Listener(const std::string& address, std::uint16_t port, int backlog = 64);
  ~Listener() { close(); }

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Blocking accept.  Returns an invalid Socket (valid() == false) once
  /// the listener has been shut down; throws ConnectionError on other
  /// errors.
  Socket accept();

  /// Wake every thread blocked in accept(); they return invalid Sockets.
  void shutdown() noexcept;
  void close() noexcept;

  std::uint16_t port() const { return port_; }
  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace gppm::net
