// gppm-loadgen — load generator for gppm serving, wire-level or clustered.
//
// Two modes:
//
//   gppm-loadgen --connect HOST:PORT [--requests N] [--connections N]
//                [--open-loop RATE] [--jitter F] [--chaos] [--seed N]
//
// dials a running `gppm serve --listen` server, asks it (InfoRequest) which
// boards it serves, replays a synthetic suite trace for the first announced
// board over N pooled connections, and reports throughput plus the
// client-side latency distribution and per-status response counts.
//
//   gppm-loadgen --cluster N [--replicas R] [--gpu NAME] [--requests N]
//                [--connections N] [--open-loop RATE] [--jitter F]
//                [--chaos] [--seed N] [--drain-every MS]
//                [--rolling-restart] [--supervise] [--admission]
//                [--deadline-ms MS]
//
// self-hosts a cluster::LocalFleet of N backend prediction servers behind a
// Router (R replicas per key, hedged requests, circuit breaking) and drives
// it with worker threads.  Every answer is checked bit-identically against
// a single untouched reference server holding a copy of the same model
// pair: the run FAILS (nonzero exit) if any successful response diverges.
// --chaos puts each backend behind its own loopback gppm::net server,
// routes the router's client sockets through the cluster chaos profile
// fault sites (connect refusals, short reads, mid-frame resets, lost
// supervisor probes, slow drains) and additionally kills/restarts backends
// while the trace replays — the zero-wrong-answers gate must hold through
// all of it.  Victims come from a seeded cluster::ChaosSchedule, so the
// same --seed disturbs the same nodes in the same order run to run; the
// event log is printed at the end for diffing.
//
// Reconfiguration-under-load flags, composable with --chaos:
//   --drain-every MS    a drain scheduler drains and rejoins nodes on a
//                       seeded schedule, one planned handoff every MS;
//   --rolling-restart   continuously cycles fleet.rolling_restart() —
//                       drain → restart → rejoin of every node in turn;
//   --supervise         a cluster::Supervisor owns recovery: the chaos
//                       reaper only kills, the supervisor's probes and
//                       budgeted backoff restarts bring nodes back;
//   --admission         AIMD + deadline-aware admission control at the
//                       router door (excess load sheds as Overloaded);
//   --deadline-ms MS    stamp every request with a service deadline (the
//                       admission estimate sheds what cannot make it).
//
// Closed loop by default: each worker keeps exactly one request in flight.
// --open-loop paces aggregate arrivals at RATE requests/sec instead
// (workers sleep until each request's scheduled departure), which is how
// you measure latency under non-saturating load.  The fault injector is
// internally synchronized, so chaos runs may use any --connections; runs
// are only byte-reproducible at --connections 1 (fault arrival then has a
// deterministic interleaving).
//
// SIGINT/SIGTERM drain the in-flight work, print the partial report,
// flush --metrics-out/--trace-out, and exit 0 (divergence still fails).
//
// Also accepts the global --trace-out=FILE / --metrics-out=FILE
// observability flags (see gppm --help).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/fleet.hpp"
#include "cluster/schedule.hpp"
#include "cluster/supervisor.hpp"
#include "common/shutdown.hpp"
#include "common/str.hpp"
#include "common/table.hpp"
#include "core/characterization.hpp"
#include "fault/injector.hpp"
#include "net/client.hpp"
#include "obs/export.hpp"
#include "obs/obs.hpp"
#include "serve/server.hpp"
#include "serve/trace.hpp"

using namespace gppm;

namespace {

int usage(std::ostream& out, int code) {
  out << "usage:\n"
         "  gppm-loadgen --connect HOST:PORT [--requests N]"
         " [--connections N]\n"
         "               [--open-loop RATE] [--jitter F] [--chaos]"
         " [--seed N]\n"
         "  gppm-loadgen --cluster N [--replicas R] [--gpu NAME]"
         " [--requests N]\n"
         "               [--connections N] [--open-loop RATE] [--jitter F]\n"
         "               [--chaos] [--seed N] [--drain-every MS]"
         " [--rolling-restart]\n"
         "               [--supervise] [--admission] [--deadline-ms MS]\n"
         "also accepts --trace-out=FILE --metrics-out=FILE\n"
         "gpus: gtx285 gtx460 gtx480 gtx680\n";
  return code;
}

struct Options {
  std::string host;
  std::uint16_t port = 0;
  std::size_t requests = 2000;
  std::size_t connections = 4;
  double open_loop_rate = 0.0;  // 0 = closed loop
  double jitter = 0.0;
  bool chaos = false;
  std::uint64_t seed = 42;
  std::size_t cluster = 0;  // 0 = wire mode (--connect)
  std::size_t replicas = 2;
  std::string gpu = "gtx460";
  double drain_every_ms = 0.0;  // 0 = no drain scheduler
  bool rolling_restart = false;
  bool supervise = false;
  bool admission = false;
  double deadline_ms = 0.0;  // 0 = no per-request deadline
};

void parse_connect(const std::string& value, Options& opt) {
  const std::size_t colon = value.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == value.size()) {
    throw Error("--connect expects HOST:PORT, got '" + value + "'");
  }
  opt.host = value.substr(0, colon);
  const unsigned long port = std::stoul(value.substr(colon + 1));
  if (port == 0 || port > 65535) throw Error("port out of range");
  opt.port = static_cast<std::uint16_t>(port);
}

sim::GpuModel parse_gpu(const std::string& name) {
  if (name == "gtx285") return sim::GpuModel::GTX285;
  if (name == "gtx460") return sim::GpuModel::GTX460;
  if (name == "gtx480") return sim::GpuModel::GTX480;
  if (name == "gtx680") return sim::GpuModel::GTX680;
  throw Error("unknown GPU '" + name + "' (expected gtx285/460/480/680)");
}

double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t index = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(index, sorted.size() - 1)];
}

void add_latency_rows(AsciiTable& table, const std::vector<double>& sorted) {
  table.add_row({"p50 us", format_double(percentile(sorted, 0.50) * 1e6, 1)});
  table.add_row({"p95 us", format_double(percentile(sorted, 0.95) * 1e6, 1)});
  table.add_row({"p99 us", format_double(percentile(sorted, 0.99) * 1e6, 1)});
  table.add_row(
      {"p999 us", format_double(percentile(sorted, 0.999) * 1e6, 1)});
}

/// The cluster gate: two answers to the same pure request must agree on
/// everything the caller acts on.  Transport metadata (cache_hit, latency)
/// legitimately differs between replicas and is excluded.
bool same_answer(const serve::Response& a, const serve::Response& b) {
  return a.status == b.status && a.pair == b.pair &&
         a.power_watts == b.power_watts && a.time_seconds == b.time_seconds &&
         a.energy_joules == b.energy_joules;
}

/// Self-hosted fleet mode: build models once, answer the whole trace from
/// a reference single-node server, then drive the routed fleet and demand
/// bit-identity for every successful response.
int run_cluster(const Options& opt) {
  const sim::GpuModel board = parse_gpu(opt.gpu);
  std::cout << "fitting models for " << sim::to_string(board)
            << " (extended form)...\n";
  const core::Dataset ds = core::build_dataset(board);
  core::ModelOptions popt;
  popt.scaling = core::FeatureScaling::VoltageSquaredFrequency;
  popt.include_baseline_terms = true;
  const core::UnifiedModel power =
      core::UnifiedModel::fit(ds, core::TargetKind::Power, popt);
  const core::UnifiedModel perf =
      core::UnifiedModel::fit(ds, core::TargetKind::ExecTime);

  const serve::PhaseCorpus corpus = serve::build_phase_corpus(board);
  serve::TraceOptions topt;
  topt.request_count = opt.requests;
  topt.seed = opt.seed;
  topt.counter_jitter = opt.jitter;
  // Govern is stateful (hysteresis across requests), so replicated serving
  // cannot promise bit-identity for it; the cluster trace sticks to the
  // pure endpoints.
  topt.govern_fraction = 0.0;
  std::vector<serve::Request> trace = serve::synthetic_trace(corpus, topt);

  // Ground truth: one untouched in-process server with its own copy of
  // the same model pair answers the whole trace up front.
  std::vector<serve::Response> truth(trace.size());
  {
    serve::PredictionServer reference;
    reference.load_models(power, perf);
    for (std::size_t i = 0; i < trace.size(); ++i) {
      truth[i] = reference.submit(trace[i]).get();
    }
  }

  // Deadlines are stamped after the ground truth is computed, so the
  // reference answers stay the pure, deadline-free responses the gate
  // compares against.
  if (opt.deadline_ms > 0.0) {
    for (serve::Request& r : trace) {
      r.deadline = Duration::milliseconds(opt.deadline_ms);
    }
  }

  fault::FaultInjector injector(fault::FaultPlan::cluster_profile(),
                                opt.seed);
  cluster::FleetOptions fopt;
  fopt.backends = opt.cluster;
  if (opt.chaos) {
    fopt.wire = true;
    fopt.injector = &injector;
    fopt.client.retry.max_attempts = 8;
    fopt.client.retry.initial_backoff = Duration::milliseconds(1.0);
    fopt.client.retry.max_backoff = Duration::milliseconds(50.0);
  }
  cluster::RouterOptions ropt;
  ropt.replicas = opt.replicas;
  if (opt.chaos) ropt.injector = &injector;
  if (opt.admission) {
    ropt.admission_control = true;
  }
  cluster::LocalFleet fleet(power, perf, fopt, ropt);

  std::cout << corpus.counters.size() << " phases, " << trace.size()
            << " requests, " << opt.cluster << " backends ("
            << (opt.chaos ? "wire" : "in-process") << "), " << opt.replicas
            << " replicas per key, " << opt.connections << " workers, ";
  if (opt.open_loop_rate > 0.0) {
    std::cout << "open loop at " << format_double(opt.open_loop_rate, 0)
              << " req/s\n";
  } else {
    std::cout << "closed loop\n";
  }

  std::mutex merge_mutex;
  std::vector<double> latencies;
  std::map<std::string, std::uint64_t> status_counts;
  std::atomic<std::uint64_t> divergent{0};
  std::atomic<std::size_t> next{0};

  std::atomic<bool> running{true};
  auto paced_sleep = [&](double total_ms) {
    const auto tick = std::chrono::milliseconds(10);
    auto left = std::chrono::duration<double, std::milli>(total_ms);
    while (running.load() && !shutdown_requested() &&
           left.count() > 0.0) {
      std::this_thread::sleep_for(tick);
      left -= tick;
    }
  };

  // The supervisor owns recovery under --supervise: the reaper only
  // kills, and the probe → backoff → restart loop brings nodes back.
  std::unique_ptr<cluster::Supervisor> supervisor;
  if (opt.supervise) {
    cluster::SupervisorOptions sup;
    sup.seed = opt.seed;
    if (opt.chaos) sup.injector = &injector;
    supervisor = std::make_unique<cluster::Supervisor>(fleet, sup);
  }

  // Chaos additionally cycles real backend deaths through the run.  The
  // victims come from a seeded schedule, so two runs with the same --seed
  // disturb the same nodes in the same order (the event log below).
  cluster::ChaosSchedule reaper_schedule(
      {opt.seed, fleet.size(), /*drains=*/false, /*kills=*/true});
  std::atomic<std::uint64_t> kills{0};
  std::thread reaper;
  if (opt.chaos && fleet.size() > 1) {
    reaper = std::thread([&] {
      while (running.load() && !shutdown_requested()) {
        const cluster::ChaosEvent event = reaper_schedule.next();
        switch (event.action) {
          case cluster::ChaosAction::Kill:
            fleet.kill(event.node);
            kills.fetch_add(1);
            // Supervised recovery needs detection (threshold probes) plus
            // backoff before the node returns; pace the mayhem to match.
            paced_sleep(opt.supervise ? 250.0 : 40.0);
            break;
          case cluster::ChaosAction::Restart:
            // Under supervision the restart belongs to the supervisor;
            // the schedule still emits the event so logs stay identical
            // across supervised and unsupervised same-seed runs.
            if (!opt.supervise) fleet.restart(event.node);
            paced_sleep(60.0);
            break;
          default:
            break;
        }
      }
    });
  }

  // Planned reconfiguration under load: a drain scheduler cycles
  // drain → rejoin handoffs on its own seeded schedule.
  cluster::ChaosSchedule drain_schedule(
      {opt.seed, fleet.size(), /*drains=*/true, /*kills=*/false});
  std::atomic<std::uint64_t> drains{0};
  std::atomic<std::uint64_t> drain_losses{0};
  std::thread drainer;
  if (opt.drain_every_ms > 0.0 && fleet.size() > 1) {
    drainer = std::thread([&] {
      while (running.load() && !shutdown_requested()) {
        paced_sleep(opt.drain_every_ms);
        if (!running.load() || shutdown_requested()) break;
        const cluster::ChaosEvent event = drain_schedule.next();
        switch (event.action) {
          case cluster::ChaosAction::Drain: {
            const cluster::DrainReport report =
                fleet.drain_node(event.node);
            drains.fetch_add(1);
            if (!report.zero_loss) drain_losses.fetch_add(1);
            break;
          }
          case cluster::ChaosAction::Rejoin:
            fleet.rejoin(event.node);
            break;
          default:
            break;
        }
      }
    });
  }

  // Or the full upgrade shape: rolling drain → restart → rejoin sweeps.
  std::mutex rolling_mutex;
  std::vector<cluster::RollingRestartReport> rolling_reports;
  std::thread roller;
  if (opt.rolling_restart) {
    roller = std::thread([&] {
      while (running.load() && !shutdown_requested()) {
        cluster::RollingRestartReport report = fleet.rolling_restart();
        {
          std::lock_guard<std::mutex> lock(rolling_mutex);
          rolling_reports.push_back(std::move(report));
        }
        paced_sleep(100.0);
      }
    });
  }

  const auto start = std::chrono::steady_clock::now();
  const std::chrono::duration<double> interval(
      opt.open_loop_rate > 0.0 ? 1.0 / opt.open_loop_rate : 0.0);
  std::vector<std::thread> workers;
  workers.reserve(opt.connections);
  for (std::size_t w = 0; w < opt.connections; ++w) {
    workers.emplace_back([&] {
      std::vector<double> local_lat;
      std::map<std::string, std::uint64_t> local_status;
      std::uint64_t local_divergent = 0;
      for (std::size_t i = next.fetch_add(1); i < trace.size();
           i = next.fetch_add(1)) {
        if (shutdown_requested()) break;  // drain: finish nothing new
        if (opt.open_loop_rate > 0.0) {
          std::this_thread::sleep_until(start +
                                        interval * static_cast<double>(i));
        }
        const auto t0 = std::chrono::steady_clock::now();
        const serve::Response r = fleet.router().predict(trace[i]);
        local_lat.push_back(std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count());
        ++local_status[serve::to_string(r.status)];
        // The gate: every *successful* routed answer must equal the
        // single-node ground truth bit for bit.  Typed failures (a replica
        // set momentarily dead under chaos) are visible above as non-Ok
        // status counts — they are refusals, never wrong answers.
        if (r.ok() && !same_answer(r, truth[i])) ++local_divergent;
      }
      std::lock_guard<std::mutex> lock(merge_mutex);
      latencies.insert(latencies.end(), local_lat.begin(), local_lat.end());
      for (const auto& [status, count] : local_status) {
        status_counts[status] += count;
      }
      divergent.fetch_add(local_divergent);
    });
  }
  for (std::thread& t : workers) t.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  running.store(false);
  if (reaper.joinable()) reaper.join();
  if (drainer.joinable()) drainer.join();
  if (roller.joinable()) roller.join();
  if (supervisor) supervisor->stop();

  std::sort(latencies.begin(), latencies.end());
  const auto ok_it = status_counts.find(serve::to_string(serve::ResponseStatus::Ok));
  const std::uint64_t ok = ok_it != status_counts.end() ? ok_it->second : 0;
  AsciiTable table({"metric", "value"});
  table.add_row({"answered", std::to_string(latencies.size())});
  for (const auto& [status, count] : status_counts) {
    table.add_row({"status " + status, std::to_string(count)});
  }
  table.add_row({"divergent", std::to_string(divergent.load())});
  table.add_row(
      {"req/s", format_double(static_cast<double>(latencies.size()) / elapsed,
                              0)});
  add_latency_rows(table, latencies);
  table.print(std::cout);

  const cluster::RouterStats rs = fleet.router().stats();
  std::cout << rs.requests << " routed, " << rs.hedges_fired << " hedges ("
            << rs.hedge_wins << " wins, " << rs.hedges_abandoned
            << " abandoned), " << rs.failovers << " failovers, "
            << rs.breaker_opens << " breaker opens, " << rs.breaker_rejections
            << " breaker rejections, " << rs.exhausted << " exhausted\n";
  if (rs.drains > 0 || opt.admission) {
    std::cout << rs.drains << " drains (" << rs.drain_handed_off
              << " requests handed off), " << rs.admission_shed
              << " shed by admission\n";
  }
  if (opt.drain_every_ms > 0.0) {
    std::cout << "drain scheduler: " << drains.load() << " planned drains, "
              << drain_losses.load() << " with loss\n";
  }
  if (opt.rolling_restart) {
    std::size_t sweeps = 0;
    std::size_t lossy = 0;
    {
      std::lock_guard<std::mutex> lock(rolling_mutex);
      sweeps = rolling_reports.size();
      for (const cluster::RollingRestartReport& report : rolling_reports) {
        if (!report.zero_loss) ++lossy;
      }
    }
    std::cout << "rolling restarts: " << sweeps << " full sweeps, " << lossy
              << " with loss\n";
  }
  if (supervisor) {
    const cluster::SupervisorStats ss = supervisor->stats();
    std::cout << "supervisor: " << ss.probes << " probes ("
              << ss.probe_failures << " failed, " << ss.probes_lost
              << " injected losses), " << ss.restarts << " restarts, "
              << ss.budget_exhausted << " budget exhaustions\n";
  }
  if (opt.chaos) {
    std::cout << "chaos: " << kills.load() << " backend kills, "
              << injector.total_fires() << "/" << injector.total_checks()
              << " site checks fired\n";
  }
  // The full disturbance history, one event per line: two same-seed runs
  // emit identical logs (diff them to prove a repro).
  const std::string events =
      reaper_schedule.log_string() + drain_schedule.log_string();
  if (!events.empty()) {
    std::cout << "event log (seed " << opt.seed << "):\n" << events;
  }
  fleet.stop();

  if (divergent.load() != 0) {
    std::cerr << "FAIL: " << divergent.load()
              << " successful responses diverged from single-node ground"
                 " truth\n";
    return 1;
  }
  if (shutdown_requested()) {
    std::cout << "interrupted: partial run, " << ok
              << " successful responses (all bit-identical)\n";
    return 0;
  }
  if (ok == 0) {
    std::cerr << "FAIL: no successful responses\n";
    return 1;
  }
  std::cout << "bit-identity gate: " << ok << "/" << ok
            << " successful responses identical to single-node ground"
               " truth\n";
  return 0;
}

int run_wire(const Options& opt) {
  fault::FaultInjector injector(fault::FaultPlan::net_profile(), opt.seed);
  net::ClientOptions copt;
  copt.host = opt.host;
  copt.port = opt.port;
  copt.pool_size = opt.connections;
  if (opt.chaos) {
    copt.retry.max_attempts = 8;
    copt.retry.initial_backoff = Duration::milliseconds(1.0);
    copt.retry.max_backoff = Duration::milliseconds(50.0);
  }
  net::Client client(copt, opt.chaos ? &injector : nullptr);

  client.ping();
  const net::ServerInfo info = client.info();
  if (info.boards.empty()) throw Error("server has no models loaded");
  const sim::GpuModel board = info.boards.front().gpu;
  std::cout << "server speaks protocol v"
            << static_cast<int>(info.protocol_version) << ", boards:";
  for (const net::ModelInfo& m : info.boards) {
    std::cout << " " << sim::to_string(m.gpu);
  }
  std::cout << "\nbuilding " << sim::to_string(board) << " phase corpus...\n";

  const serve::PhaseCorpus corpus = serve::build_phase_corpus(board);
  serve::TraceOptions topt;
  topt.request_count = opt.requests;
  topt.seed = opt.seed;
  topt.counter_jitter = opt.jitter;
  const std::vector<serve::Request> trace =
      serve::synthetic_trace(corpus, topt);

  std::cout << corpus.counters.size() << " phases, " << trace.size()
            << " requests, " << opt.connections << " connections, ";
  if (opt.open_loop_rate > 0.0) {
    std::cout << "open loop at " << format_double(opt.open_loop_rate, 0)
              << " req/s\n";
  } else {
    std::cout << "closed loop\n";
  }

  std::mutex merge_mutex;
  std::vector<double> latencies;
  std::map<std::string, std::uint64_t> status_counts;
  std::atomic<std::uint64_t> failed{0};
  std::atomic<std::size_t> next{0};

  const auto start = std::chrono::steady_clock::now();
  const std::chrono::duration<double> interval(
      opt.open_loop_rate > 0.0 ? 1.0 / opt.open_loop_rate : 0.0);
  std::vector<std::thread> workers;
  workers.reserve(opt.connections);
  for (std::size_t w = 0; w < opt.connections; ++w) {
    workers.emplace_back([&] {
      std::vector<double> local_lat;
      std::map<std::string, std::uint64_t> local_status;
      for (std::size_t i = next.fetch_add(1); i < trace.size();
           i = next.fetch_add(1)) {
        if (shutdown_requested()) break;  // drain: finish nothing new
        if (opt.open_loop_rate > 0.0) {
          std::this_thread::sleep_until(start +
                                        interval * static_cast<double>(i));
        }
        const auto t0 = std::chrono::steady_clock::now();
        try {
          const serve::Response r = client.predict(trace[i]);
          local_lat.push_back(std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() - t0)
                                  .count());
          ++local_status[serve::to_string(r.status)];
        } catch (const net::NetError&) {
          // Retries exhausted (chaos) or the server went away: counted,
          // not fatal — the report must show partial failure honestly.
          failed.fetch_add(1);
        }
      }
      std::lock_guard<std::mutex> lock(merge_mutex);
      latencies.insert(latencies.end(), local_lat.begin(), local_lat.end());
      for (const auto& [status, count] : local_status) {
        status_counts[status] += count;
      }
    });
  }
  for (std::thread& t : workers) t.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  std::sort(latencies.begin(), latencies.end());
  AsciiTable table({"metric", "value"});
  table.add_row({"answered", std::to_string(latencies.size())});
  table.add_row({"transport failures", std::to_string(failed.load())});
  for (const auto& [status, count] : status_counts) {
    table.add_row({"status " + status, std::to_string(count)});
  }
  table.add_row(
      {"req/s", format_double(static_cast<double>(latencies.size()) / elapsed,
                              0)});
  add_latency_rows(table, latencies);
  table.print(std::cout);

  const net::ClientStats cs = client.stats();
  std::cout << cs.rpcs << " RPCs, " << cs.reconnects << " reconnects, "
            << cs.transport_retries << " transport retries, " << cs.bytes_sent
            << " bytes out / " << cs.bytes_received << " in\n";
  if (opt.chaos) {
    std::cout << "chaos: " << injector.total_fires() << "/"
              << injector.total_checks() << " site checks fired\n";
  }
  if (shutdown_requested()) {
    std::cout << "interrupted: partial run\n";
    return 0;
  }
  return failed.load() == trace.size() ? 1 : 0;
}

int run(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--help" || arg == "-h") return usage(std::cout, 0);
    if (arg == "--connect" && has_value) {
      parse_connect(argv[++i], opt);
    } else if (arg == "--cluster" && has_value) {
      opt.cluster = std::stoul(argv[++i]);
    } else if (arg == "--replicas" && has_value) {
      opt.replicas = std::stoul(argv[++i]);
    } else if (arg == "--gpu" && has_value) {
      opt.gpu = argv[++i];
    } else if (arg == "--requests" && has_value) {
      opt.requests = std::stoul(argv[++i]);
    } else if (arg == "--connections" && has_value) {
      opt.connections = std::stoul(argv[++i]);
    } else if (arg == "--open-loop" && has_value) {
      opt.open_loop_rate = std::stod(argv[++i]);
    } else if (arg == "--jitter" && has_value) {
      opt.jitter = std::stod(argv[++i]);
    } else if (arg == "--chaos") {
      opt.chaos = true;
    } else if (arg == "--seed" && has_value) {
      opt.seed = std::stoull(argv[++i]);
    } else if (arg == "--drain-every" && has_value) {
      opt.drain_every_ms = std::stod(argv[++i]);
    } else if (arg == "--rolling-restart") {
      opt.rolling_restart = true;
    } else if (arg == "--supervise") {
      opt.supervise = true;
    } else if (arg == "--admission") {
      opt.admission = true;
    } else if (arg == "--deadline-ms" && has_value) {
      opt.deadline_ms = std::stod(argv[++i]);
    } else {
      return usage(std::cerr, 2);
    }
  }
  const bool wire = !opt.host.empty();
  const bool fleet = opt.cluster > 0;
  if (wire == fleet || opt.requests == 0 || opt.connections == 0 ||
      opt.replicas == 0) {
    return usage(std::cerr, 2);
  }
  if (!fleet && (opt.drain_every_ms > 0.0 || opt.rolling_restart ||
                 opt.supervise || opt.admission || opt.deadline_ms > 0.0)) {
    return usage(std::cerr, 2);  // reconfiguration flags are --cluster only
  }
  return fleet ? run_cluster(opt) : run_wire(opt);
}

}  // namespace

int main(int argc, char** argv) {
  // Same global observability contract as gppm: strip the flags before
  // option parsing, flush the artifacts after the run.
  std::string trace_out;
  std::string metrics_out;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--trace-out" && has_value) {
      trace_out = argv[++i];
    } else if (starts_with(arg, "--trace-out=")) {
      trace_out = arg.substr(std::string("--trace-out=").size());
    } else if (arg == "--metrics-out" && has_value) {
      metrics_out = argv[++i];
    } else if (starts_with(arg, "--metrics-out=")) {
      metrics_out = arg.substr(std::string("--metrics-out=").size());
    } else {
      args.push_back(argv[i]);
    }
  }
  if (!trace_out.empty() || !metrics_out.empty()) obs::set_enabled(true);
  // Ctrl-C drains the run and still reaches the flush below (exit 0).
  install_shutdown_handler();

  try {
    const int rc = run(static_cast<int>(args.size()), args.data());
    if (!trace_out.empty()) {
      obs::write_trace_file(trace_out);
      std::cout << "trace written to " << trace_out << "\n";
    }
    if (!metrics_out.empty()) {
      obs::write_metrics_file(metrics_out);
      std::cout << "metrics written to " << metrics_out << "\n";
    }
    return rc;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
