// gppm-loadgen — wire-level load generator for `gppm serve --listen`.
//
// Dials a running prediction server, asks it (InfoRequest) which boards it
// serves, replays a synthetic suite trace for the first announced board
// over N pooled connections, and reports throughput plus the client-side
// latency distribution and per-status response counts.
//
//   gppm-loadgen --connect HOST:PORT [--requests N] [--connections N]
//                [--open-loop RATE] [--jitter F] [--chaos] [--seed N]
//
// Closed loop by default: each worker thread keeps exactly one RPC in
// flight on its pooled connection.  --open-loop paces aggregate arrivals
// at RATE requests/sec instead (workers sleep until each request's
// scheduled departure), which is how you measure latency under
// non-saturating load.  --chaos routes every socket operation of the
// client through the net.* fault sites (connect refusals, short reads,
// mid-frame resets) to demonstrate the reconnect/resend path against a
// live server; the injector is single-stream, so chaos forces
// --connections 1.
//
// Also accepts the global --trace-out=FILE / --metrics-out=FILE
// observability flags (see gppm --help).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <iostream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/str.hpp"
#include "common/table.hpp"
#include "fault/injector.hpp"
#include "net/client.hpp"
#include "obs/export.hpp"
#include "obs/obs.hpp"
#include "serve/trace.hpp"

using namespace gppm;

namespace {

int usage(std::ostream& out, int code) {
  out << "usage:\n"
         "  gppm-loadgen --connect HOST:PORT [--requests N]"
         " [--connections N]\n"
         "               [--open-loop RATE] [--jitter F] [--chaos]"
         " [--seed N]\n"
         "also accepts --trace-out=FILE --metrics-out=FILE\n";
  return code;
}

struct Options {
  std::string host;
  std::uint16_t port = 0;
  std::size_t requests = 2000;
  std::size_t connections = 4;
  double open_loop_rate = 0.0;  // 0 = closed loop
  double jitter = 0.0;
  bool chaos = false;
  std::uint64_t seed = 42;
};

void parse_connect(const std::string& value, Options& opt) {
  const std::size_t colon = value.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == value.size()) {
    throw Error("--connect expects HOST:PORT, got '" + value + "'");
  }
  opt.host = value.substr(0, colon);
  const unsigned long port = std::stoul(value.substr(colon + 1));
  if (port == 0 || port > 65535) throw Error("port out of range");
  opt.port = static_cast<std::uint16_t>(port);
}

double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t index = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(index, sorted.size() - 1)];
}

int run(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--help" || arg == "-h") return usage(std::cout, 0);
    if (arg == "--connect" && has_value) {
      parse_connect(argv[++i], opt);
    } else if (arg == "--requests" && has_value) {
      opt.requests = std::stoul(argv[++i]);
    } else if (arg == "--connections" && has_value) {
      opt.connections = std::stoul(argv[++i]);
    } else if (arg == "--open-loop" && has_value) {
      opt.open_loop_rate = std::stod(argv[++i]);
    } else if (arg == "--jitter" && has_value) {
      opt.jitter = std::stod(argv[++i]);
    } else if (arg == "--chaos") {
      opt.chaos = true;
    } else if (arg == "--seed" && has_value) {
      opt.seed = std::stoull(argv[++i]);
    } else {
      return usage(std::cerr, 2);
    }
  }
  if (opt.host.empty() || opt.requests == 0 || opt.connections == 0) {
    return usage(std::cerr, 2);
  }
  if (opt.chaos && opt.connections > 1) {
    // The fault injector draws from per-site RNG streams that are not
    // thread-safe; chaos runs are single-connection by construction.
    std::cout << "--chaos forces --connections 1\n";
    opt.connections = 1;
  }

  fault::FaultInjector injector(fault::FaultPlan::net_profile(), opt.seed);
  net::ClientOptions copt;
  copt.host = opt.host;
  copt.port = opt.port;
  copt.pool_size = opt.connections;
  if (opt.chaos) {
    copt.retry.max_attempts = 8;
    copt.retry.initial_backoff = Duration::milliseconds(1.0);
    copt.retry.max_backoff = Duration::milliseconds(50.0);
  }
  net::Client client(copt, opt.chaos ? &injector : nullptr);

  client.ping();
  const net::ServerInfo info = client.info();
  if (info.boards.empty()) throw Error("server has no models loaded");
  const sim::GpuModel board = info.boards.front().gpu;
  std::cout << "server speaks protocol v"
            << static_cast<int>(info.protocol_version) << ", boards:";
  for (const net::ModelInfo& m : info.boards) {
    std::cout << " " << sim::to_string(m.gpu);
  }
  std::cout << "\nbuilding " << sim::to_string(board) << " phase corpus...\n";

  const serve::PhaseCorpus corpus = serve::build_phase_corpus(board);
  serve::TraceOptions topt;
  topt.request_count = opt.requests;
  topt.seed = opt.seed;
  topt.counter_jitter = opt.jitter;
  const std::vector<serve::Request> trace =
      serve::synthetic_trace(corpus, topt);

  std::cout << corpus.counters.size() << " phases, " << trace.size()
            << " requests, " << opt.connections << " connections, ";
  if (opt.open_loop_rate > 0.0) {
    std::cout << "open loop at " << format_double(opt.open_loop_rate, 0)
              << " req/s\n";
  } else {
    std::cout << "closed loop\n";
  }

  std::mutex merge_mutex;
  std::vector<double> latencies;
  std::map<std::string, std::uint64_t> status_counts;
  std::atomic<std::uint64_t> failed{0};
  std::atomic<std::size_t> next{0};

  const auto start = std::chrono::steady_clock::now();
  const std::chrono::duration<double> interval(
      opt.open_loop_rate > 0.0 ? 1.0 / opt.open_loop_rate : 0.0);
  std::vector<std::thread> workers;
  workers.reserve(opt.connections);
  for (std::size_t w = 0; w < opt.connections; ++w) {
    workers.emplace_back([&] {
      std::vector<double> local_lat;
      std::map<std::string, std::uint64_t> local_status;
      for (std::size_t i = next.fetch_add(1); i < trace.size();
           i = next.fetch_add(1)) {
        if (opt.open_loop_rate > 0.0) {
          std::this_thread::sleep_until(start +
                                        interval * static_cast<double>(i));
        }
        const auto t0 = std::chrono::steady_clock::now();
        try {
          const serve::Response r = client.predict(trace[i]);
          local_lat.push_back(std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() - t0)
                                  .count());
          ++local_status[serve::to_string(r.status)];
        } catch (const net::NetError&) {
          // Retries exhausted (chaos) or the server went away: counted,
          // not fatal — the report must show partial failure honestly.
          failed.fetch_add(1);
        }
      }
      std::lock_guard<std::mutex> lock(merge_mutex);
      latencies.insert(latencies.end(), local_lat.begin(), local_lat.end());
      for (const auto& [status, count] : local_status) {
        status_counts[status] += count;
      }
    });
  }
  for (std::thread& t : workers) t.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  std::sort(latencies.begin(), latencies.end());
  AsciiTable table({"metric", "value"});
  table.add_row({"answered", std::to_string(latencies.size())});
  table.add_row({"transport failures", std::to_string(failed.load())});
  for (const auto& [status, count] : status_counts) {
    table.add_row({"status " + status, std::to_string(count)});
  }
  table.add_row(
      {"req/s", format_double(static_cast<double>(latencies.size()) / elapsed,
                              0)});
  table.add_row({"p50 us", format_double(percentile(latencies, 0.50) * 1e6, 1)});
  table.add_row({"p95 us", format_double(percentile(latencies, 0.95) * 1e6, 1)});
  table.add_row({"p99 us", format_double(percentile(latencies, 0.99) * 1e6, 1)});
  table.print(std::cout);

  const net::ClientStats cs = client.stats();
  std::cout << cs.rpcs << " RPCs, " << cs.reconnects << " reconnects, "
            << cs.transport_retries << " transport retries, " << cs.bytes_sent
            << " bytes out / " << cs.bytes_received << " in\n";
  if (opt.chaos) {
    std::cout << "chaos: " << injector.total_fires() << "/"
              << injector.total_checks() << " site checks fired\n";
  }
  return failed.load() == trace.size() ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Same global observability contract as gppm: strip the flags before
  // option parsing, flush the artifacts after the run.
  std::string trace_out;
  std::string metrics_out;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--trace-out" && has_value) {
      trace_out = argv[++i];
    } else if (starts_with(arg, "--trace-out=")) {
      trace_out = arg.substr(std::string("--trace-out=").size());
    } else if (arg == "--metrics-out" && has_value) {
      metrics_out = argv[++i];
    } else if (starts_with(arg, "--metrics-out=")) {
      metrics_out = arg.substr(std::string("--metrics-out=").size());
    } else {
      args.push_back(argv[i]);
    }
  }
  if (!trace_out.empty() || !metrics_out.empty()) obs::set_enabled(true);

  try {
    const int rc = run(static_cast<int>(args.size()), args.data());
    if (!trace_out.empty()) {
      obs::write_trace_file(trace_out);
      std::cout << "trace written to " << trace_out << "\n";
    }
    if (!metrics_out.empty()) {
      obs::write_metrics_file(metrics_out);
      std::cout << "metrics written to " << metrics_out << "\n";
    }
    return rc;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
