#!/bin/sh
# run_tier1.sh — the full pre-merge verification sweep in one command:
#
#   1. tier-1: Release-ish build + the complete ctest suite
#      (the same invocation ROADMAP.md names as the merge gate);
#   2. scalar: -DGPPM_SIMD=off build, the simd-labeled parity suites, and
#      a byte-for-byte diff of gppm_parity_fingerprint output against the
#      default build — the cross-build bit-identity gate from
#      docs/PERFORMANCE.md (model artifacts must not depend on the ISA);
#   3. TSan:   -DGPPM_SANITIZE=thread build, then every ThreadSanitizer
#      smoke target (compute pool, serve, obs, net, cluster, governor,
#      mix) —
#      the cluster one covers the membership-churn hammer and the 3-node
#      kill/restart chaos suite, the governor one the online
#      decide/observe/refit loop over the shared compute pool;
#   4. ASan:   -DGPPM_SANITIZE=address build, then the chaos_smoke and
#      simd_smoke targets (fault-injection/chaos suites, plus the
#      zero-copy span-aliasing fuzz where ASan can catch a dangling
#      payload view).
#
# Usage: tools/run_tier1.sh [--tier1-only]
#
# Build trees: build/ (tier-1), build-scalar/, build-tsan/, build-asan/ —
# all under the repo root, all reused across runs.  Exits nonzero on the
# first failing stage.
set -eu

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"
tier1_only=false
[ "${1:-}" = "--tier1-only" ] && tier1_only=true

echo "== tier-1: build + full ctest =="
cmake -B "$repo/build" -S "$repo" >/dev/null
cmake --build "$repo/build" -j"$jobs"
(cd "$repo/build" && ctest --output-on-failure -j"$jobs")

if $tier1_only; then
  echo "== tier-1 PASS (scalar + sanitizer stages skipped) =="
  exit 0
fi

echo "== scalar fallback: GPPM_SIMD=off build + parity + fingerprint diff =="
cmake -B "$repo/build-scalar" -S "$repo" -DGPPM_SIMD=off >/dev/null
cmake --build "$repo/build-scalar" -j"$jobs" \
  --target test_simd gppm_parity_fingerprint
cmake --build "$repo/build-scalar" --target simd_smoke
"$repo/build/src/core/gppm_parity_fingerprint" \
  | grep -v '^#' > "$repo/build/parity_fingerprint.txt"
"$repo/build-scalar/src/core/gppm_parity_fingerprint" \
  | grep -v '^#' > "$repo/build-scalar/parity_fingerprint.txt"
if ! diff "$repo/build/parity_fingerprint.txt" \
          "$repo/build-scalar/parity_fingerprint.txt"; then
  echo "FAIL: SIMD and scalar builds produced different artifacts" >&2
  exit 1
fi
echo "-- fingerprints bit-identical across builds"

echo "== TSan: build + concurrency smoke targets =="
cmake -B "$repo/build-tsan" -S "$repo" -DGPPM_SANITIZE=thread >/dev/null
cmake --build "$repo/build-tsan" -j"$jobs" \
  --target test_common test_linalg test_stats test_serve test_obs \
           test_net test_cluster test_governor test_mix
for target in parallel_smoke serve_smoke obs_smoke net_smoke cluster_smoke \
              governor_smoke mix_smoke
do
  echo "-- $target"
  cmake --build "$repo/build-tsan" --target "$target"
done

echo "== ASan: build + chaos/simd smokes =="
cmake -B "$repo/build-asan" -S "$repo" -DGPPM_SANITIZE=address >/dev/null
cmake --build "$repo/build-asan" -j"$jobs" \
  --target test_fault test_chaos test_simd
cmake --build "$repo/build-asan" --target chaos_smoke
cmake --build "$repo/build-asan" --target simd_smoke

echo "== run_tier1: ALL STAGES PASS =="
