#!/bin/sh
# run_tier1.sh — the full pre-merge verification sweep in one command:
#
#   1. tier-1: Release-ish build + the complete ctest suite
#      (the same invocation ROADMAP.md names as the merge gate);
#   2. TSan:   -DGPPM_SANITIZE=thread build, then every ThreadSanitizer
#      smoke target (compute pool, serve, obs, net, cluster) — the
#      cluster one covers the membership-churn hammer and the 3-node
#      kill/restart chaos suite;
#   3. ASan:   -DGPPM_SANITIZE=address build, then the chaos_smoke
#      target (fault-injection + chaos integration suites).
#
# Usage: tools/run_tier1.sh [--tier1-only]
#
# Build trees: build/ (tier-1), build-tsan/, build-asan/ — all under the
# repo root, all reused across runs.  Exits nonzero on the first failing
# stage.
set -eu

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"
tier1_only=false
[ "${1:-}" = "--tier1-only" ] && tier1_only=true

echo "== tier-1: build + full ctest =="
cmake -B "$repo/build" -S "$repo" >/dev/null
cmake --build "$repo/build" -j"$jobs"
(cd "$repo/build" && ctest --output-on-failure -j"$jobs")

if $tier1_only; then
  echo "== tier-1 PASS (sanitizer stages skipped) =="
  exit 0
fi

echo "== TSan: build + concurrency smoke targets =="
cmake -B "$repo/build-tsan" -S "$repo" -DGPPM_SANITIZE=thread >/dev/null
cmake --build "$repo/build-tsan" -j"$jobs" \
  --target test_common test_linalg test_stats test_serve test_obs \
           test_net test_cluster
for target in parallel_smoke serve_smoke obs_smoke net_smoke cluster_smoke
do
  echo "-- $target"
  cmake --build "$repo/build-tsan" --target "$target"
done

echo "== ASan: build + chaos smoke =="
cmake -B "$repo/build-asan" -S "$repo" -DGPPM_SANITIZE=address >/dev/null
cmake --build "$repo/build-asan" -j"$jobs" --target test_fault test_chaos
cmake --build "$repo/build-asan" --target chaos_smoke

echo "== run_tier1: ALL STAGES PASS =="
