// Calibration tool: fits the unified models on every board and prints
// adjusted R^2 and error tables (TABLEs V-VIII headlines) for tuning the
// noise parameters.  Not part of the reproduction suite; see bench/.
#include <cstdio>
#include "core/dataset.hpp"
#include "core/unified_model.hpp"
#include "core/evaluation.hpp"
using namespace gppm;

int main() {
  for (sim::GpuModel m : sim::kAllGpus) {
    core::Dataset ds = core::build_dataset(m);
    core::UnifiedModel pw = core::UnifiedModel::fit(ds, core::TargetKind::Power);
    core::UnifiedModel pf = core::UnifiedModel::fit(ds, core::TargetKind::ExecTime);
    auto ew = core::evaluate(pw, ds);
    auto ef = core::evaluate(pf, ds);
    std::printf("%s: samples=%zu rows=%zu\n", sim::to_string(m).c_str(),
                ds.samples.size(), ds.row_count());
    std::printf("  power: R2=%.2f err=%.1f%% err=%.1fW  vars:", pw.adjusted_r2(), ew.mape(), ew.mean_abs_error());
    for (auto& v : pw.variables()) std::printf(" %s", v.counter.c_str());
    std::printf("\n  perf : R2=%.2f err=%.1f%%  vars:", pf.adjusted_r2(), ef.mape());
    for (auto& v : pf.variables()) std::printf(" %s", v.counter.c_str());
    std::printf("\n");
  }
  return 0;
}
