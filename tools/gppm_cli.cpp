// gppm command-line interface.
//
// Everything the library offers, driveable from a shell:
//
//   gppm specs                          TABLE I device registry
//   gppm pairs <gpu>                    configurable pairs of a board
//   gppm benchmarks                     the 37-program suite
//   gppm sweep <gpu> <benchmark>        per-pair measurement sweep
//   gppm fit <gpu> <power|exectime> [--out FILE] [--v2f] [--baseline]
//                                       build the 114-sample corpus, fit a
//                                       unified model, optionally save it
//   gppm predict <model-file> <benchmark> [size]
//                                       load a model, profile the workload,
//                                       predict every configurable pair
//   gppm governor <gpu> <bench> [bench...]
//                                       run the phase-level DVFS governor
//   gppm govern <gpu> [options]         run the *online* closed-loop
//                                       governor over a drifting phase
//                                       schedule: profile -> decide ->
//                                       apply through the VBIOS controller
//                                       -> measure -> refit online
//   gppm serve <gpu> --listen PORT      put the prediction server on the
//                                       wire (gppm::net RPC; port 0 picks
//                                       an ephemeral port, printed on start)
//   gppm serve-bench <gpu> [options]    replay a synthetic trace against the
//                                       concurrent prediction server
//   gppm chaos <gpu> [options]          characterize under injected
//                                       instrument faults; report coverage
//                                       and divergence vs the fault-free run
//   gppm mix <gpu> [options]            co-schedule kernel mixes on one
//                                       board: per-member slowdowns and
//                                       bandwidth pressure, and with --fit
//                                       the interference-aware model gate
//                                       (solo vs mix held-out error)
//   gppm obs-demo                       exercise every instrumented layer
//                                       and print the obs metrics table
//
// Any command additionally accepts --trace-out=FILE and --metrics-out=FILE:
// either flag enables the gppm::obs observability layer for the run and,
// on exit, writes the span buffer as Chrome trace_event JSON
// (chrome://tracing / Perfetto loadable) and the metrics registry as CSV.
//
// GPU names: gtx285, gtx460, gtx480, gtx680.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.hpp"
#include "common/str.hpp"
#include "common/table.hpp"
#include "core/characterization.hpp"
#include "core/evaluation.hpp"
#include "core/governor.hpp"
#include "core/serialization.hpp"
#include "dvfs/combos.hpp"
#include "governor/loop.hpp"
#include "kernelir/programs.hpp"
#include "kernelir/trace.hpp"
#include "mix/engine.hpp"
#include "mix/model.hpp"
#include "mix/schedule.hpp"
#include "cluster/fleet.hpp"
#include "cluster/supervisor.hpp"
#include "common/shutdown.hpp"
#include "net/server.hpp"
#include "obs/export.hpp"
#include "obs/obs.hpp"
#include "profiler/cuda_profiler.hpp"
#include "serve/server.hpp"
#include "serve/trace.hpp"
#include "workload/suite.hpp"

using namespace gppm;

namespace {

/// Explicitly requested help prints to stdout and exits 0; a bad
/// invocation prints the same text to stderr and exits 2.
int usage(std::ostream& out, int code) {
  out << "usage:\n"
         "  gppm specs\n"
         "  gppm pairs <gpu>\n"
         "  gppm counters <gpu>\n"
         "  gppm trace <ir-program>\n"
         "  gppm benchmarks\n"
         "  gppm sweep <gpu> <benchmark>\n"
         "  gppm fit <gpu> <power|exectime> [--out FILE] [--v2f] [--baseline]\n"
         "  gppm predict <model-file> <benchmark> [size-index]\n"
         "  gppm governor <gpu> <benchmark> [benchmark...]\n"
         "  gppm govern <gpu> [--policy energy|edp|perf-cap] [--phases N]"
         " [--seed N]\n"
         "              [--cap W] [--max-slowdown F] [--window N] [--refit N]"
         " [--no-baselines]\n"
         "  gppm serve <gpu> --listen PORT [--workers N] [--cache N]"
         " [--duration S]\n"
         "                  [--cluster N [--replicas R] [--supervise]"
         " [--admission]]\n"
         "  gppm serve-bench <gpu> [--requests N] [--workers N] [--clients N]"
         " [--cache N] [--jitter F]\n"
         "  gppm chaos <gpu> [--fault-profile FILE] [--seed N]"
         " [--benchmarks N]\n"
         "  gppm mix <gpu> [--mixes N] [--degree D] [--seed N] [--fit]\n"
         "  gppm obs-demo\n"
         "any command also accepts --trace-out=FILE --metrics-out=FILE\n"
         "gpus: gtx285 gtx460 gtx480 gtx680\n";
  return code;
}

int usage() { return usage(std::cerr, 2); }

sim::GpuModel parse_gpu(const std::string& name) {
  if (name == "gtx285") return sim::GpuModel::GTX285;
  if (name == "gtx460") return sim::GpuModel::GTX460;
  if (name == "gtx480") return sim::GpuModel::GTX480;
  if (name == "gtx680") return sim::GpuModel::GTX680;
  throw Error("unknown GPU '" + name + "' (expected gtx285/460/480/680)");
}

int cmd_specs() {
  AsciiTable table({"GPU", "arch", "cores", "GFLOPS", "GB/s", "TDP W",
                    "counters"});
  for (sim::GpuModel m : sim::kAllGpus) {
    const sim::DeviceSpec& s = sim::device_spec(m);
    table.add_row({sim::to_string(m), sim::to_string(s.architecture),
                   std::to_string(s.cuda_cores), format_double(s.peak_gflops, 0),
                   format_double(s.mem_bandwidth_gbps, 1),
                   format_double(s.tdp.as_watts(), 0),
                   std::to_string(s.performance_counter_count)});
  }
  table.print(std::cout);
  return 0;
}

int cmd_pairs(const std::string& gpu) {
  const sim::GpuModel model = parse_gpu(gpu);
  const sim::DeviceSpec& spec = sim::device_spec(model);
  AsciiTable table({"pair", "core MHz", "mem MHz"});
  for (sim::FrequencyPair p : dvfs::configurable_pairs(model)) {
    table.add_row({sim::to_string(p),
                   format_double(spec.core_clock.at(p.core).frequency.as_mhz(), 0),
                   format_double(spec.mem_clock.at(p.mem).frequency.as_mhz(), 0)});
  }
  table.print(std::cout);
  return 0;
}

int cmd_counters(const std::string& gpu) {
  const sim::GpuModel model = parse_gpu(gpu);
  const auto& catalog =
      profiler::counter_catalog(sim::device_spec(model).architecture);
  AsciiTable table({"#", "counter", "class"});
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    table.add_row({std::to_string(i), catalog[i].name,
                   profiler::to_string(catalog[i].klass)});
  }
  table.print(std::cout);
  std::cout << catalog.size() << " counters ("
            << sim::to_string(sim::device_spec(model).architecture) << ")\n";
  return 0;
}

int cmd_trace(const std::string& which) {
  ir::Program program;
  if (which == "vector_add") {
    program = ir::vector_add(1 << 22);
  } else if (which == "matmul") {
    program = ir::matrix_mul_tiled(1024);
  } else if (which == "transpose") {
    program = ir::transpose_naive(2048);
  } else if (which == "stencil") {
    program = ir::stencil5(1 << 20, 8);
  } else if (which == "histogram") {
    program = ir::histogram_shared(8, 32);
  } else if (which == "pointer_chase") {
    program = ir::pointer_chase(1 << 20, 32, 0.4);
  } else {
    throw Error("unknown IR program '" + which +
                "' (vector_add, matmul, transpose, stencil, histogram, "
                "pointer_chase)");
  }
  const ir::TraceStats s = ir::trace_block(program);
  AsciiTable table({"quantity", "measured (per thread)"});
  table.add_row({"FLOPs", format_double(s.flops, 1)});
  table.add_row({"int ops", format_double(s.int_ops, 1)});
  table.add_row({"SFU ops", format_double(s.special_ops, 1)});
  table.add_row({"shared ops", format_double(s.shared_ops, 1)});
  table.add_row({"global load bytes", format_double(s.global_load_bytes, 1)});
  table.add_row({"global store bytes", format_double(s.global_store_bytes, 1)});
  table.add_row({"coalescing", format_double(s.coalescing, 3)});
  table.add_row({"locality", format_double(s.locality, 3)});
  table.add_row({"bank-conflict replay", format_double(s.bank_conflict, 2)});
  table.add_row({"divergence factor", format_double(s.divergence, 2)});
  table.add_row({"barriers", format_double(s.syncs, 1)});
  std::cout << "traced " << program.name << " ("
            << program.threads_per_block << " threads x "
            << program.iterations << " iterations, one block)\n";
  table.print(std::cout);
  return 0;
}

int cmd_benchmarks() {
  AsciiTable table({"benchmark", "suite", "input sizes", "profiler"});
  for (const workload::BenchmarkDef& def : workload::benchmark_suite()) {
    table.add_row({def.name, workload::to_string(def.suite),
                   std::to_string(def.size_count),
                   profiler::CudaProfiler::supports(def.name) ? "ok"
                                                              : "unsupported"});
  }
  table.print(std::cout);
  return 0;
}

int cmd_sweep(const std::string& gpu, const std::string& bench_name) {
  const sim::GpuModel model = parse_gpu(gpu);
  const workload::BenchmarkDef& bench = workload::find_benchmark(bench_name);
  core::MeasurementRunner runner(model);
  const core::Sweep sweep =
      core::sweep_pairs(runner, bench, bench.size_count - 1);

  AsciiTable table({"pair", "time s", "power W", "energy J", "rel perf",
                    "rel eff"});
  for (const core::PairResult& r : sweep.results) {
    table.add_row({sim::to_string(r.measurement.pair),
                   format_double(r.measurement.exec_time.as_seconds(), 3),
                   format_double(r.measurement.avg_power.as_watts(), 1),
                   format_double(r.measurement.energy.as_joules(), 1),
                   format_double(r.relative_performance, 3),
                   format_double(r.relative_efficiency, 3)});
  }
  table.print(std::cout);
  std::cout << "best pair " << sim::to_string(sweep.best_pair())
            << ", efficiency +" << format_double(sweep.improvement_percent(), 1)
            << "%, performance -"
            << format_double(sweep.performance_loss_percent(), 1) << "%\n";
  return 0;
}

int cmd_fit(int argc, char** argv) {
  // gppm fit <gpu> <target> [--out FILE] [--v2f] [--baseline]
  if (argc < 4) return usage();
  const sim::GpuModel model = parse_gpu(argv[2]);
  const std::string target_name = argv[3];
  if (target_name != "power" && target_name != "exectime") return usage();
  const core::TargetKind target = target_name == "power"
                                      ? core::TargetKind::Power
                                      : core::TargetKind::ExecTime;
  core::ModelOptions opt;
  std::string out_file;
  for (int i = 4; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_file = argv[++i];
    } else if (arg == "--v2f") {
      opt.scaling = core::FeatureScaling::VoltageSquaredFrequency;
    } else if (arg == "--baseline") {
      opt.include_baseline_terms = true;
    } else {
      return usage();
    }
  }

  std::cout << "building corpus for " << sim::to_string(model) << "...\n";
  const core::Dataset ds = core::build_dataset(model);
  const core::UnifiedModel fitted = core::UnifiedModel::fit(ds, target, opt);
  const core::Evaluation eval = core::evaluate(fitted, ds);

  std::cout << "adjusted R^2 " << format_double(fitted.adjusted_r2(), 3)
            << ", mean |error| " << format_double(eval.mape(), 1) << "%\n";
  AsciiTable table({"counter", "class", "coefficient", "cum. adj R^2"});
  for (const core::SelectedVariable& v : fitted.variables()) {
    table.add_row({v.counter, profiler::to_string(v.klass),
                   format_double(v.coefficient, 6),
                   format_double(v.cumulative_adjusted_r2, 3)});
  }
  table.print(std::cout);

  if (!out_file.empty()) {
    std::ofstream out(out_file);
    if (!out) throw Error("cannot open " + out_file);
    core::serialize_model(fitted, out);
    std::cout << "model written to " << out_file << "\n";
  }
  return 0;
}

int cmd_predict(int argc, char** argv) {
  // gppm predict <model-file> <benchmark> [size]
  if (argc < 4) return usage();
  std::ifstream in(argv[2]);
  if (!in) throw Error(std::string("cannot open ") + argv[2]);
  const core::UnifiedModel model = core::deserialize_model(in);
  const workload::BenchmarkDef& bench = workload::find_benchmark(argv[3]);
  const std::size_t size = argc > 4
                               ? static_cast<std::size_t>(std::stoul(argv[4]))
                               : bench.size_count - 1;

  core::MeasurementRunner runner(model.gpu());
  profiler::CudaProfiler prof;
  runner.gpu().set_frequency_pair(sim::kDefaultPair);
  const profiler::ProfileResult counters =
      prof.collect(runner.gpu(), runner.prepared_profile(bench, size));

  const std::string unit =
      model.target() == core::TargetKind::Power ? "W" : "s";
  AsciiTable table({"pair", "predicted " + unit, "measured " + unit});
  for (sim::FrequencyPair pair : dvfs::configurable_pairs(model.gpu())) {
    const core::Measurement m = runner.measure(bench, size, pair);
    const double actual = model.target() == core::TargetKind::Power
                              ? m.avg_power.as_watts()
                              : m.exec_time.as_seconds();
    table.add_row({sim::to_string(pair),
                   format_double(model.predict(counters, pair), 2),
                   format_double(actual, 2)});
  }
  table.print(std::cout);
  return 0;
}

int cmd_governor(int argc, char** argv) {
  // gppm governor <gpu> <bench> [bench...]
  if (argc < 4) return usage();
  const sim::GpuModel model = parse_gpu(argv[2]);

  std::cout << "training models for " << sim::to_string(model) << "...\n";
  const core::Dataset ds = core::build_dataset(model);
  core::ModelOptions popt;
  popt.scaling = core::FeatureScaling::VoltageSquaredFrequency;
  popt.include_baseline_terms = true;
  core::DvfsGovernor governor(
      core::UnifiedModel::fit(ds, core::TargetKind::Power, popt),
      core::UnifiedModel::fit(ds, core::TargetKind::ExecTime));

  core::MeasurementRunner runner(model);
  profiler::CudaProfiler prof;

  AsciiTable table({"phase", "pair", "energy J", "default J", "saving %"});
  for (int i = 3; i < argc; ++i) {
    const workload::BenchmarkDef& bench = workload::find_benchmark(argv[i]);
    const sim::RunProfile profile =
        runner.prepared_profile(bench, bench.size_count - 1);
    runner.gpu().set_frequency_pair(governor.current_pair());
    const profiler::ProfileResult counters = prof.collect(runner.gpu(), profile);
    const sim::FrequencyPair pick = governor.decide(counters);
    const core::Measurement chosen = runner.measure_profile(profile, pick);
    const core::Measurement def =
        runner.measure_profile(profile, sim::kDefaultPair);
    table.add_row({argv[i], sim::to_string(pick),
                   format_double(chosen.energy.as_joules(), 1),
                   format_double(def.energy.as_joules(), 1),
                   format_double((1.0 - chosen.energy / def.energy) * 100, 1)});
  }
  table.print(std::cout);
  std::cout << governor.switch_count() << " P-state switches over "
            << governor.decision_count() << " phases\n";
  return 0;
}

int cmd_govern(int argc, char** argv) {
  // gppm govern <gpu> [--policy energy|edp|perf-cap] [--phases N]
  //             [--seed N] [--cap W] [--max-slowdown F] [--window N]
  //             [--refit N] [--no-baselines]
  if (argc < 3) return usage();
  const sim::GpuModel model = parse_gpu(argv[2]);

  governor::LoopOptions opt;
  std::size_t phase_count = 24;
  std::uint64_t seed = 42;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw Error("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--policy") {
      const std::string p = next();
      if (p == "energy") {
        opt.governor.policy = core::GovernorPolicy::MinimumEnergy;
      } else if (p == "edp") {
        opt.governor.policy = core::GovernorPolicy::MinimumEdp;
      } else if (p == "perf-cap") {
        opt.governor.policy = core::GovernorPolicy::PowerCap;
      } else {
        throw Error("unknown policy '" + p + "' (energy/edp/perf-cap)");
      }
    } else if (arg == "--phases") phase_count = std::stoul(next());
    else if (arg == "--seed") seed = std::stoull(next());
    else if (arg == "--cap") opt.governor.power_cap = Power::watts(std::stod(next()));
    else if (arg == "--max-slowdown") opt.governor.max_slowdown = std::stod(next());
    else if (arg == "--window") opt.governor.refit.window = std::stoul(next());
    else if (arg == "--refit") opt.governor.refit_interval = std::stoul(next());
    else if (arg == "--no-baselines") opt.measure_baselines = false;
    else return usage();
  }

  std::cout << "training models for " << sim::to_string(model) << "...\n";
  const core::Dataset ds = core::build_dataset(model);
  core::ModelOptions popt;
  popt.scaling = core::FeatureScaling::VoltageSquaredFrequency;
  popt.include_baseline_terms = true;
  governor::GovernorLoop loop(
      model, ds, core::UnifiedModel::fit(ds, core::TargetKind::Power, popt),
      core::UnifiedModel::fit(ds, core::TargetKind::ExecTime), opt);

  workload::PhaseScheduleOptions sched;
  sched.phases = phase_count;
  sched.seed = seed;
  const std::vector<workload::Phase> phases = workload::phase_schedule(
      sched, profiler::CudaProfiler::unsupported_benchmarks());

  const governor::LoopResult result = loop.run(phases);

  AsciiTable table(opt.measure_baselines
                       ? std::vector<std::string>{"phase", "scale", "pair",
                                                  "energy J", "default J",
                                                  "oracle J", "saving %"}
                       : std::vector<std::string>{"phase", "scale", "pair",
                                                  "energy J"});
  for (const governor::PhaseOutcome& o : result.phases) {
    std::vector<std::string> row = {
        o.phase.benchmark, format_double(o.phase.scale, 2),
        sim::to_string(o.pair), format_double(o.measured.energy.as_joules(), 1)};
    if (opt.measure_baselines) {
      row.push_back(format_double(o.default_energy_joules, 1));
      row.push_back(format_double(o.oracle_energy_joules, 1));
      row.push_back(format_double(
          (1.0 - o.measured.energy.as_joules() /
                     std::max(1e-12, o.default_energy_joules)) * 100.0, 1));
    }
    table.add_row(row);
  }
  table.print(std::cout);

  std::cout << "policy " << core::to_string(opt.governor.policy) << ": "
            << format_double(result.governed_energy_joules, 0) << " J governed";
  if (opt.measure_baselines) {
    std::cout << " vs " << format_double(result.default_energy_joules, 0)
              << " J static (H-H), oracle "
              << format_double(result.oracle_energy_joules, 0) << " J ("
              << format_double((1.0 - result.governed_energy_joules /
                                    std::max(1e-12,
                                             result.default_energy_joules)) *
                                   100.0, 1)
              << "% saved)";
  }
  std::cout << "\n" << result.switches << " switches, " << result.reboots
            << " reboots, " << result.refits << " refits over "
            << result.phases.size() << " phases\n";
  return 0;
}

int cmd_serve(int argc, char** argv) {
  // gppm serve <gpu> --listen PORT [--workers N] [--cache N] [--duration S]
  //                  [--cluster N [--replicas R] [--supervise]
  //                  [--admission]]
  if (argc < 3) return usage();
  const sim::GpuModel model = parse_gpu(argv[2]);
  bool listen = false;
  std::uint16_t port = 0;
  std::size_t workers = 4, cache = 1 << 16;
  std::size_t cluster = 0, replicas = 2;
  bool supervise = false, admission = false;
  double duration = 0.0;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--listen" && has_value) {
      listen = true;
      const unsigned long value = std::stoul(argv[++i]);
      if (value > 65535) throw Error("port out of range");
      port = static_cast<std::uint16_t>(value);
    } else if (arg == "--workers" && has_value) {
      workers = std::stoul(argv[++i]);
    } else if (arg == "--cache" && has_value) {
      cache = std::stoul(argv[++i]);
    } else if (arg == "--duration" && has_value) {
      duration = std::stod(argv[++i]);
    } else if (arg == "--cluster" && has_value) {
      cluster = std::stoul(argv[++i]);
    } else if (arg == "--replicas" && has_value) {
      replicas = std::stoul(argv[++i]);
    } else if (arg == "--supervise") {
      supervise = true;
    } else if (arg == "--admission") {
      admission = true;
    } else {
      return usage();
    }
  }
  if (!listen || workers == 0 || replicas == 0) return usage();
  if ((supervise || admission) && cluster == 0) return usage();

  std::cout << "fitting models for " << sim::to_string(model)
            << " (extended form)...\n";
  const core::Dataset ds = core::build_dataset(model);
  core::ModelOptions popt;
  popt.scaling = core::FeatureScaling::VoltageSquaredFrequency;
  popt.include_baseline_terms = true;
  core::UnifiedModel power =
      core::UnifiedModel::fit(ds, core::TargetKind::Power, popt);
  core::UnifiedModel perf =
      core::UnifiedModel::fit(ds, core::TargetKind::ExecTime);

  serve::ServerOptions bopt;
  bopt.worker_threads = workers;
  bopt.cache_capacity = cache;

  // Single node or a routed fleet, behind the same TCP front.
  std::unique_ptr<serve::PredictionServer> backend;
  std::unique_ptr<cluster::LocalFleet> fleet;
  net::ServeBridge bridge;
  if (cluster > 0) {
    cluster::FleetOptions fopt;
    fopt.backends = cluster;
    fopt.server = bopt;
    cluster::RouterOptions ropt;
    ropt.replicas = replicas;
    ropt.admission_control = admission;
    fleet = std::make_unique<cluster::LocalFleet>(std::move(power),
                                                  std::move(perf), fopt, ropt);
    bridge = fleet->bridge();
    std::cout << "cluster: " << cluster << " in-process backends, "
              << replicas << " replicas per key"
              << (supervise ? ", supervised" : "")
              << (admission ? ", admission control" : "") << "\n";
  } else {
    backend = std::make_unique<serve::PredictionServer>(bopt);
    backend->load_models(std::move(power), std::move(perf));
    bridge = net::bridge_prediction_server(*backend);
  }

  std::unique_ptr<cluster::Supervisor> supervisor;
  if (fleet && supervise) {
    supervisor = std::make_unique<cluster::Supervisor>(*fleet);
  }

  net::ServerOptions nopt;
  nopt.port = port;
  net::Server server(std::move(bridge), nopt);
  std::cout << "listening on 127.0.0.1:" << server.port() << "\n"
            << std::flush;

  // Ctrl-C / SIGTERM drain and report instead of dying mid-loop; the
  // handler is installed without SA_RESTART so the stdin getline below
  // returns on the signal.
  install_shutdown_handler();
  if (duration > 0.0) {
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::duration_cast<
                           std::chrono::steady_clock::duration>(
                           std::chrono::duration<double>(duration));
    while (!shutdown_requested() &&
           std::chrono::steady_clock::now() < until) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  } else {
    // Foreground service: run until stdin closes (Ctrl-D, or the driving
    // script closing the pipe) or a shutdown signal arrives.
    std::cout << "serving until stdin closes (--duration S to time-box)\n";
    std::string line;
    while (!shutdown_requested() && std::getline(std::cin, line)) {
    }
  }
  if (shutdown_requested()) std::cout << "shutdown signal: draining\n";

  if (supervisor) supervisor->stop();
  server.stop();
  const net::ServerStats ns = server.stats();
  if (fleet) {
    const cluster::RouterStats rs = fleet->router().stats();
    fleet->stop();
    std::cout << rs.requests << " routed (" << rs.hedges_fired << " hedges, "
              << rs.hedge_wins << " hedge wins, " << rs.failovers
              << " failovers, " << rs.breaker_opens << " breaker opens, "
              << rs.drains << " drains, " << rs.admission_shed
              << " admission sheds)\n";
    if (supervisor) {
      const cluster::SupervisorStats ss = supervisor->stats();
      std::cout << "supervisor: " << ss.probes << " probes, " << ss.restarts
                << " restarts, " << ss.budget_exhausted
                << " budget exhaustions\n";
    }
  } else {
    backend->shutdown();
    backend->metrics().print(std::cout);
  }
  std::cout << ns.connections_accepted << " connections ("
            << ns.connections_refused << " refused), " << ns.frames_received
            << " frames in / " << ns.frames_sent << " out, "
            << ns.requests_bridged << " requests bridged, "
            << ns.protocol_errors << " protocol errors\n";
  return 0;
}

int cmd_serve_bench(int argc, char** argv) {
  // gppm serve-bench <gpu> [--requests N] [--workers N] [--clients N]
  //                        [--cache N] [--jitter F]
  if (argc < 3) return usage();
  const sim::GpuModel model = parse_gpu(argv[2]);
  std::size_t requests = 5000, workers = 4, clients = 4, cache = 1 << 16;
  double jitter = 0.0;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--requests" && has_value) {
      requests = std::stoul(argv[++i]);
    } else if (arg == "--workers" && has_value) {
      workers = std::stoul(argv[++i]);
    } else if (arg == "--clients" && has_value) {
      clients = std::stoul(argv[++i]);
    } else if (arg == "--cache" && has_value) {
      cache = std::stoul(argv[++i]);
    } else if (arg == "--jitter" && has_value) {
      jitter = std::stod(argv[++i]);
    } else {
      return usage();
    }
  }
  if (requests == 0 || workers == 0 || clients == 0) return usage();

  std::cout << "fitting models for " << sim::to_string(model)
            << " (extended form)...\n";
  const core::Dataset ds = core::build_dataset(model);
  core::ModelOptions popt;
  popt.scaling = core::FeatureScaling::VoltageSquaredFrequency;
  popt.include_baseline_terms = true;

  serve::ServerOptions sopt;
  sopt.worker_threads = workers;
  sopt.cache_capacity = cache;
  serve::PredictionServer server(sopt);
  server.load_models(core::UnifiedModel::fit(ds, core::TargetKind::Power, popt),
                     core::UnifiedModel::fit(ds, core::TargetKind::ExecTime));

  const serve::PhaseCorpus corpus = serve::build_phase_corpus(model);
  serve::TraceOptions topt;
  topt.request_count = requests;
  topt.counter_jitter = jitter;
  const std::vector<serve::Request> trace = serve::synthetic_trace(corpus, topt);
  std::cout << corpus.counters.size() << " phases, " << trace.size()
            << " requests, " << clients << " closed-loop clients, " << workers
            << " workers\n";

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  pool.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    pool.emplace_back([&, c] {
      for (std::size_t i = c; i < trace.size(); i += clients) {
        server.submit(trace[i]).get();
      }
    });
  }
  for (std::thread& t : pool) t.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  server.shutdown();
  server.metrics().print(std::cout);
  std::cout << "replayed " << trace.size() << " requests in "
            << format_double(elapsed, 3) << " s = "
            << format_double(static_cast<double>(trace.size()) / elapsed, 0)
            << " req/s\n";
  return 0;
}

int cmd_chaos(int argc, char** argv) {
  // gppm chaos <gpu> [--fault-profile FILE] [--seed N] [--benchmarks N]
  if (argc < 3) return usage();
  const sim::GpuModel model = parse_gpu(argv[2]);
  fault::FaultPlan plan = fault::FaultPlan::default_profile();
  std::uint64_t seed = 7;
  std::size_t benchmark_limit = 0;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--fault-profile" && has_value) {
      std::ifstream in(argv[++i]);
      if (!in) throw Error(std::string("cannot open ") + argv[i]);
      plan = fault::FaultPlan::parse(in);
    } else if (arg == "--seed" && has_value) {
      seed = std::stoull(argv[++i]);
    } else if (arg == "--benchmarks" && has_value) {
      benchmark_limit = std::stoul(argv[++i]);
    } else {
      return usage();
    }
  }

  std::cout << "fault profile:\n" << plan.to_string();
  const core::ChaosReport report =
      core::chaos_characterization(model, plan, seed, benchmark_limit);

  AsciiTable table({"benchmark", "covered", "fault-free best", "chaos best",
                    "verdict"});
  for (const core::ChaosBenchmarkRow& row : report.rows) {
    table.add_row({row.benchmark,
                   std::to_string(row.covered) + "/" +
                       std::to_string(row.total),
                   sim::to_string(row.best_fault_free),
                   row.has_chaos_best ? sim::to_string(row.best_chaos) : "-",
                   !row.comparable ? "incomparable"
                   : row.divergent ? "DIVERGENT"
                                   : "match"});
  }
  table.print(std::cout);
  std::cout << "coverage " << report.cells_covered << "/" << report.cells_total
            << " cells (" << format_double(report.coverage() * 100.0, 2)
            << "%), " << report.divergent_count() << " divergent of "
            << report.comparable_count() << " comparable benchmarks, "
            << report.fault_fires << "/" << report.fault_checks
            << " site checks fired\n";
  return report.divergent_count() == 0 ? 0 : 1;
}

int cmd_mix(int argc, char** argv) {
  // gppm mix <gpu> [--mixes N] [--degree D] [--seed N] [--fit]
  if (argc < 3) return usage();
  const sim::GpuModel model = parse_gpu(argv[2]);
  std::size_t mixes = 8;
  std::size_t degree = 2;
  std::uint64_t seed = 42;
  bool fit = false;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--mixes" && has_value) {
      mixes = std::stoul(argv[++i]);
    } else if (arg == "--degree" && has_value) {
      degree = std::stoul(argv[++i]);
    } else if (arg == "--seed" && has_value) {
      seed = std::stoull(argv[++i]);
    } else if (arg == "--fit") {
      fit = true;
    } else {
      return usage();
    }
  }
  if (mixes == 0) return usage();

  mix::MixScheduleOptions sched;
  sched.mixes = mixes;
  sched.degree = degree;
  sched.seed = seed;
  const std::vector<mix::ScheduledMix> schedule = mix::mix_schedule(
      sched, profiler::CudaProfiler::unsupported_benchmarks());
  mix::MixEngine engine(model, seed);

  AsciiTable table({"mix", "member", "share", "solo s", "contended s",
                    "slowdown", "co-bw"});
  double worst_slowdown = 1.0;
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    const mix::MixProfile profile = mix::make_mix_profile(schedule[i], i);
    const mix::MixExecution run = engine.execute(profile);
    for (const mix::MemberExecution& m : run.members) {
      worst_slowdown = std::max(worst_slowdown, m.slowdown);
      table.add_row({profile.name, m.benchmark,
                     format_double(m.sm_share, 2),
                     format_double(m.solo_time.as_seconds(), 4),
                     format_double(m.contended_time.as_seconds(), 4),
                     format_double(m.slowdown, 2),
                     format_double(m.co_bw_pressure, 2)});
    }
    table.add_row({profile.name, "(board)", "1.00",
                   format_double(run.makespan.as_seconds(), 4) + " makespan",
                   format_double(run.avg_power.as_watts(), 1) + " W",
                   format_double(run.contention_factor, 2) + " cf", ""});
  }
  table.print(std::cout);
  std::cout << schedule.size() << " mixes of degree " << degree << " on "
            << sim::to_string(model) << ", worst member slowdown "
            << format_double(worst_slowdown, 2) << "x\n";

  if (!fit) return 0;
  std::cout << "building the interference corpus (32 mixes) and fitting "
               "solo + mix families...\n";
  mix::MixCorpusOptions copt;
  copt.mixes = 32;
  copt.degree = degree;
  copt.seed = seed;
  const mix::MixCorpus corpus = mix::build_mix_corpus(model, copt);
  core::ModelOptions mopt;
  mopt.max_variables = 5;
  const mix::MixModelSet models = mix::fit_mix_models(corpus, mopt);
  const mix::MixEvaluation ev = mix::evaluate_mix_models(models, corpus);
  AsciiTable gate({"family", "held-out wape %", "held-out mape %"});
  gate.add_row({"solo time on contended", format_double(ev.solo_time_wape, 2),
                format_double(ev.solo_time_mape, 2)});
  gate.add_row({"mix time", format_double(ev.mix_time_wape, 2),
                format_double(ev.mix_time_mape, 2)});
  gate.add_row({"mix power", format_double(ev.power_wape, 2),
                format_double(ev.power_mape, 2)});
  gate.print(std::cout);
  std::cout << "solo signed bias " << format_double(ev.solo_signed_bias, 3)
            << " (negative = underpredicts contention), gate "
            << (ev.passes() ? "PASS" : "FAIL") << "\n";
  return ev.passes() ? 0 : 1;
}

int cmd_obs_demo() {
  // A small pass through every instrumented layer, so the obs wiring can be
  // eyeballed end to end: a resilient sweep under a light fault plan (sweep.*
  // counters + spans), a parallel forward selection (select.* and parallel.*),
  // and a burst against the prediction server (serve.* via the metrics
  // bridge).
  gppm::obs::set_enabled(true);

  std::cout << "[1/3] resilient sweep under the default fault profile...\n";
  fault::FaultInjector injector(fault::FaultPlan::default_profile(), 7);
  core::RunnerOptions ropt;
  ropt.injector = &injector;
  core::MeasurementRunner runner(sim::GpuModel::GTX460, ropt);
  const workload::BenchmarkDef& bench = workload::find_benchmark("gaussian");
  const core::Sweep sweep = core::sweep_pairs_resilient(runner, bench, 0);
  std::cout << "  " << sweep.results.size() << "/" << sweep.total_cells()
            << " cells covered\n";

  std::cout << "[2/3] parallel forward selection on the GTX 460 corpus...\n";
  const core::Dataset ds = core::build_dataset(sim::GpuModel::GTX460);
  const core::RegressionTable table =
      core::build_table(ds, core::TargetKind::Power);
  stats::SelectionOptions sopt;
  sopt.max_variables = 10;
  sopt.parallel = true;
  const stats::SelectionResult sel =
      stats::forward_select(table.features, table.target, sopt);
  std::cout << "  selected " << sel.selected.size() << " variables, adj R^2 "
            << format_double(sel.r2_trace.back(), 3) << "\n";

  std::cout << "[3/3] prediction-server burst...\n";
  serve::PredictionServer server;
  server.load_models(core::UnifiedModel::fit(ds, core::TargetKind::Power),
                     core::UnifiedModel::fit(ds, core::TargetKind::ExecTime));
  std::vector<std::future<serve::Response>> pending;
  for (std::size_t i = 0; i < 64; ++i) {
    serve::Request req;
    req.kind = serve::RequestKind::Predict;
    req.gpu = sim::GpuModel::GTX460;
    req.counters = ds.samples[i % ds.samples.size()].counters;
    req.pair = sim::kDefaultPair;
    pending.push_back(server.submit(std::move(req)));
  }
  for (auto& f : pending) f.get();
  server.shutdown();
  server.metrics().print(std::cout);

  obs::metrics_table(obs::Registry::instance().snapshot()).print(std::cout);
  std::cout << obs::span_snapshot().size() << " spans buffered ("
            << obs::spans_dropped() << " dropped)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Observability flags are global: strip them before command dispatch, and
  // flush the requested artifacts after the command finishes (also on a
  // nonzero exit, so a divergent chaos run still leaves its trace behind).
  std::string trace_out;
  std::string metrics_out;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--trace-out" && has_value) {
      trace_out = argv[++i];
    } else if (starts_with(arg, "--trace-out=")) {
      trace_out = arg.substr(std::string("--trace-out=").size());
    } else if (arg == "--metrics-out" && has_value) {
      metrics_out = argv[++i];
    } else if (starts_with(arg, "--metrics-out=")) {
      metrics_out = arg.substr(std::string("--metrics-out=").size());
    } else {
      args.push_back(argv[i]);
    }
  }
  if (!trace_out.empty() || !metrics_out.empty()) obs::set_enabled(true);
  argc = static_cast<int>(args.size());
  argv = args.data();

  const auto flush_obs = [&] {
    if (!trace_out.empty()) {
      obs::write_trace_file(trace_out);
      std::cout << "trace written to " << trace_out << " ("
                << obs::span_snapshot().size() << " spans, "
                << obs::spans_dropped() << " dropped)\n";
    }
    if (!metrics_out.empty()) {
      obs::write_metrics_file(metrics_out);
      std::cout << "metrics written to " << metrics_out << "\n";
    }
  };

  try {
    if (argc < 2) return usage();
    const std::string cmd = argv[1];
    if (cmd == "--help" || cmd == "-h" || cmd == "help") {
      return usage(std::cout, 0);
    }
    int rc = 2;
    if (cmd == "specs") rc = cmd_specs();
    else if (cmd == "pairs" && argc == 3) rc = cmd_pairs(argv[2]);
    else if (cmd == "counters" && argc == 3) rc = cmd_counters(argv[2]);
    else if (cmd == "trace" && argc == 3) rc = cmd_trace(argv[2]);
    else if (cmd == "benchmarks") rc = cmd_benchmarks();
    else if (cmd == "sweep" && argc == 4) rc = cmd_sweep(argv[2], argv[3]);
    else if (cmd == "fit") rc = cmd_fit(argc, argv);
    else if (cmd == "predict") rc = cmd_predict(argc, argv);
    else if (cmd == "governor") rc = cmd_governor(argc, argv);
    else if (cmd == "govern") rc = cmd_govern(argc, argv);
    else if (cmd == "serve") rc = cmd_serve(argc, argv);
    else if (cmd == "serve-bench") rc = cmd_serve_bench(argc, argv);
    else if (cmd == "chaos") rc = cmd_chaos(argc, argv);
    else if (cmd == "mix") rc = cmd_mix(argc, argv);
    else if (cmd == "obs-demo") rc = cmd_obs_demo();
    else return usage();
    flush_obs();
    return rc;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
