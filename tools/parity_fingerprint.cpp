// Cross-build artifact fingerprint: fits every board's power and perf
// models from the deterministic characterization dataset and prints their
// core::model_fingerprint values, plus raw kernel probes (SIMD dot / sum
// over a pinned pseudorandom vector, CRC-32 of a pinned buffer).
//
// The output is a pure function of the numeric pipeline, so a default
// (SIMD) build and a -DGPPM_SIMD=off build must print IDENTICAL text —
// run_tier1.sh diffs the two to enforce the bit-identical-fallback
// contract end to end, through selection, Cholesky, QR and serialization,
// not just through the kernel parity unit tests.
//
// The active backend is reported on a comment line ("# backend: ...") so
// a human can tell the two logs apart; the diff skips it.
#include <bit>
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "common/simd.hpp"
#include "core/dataset.hpp"
#include "core/serialization.hpp"
#include "core/unified_model.hpp"
#include "net/wire.hpp"

using namespace gppm;

int main() {
  std::printf("# backend: %s (lanes=%zu)\n", simd::kBackend,
              simd::kLaneWidth);

  // Raw kernel probes over a pinned pseudorandom vector.
  Rng rng(0xf00d);
  std::vector<double> a(1021), b(1021);
  for (double& x : a) x = rng.normal(0.0, 2.0);
  for (double& x : b) x = rng.normal(0.0, 2.0);
  std::printf("kernel dot=%016llx sum=%016llx\n",
              static_cast<unsigned long long>(
                  std::bit_cast<std::uint64_t>(
                      simd::dot(a.data(), b.data(), a.size()))),
              static_cast<unsigned long long>(
                  std::bit_cast<std::uint64_t>(simd::sum(a.data(), a.size()))));

  std::vector<std::uint8_t> buf(65539);
  for (std::uint8_t& byte : buf) {
    byte = static_cast<std::uint8_t>(rng.next_u64() & 0xff);
  }
  std::printf("kernel crc32=%08x\n", net::crc32(buf.data(), buf.size()));

  // Full-pipeline fingerprints: dataset -> forward selection -> QR refit
  // -> serialized-model hash, per board and target.
  for (sim::GpuModel m : sim::kAllGpus) {
    const core::Dataset ds = core::build_dataset(m);
    const core::UnifiedModel power =
        core::UnifiedModel::fit(ds, core::TargetKind::Power);
    const core::UnifiedModel perf =
        core::UnifiedModel::fit(ds, core::TargetKind::ExecTime);
    std::printf("%s power=%016llx perf=%016llx\n", sim::to_string(m).c_str(),
                static_cast<unsigned long long>(core::model_fingerprint(power)),
                static_cast<unsigned long long>(core::model_fingerprint(perf)));
  }
  return 0;
}
