// gppm-serve — standalone serving driver.
//
// Fits (or loads) the power/exectime model pair for a board, builds the
// synthetic suite trace, replays it against a PredictionServer with
// closed-loop clients and reports throughput plus the full metrics table.
//
//   gppm-serve [--gpu gtx680] [--requests N] [--workers N] [--clients N]
//              [--cache N] [--jitter F] [--all-sizes] [--csv]
//              [--power-model FILE --perf-model FILE]
//
// Without --power-model/--perf-model the models are fitted in-process from
// the board's 114-sample corpus (the extended V^2 f + baseline form, the
// one a DVFS governor actually wants to serve).
//
// Also accepts the global --trace-out=FILE / --metrics-out=FILE
// observability flags.  SIGINT/SIGTERM stop the replay cleanly: clients
// drain their in-flight request, the partial report prints, the obs
// artifacts flush, and the exit code is 0.
#include <atomic>
#include <chrono>
#include <iostream>
#include <thread>
#include <vector>

#include "common/shutdown.hpp"
#include "common/str.hpp"
#include "core/dataset.hpp"
#include "obs/export.hpp"
#include "obs/obs.hpp"
#include "serve/server.hpp"
#include "serve/trace.hpp"

using namespace gppm;

namespace {

int usage(std::ostream& out, int code) {
  out << "usage: gppm-serve [--gpu gtx285|gtx460|gtx480|gtx680]\n"
         "                  [--requests N] [--workers N] [--clients N]\n"
         "                  [--cache ENTRIES] [--jitter FRACTION]\n"
         "                  [--all-sizes] [--csv]\n"
         "                  [--power-model FILE --perf-model FILE]\n"
         "also accepts --trace-out=FILE --metrics-out=FILE\n";
  return code;
}

sim::GpuModel parse_gpu(const std::string& name) {
  if (name == "gtx285") return sim::GpuModel::GTX285;
  if (name == "gtx460") return sim::GpuModel::GTX460;
  if (name == "gtx480") return sim::GpuModel::GTX480;
  if (name == "gtx680") return sim::GpuModel::GTX680;
  throw Error("unknown GPU '" + name + "' (expected gtx285/460/480/680)");
}

struct Cli {
  sim::GpuModel gpu = sim::GpuModel::GTX680;
  std::size_t requests = 20000;
  std::size_t workers = 4;
  std::size_t clients = 4;
  std::size_t cache = 1 << 16;
  double jitter = 0.0;
  bool all_sizes = false;
  bool csv = false;
  std::string power_model_path;
  std::string perf_model_path;
};

}  // namespace

int main(int argc, char** argv) {
  // Global observability contract (same as gppm / gppm-loadgen): strip
  // the flags before option parsing, flush the artifacts after the run.
  std::string trace_out;
  std::string metrics_out;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--trace-out" && has_value) {
      trace_out = argv[++i];
    } else if (starts_with(arg, "--trace-out=")) {
      trace_out = arg.substr(std::string("--trace-out=").size());
    } else if (arg == "--metrics-out" && has_value) {
      metrics_out = argv[++i];
    } else if (starts_with(arg, "--metrics-out=")) {
      metrics_out = arg.substr(std::string("--metrics-out=").size());
    } else {
      args.push_back(argv[i]);
    }
  }
  if (!trace_out.empty() || !metrics_out.empty()) obs::set_enabled(true);
  argc = static_cast<int>(args.size());
  argv = args.data();
  // Ctrl-C drains the replay and still reaches the flush below (exit 0).
  install_shutdown_handler();

  try {
    Cli cli;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const bool has_value = i + 1 < argc;
      if (arg == "--help" || arg == "-h") return usage(std::cout, 0);
      if (arg == "--gpu" && has_value) {
        cli.gpu = parse_gpu(argv[++i]);
      } else if (arg == "--requests" && has_value) {
        cli.requests = std::stoul(argv[++i]);
      } else if (arg == "--workers" && has_value) {
        cli.workers = std::stoul(argv[++i]);
      } else if (arg == "--clients" && has_value) {
        cli.clients = std::stoul(argv[++i]);
      } else if (arg == "--cache" && has_value) {
        cli.cache = std::stoul(argv[++i]);
      } else if (arg == "--jitter" && has_value) {
        cli.jitter = std::stod(argv[++i]);
      } else if (arg == "--all-sizes") {
        cli.all_sizes = true;
      } else if (arg == "--csv") {
        cli.csv = true;
      } else if (arg == "--power-model" && has_value) {
        cli.power_model_path = argv[++i];
      } else if (arg == "--perf-model" && has_value) {
        cli.perf_model_path = argv[++i];
      } else {
        return usage(std::cerr, 2);
      }
    }
    if (cli.power_model_path.empty() != cli.perf_model_path.empty()) {
      std::cerr << "error: --power-model and --perf-model go together\n";
      return 2;
    }
    if (cli.requests == 0 || cli.workers == 0 || cli.clients == 0) {
      std::cerr << "error: --requests/--workers/--clients must be positive\n";
      return 2;
    }

    serve::ServerOptions sopt;
    sopt.worker_threads = cli.workers;
    sopt.cache_capacity = cli.cache;
    serve::PredictionServer server(sopt);

    if (!cli.power_model_path.empty()) {
      std::cout << "loading models from " << cli.power_model_path << " + "
                << cli.perf_model_path << "\n";
      // The trace must target the board the files were fitted for, which
      // wins over any --gpu value.
      cli.gpu = server.load_model_files(cli.power_model_path,
                                        cli.perf_model_path);
      std::cout << "serving board: " << sim::to_string(cli.gpu) << "\n";
    } else {
      std::cout << "fitting models for " << sim::to_string(cli.gpu)
                << " (extended V^2 f + baseline form)...\n";
      const core::Dataset ds = core::build_dataset(cli.gpu);
      core::ModelOptions popt;
      popt.scaling = core::FeatureScaling::VoltageSquaredFrequency;
      popt.include_baseline_terms = true;
      server.load_models(
          core::UnifiedModel::fit(ds, core::TargetKind::Power, popt),
          core::UnifiedModel::fit(ds, core::TargetKind::ExecTime));
    }

    std::cout << "profiling the suite into a phase corpus...\n";
    const serve::PhaseCorpus corpus =
        serve::build_phase_corpus(cli.gpu, cli.all_sizes);
    serve::TraceOptions topt;
    topt.request_count = cli.requests;
    topt.counter_jitter = cli.jitter;
    const std::vector<serve::Request> trace =
        serve::synthetic_trace(corpus, topt);
    std::cout << corpus.counters.size() << " phases, " << trace.size()
              << " requests, " << cli.clients << " closed-loop clients, "
              << cli.workers << " workers\n";

    // Closed-loop replay: each client owns a contiguous slice of the trace
    // and keeps exactly one request in flight.
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> clients;
    clients.reserve(cli.clients);
    std::atomic<std::size_t> failed{0};
    for (std::size_t c = 0; c < cli.clients; ++c) {
      clients.emplace_back([&, c] {
        for (std::size_t i = c; i < trace.size(); i += cli.clients) {
          if (shutdown_requested()) break;  // drain: launch nothing new
          try {
            server.submit(trace[i]).get();
          } catch (const std::exception&) {
            failed.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (std::thread& t : clients) t.join();
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();

    server.shutdown();
    const serve::ServerMetrics metrics = server.metrics();
    metrics.print(std::cout);
    if (failed.load() > 0) {
      std::cout << failed.load() << " requests failed\n";
    }
    std::cout << "replayed " << trace.size() << " requests in "
              << format_double(elapsed, 3) << " s = "
              << format_double(static_cast<double>(trace.size()) / elapsed, 0)
              << " req/s\n";
    if (cli.csv) {
      std::cout << "BEGIN-CSV serve_metrics\n";
      metrics.write_csv(std::cout);
      std::cout << "END-CSV\n";
    }
    if (shutdown_requested()) std::cout << "interrupted: partial replay\n";
    if (!trace_out.empty()) {
      obs::write_trace_file(trace_out);
      std::cout << "trace written to " << trace_out << "\n";
    }
    if (!metrics_out.empty()) {
      obs::write_metrics_file(metrics_out);
      std::cout << "metrics written to " << metrics_out << "\n";
    }
    return 0;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
