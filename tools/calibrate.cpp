// Calibration tool: prints the characterization headlines (Figs. 1-4
// showcase sweeps and the suite-wide Fig. 4 aggregates) for tuning the
// device-spec calibration parameters against the paper's numbers.
// Not part of the reproduction suite; see bench/ for the real artifacts.
#include <cstdio>
#include "core/characterization.hpp"
#include "workload/suite.hpp"
#include "stats/descriptive.hpp"
using namespace gppm;

int main() {
  for (const char* name : {"backprop", "streamcluster", "gaussian"}) {
    std::printf("=== %s ===\n", name);
    const auto& def = workload::find_benchmark(name);
    for (sim::GpuModel m : sim::kAllGpus) {
      core::RunnerOptions opt; opt.seed = 42;
      core::MeasurementRunner runner(m, opt);
      auto sweep = core::sweep_pairs(runner, def, def.size_count - 1);
      std::printf("%s: best=%s improve=%.1f%% perf_loss=%.1f%%\n",
                  sim::to_string(m).c_str(), sim::to_string(sweep.best_pair()).c_str(),
                  sweep.improvement_percent(), sweep.performance_loss_percent());
      for (auto& r : sweep.results) {
        std::printf("   %s t=%.3fs P=%.1fW E=%.1fJ relperf=%.3f releff=%.3f\n",
          sim::to_string(r.measurement.pair).c_str(), r.measurement.exec_time.as_seconds(),
          r.measurement.avg_power.as_watts(), r.measurement.energy.as_joules(),
          r.relative_performance, r.relative_efficiency);
      }
    }
  }
  std::printf("=== suite-wide Fig.4 ===\n");
  auto rows = core::characterize_suite(42);
  for (size_t g = 0; g < sim::kAllGpus.size(); ++g) {
    std::vector<double> imps; int nondefault = 0;
    for (auto& row : rows) {
      imps.push_back(row.improvement[g]);
      if (!(row.best[g] == sim::kDefaultPair)) nondefault++;
    }
    std::printf("%s: avg improvement=%.1f%% max=%.1f%% nondefault=%d/%zu\n",
                sim::to_string(sim::kAllGpus[g]).c_str(), stats::mean(imps),
                stats::max_of(imps), nondefault, rows.size());
  }
  return 0;
}
